"""Central configuration dataclasses with the paper's default parameters.

Every tunable constant of the reproduction lives here, annotated with where
in the paper it comes from.  Components accept a config object (or individual
values) rather than reading globals, so experiments can vary parameters
without monkey-patching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .errors import ConfigError
from .units import DAY, HOUR, MB, MINUTE

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .faults import FaultContext, FaultPlan


@dataclass(frozen=True)
class SchedulerConfig:
    """Parameters of the simulated Linux-2.4-style epoch scheduler.

    The 2.4 kernel assigns each task a per-epoch timeslice derived from its
    nice value, carries half of an unexpired timeslice over for sleepers,
    and picks the runnable task with the highest "goodness".  Defaults match
    kernel 2.4 with HZ=100 (10 ms quanta, nice-0 timeslice ~60 ms).
    """

    #: Scheduling quantum in seconds (HZ=100 -> 10 ms ticks).
    quantum: float = 0.010
    #: Timeslice granted to a nice-0 task at each epoch, in seconds.
    base_timeslice: float = 0.060
    #: Minimum timeslice for the most de-prioritized task (nice 19).
    #: Kernel 2.4 grants one 10 ms tick; 7 ms (enforced by sub-tick
    #: accounting) calibrates the simulated Th2 to the paper's measured
    #: 60% — see the threshold-calibration bench.
    min_timeslice: float = 0.007
    #: Sleeper-bonus fixpoint, in units of the task's own timeslice: a
    #: long sleeper accumulates this many timeslices of counter.  Kernel
    #: 2.4's ``counter/2 + timeslice`` recurrence corresponds to 2.0; the
    #: default 3.0 models the stronger interactivity boost needed for the
    #: Section 3.2 sweeps to reproduce the paper's measured Th1=20% /
    #: Th2=60% (see the threshold-calibration bench).
    sleeper_cap_factor: float = 3.0
    #: Static priority bonus applied in the goodness computation
    #: (kernel 2.4: ``goodness = counter + 20 - nice``); expressed in
    #: seconds-equivalent per nice step so counters and nice mix correctly.
    nice_goodness_weight: float = 0.001

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ConfigError("quantum must be positive")
        if self.min_timeslice <= 0 or self.base_timeslice < self.min_timeslice:
            raise ConfigError("need base_timeslice >= min_timeslice > 0")
        if self.sleeper_cap_factor < 1.0:
            raise ConfigError("sleeper_cap_factor must be >= 1")

    def timeslice(self, nice: int) -> float:
        """Per-epoch timeslice for a task at the given nice level.

        Linearly interpolates from ``base_timeslice`` at nice 0 down to
        ``min_timeslice`` at nice 19, mirroring the 2.4 kernel's
        ``NICE_TO_TICKS`` mapping.  Negative nice values extrapolate upward
        (they are not used by FGCS guests but host tasks may have them).
        """
        if not -20 <= nice <= 19:
            raise ConfigError(f"nice must be in [-20, 19], got {nice}")
        span = self.base_timeslice - self.min_timeslice
        return self.base_timeslice - span * (nice / 19.0)


@dataclass(frozen=True)
class MemoryConfig:
    """Physical-memory model of a simulated machine.

    Defaults describe the paper's Solaris testbed for the memory-contention
    experiments (Section 3.2.3): 384 MB physical memory of which roughly
    100 MB is kernel/daemon resident.
    """

    #: Physical memory, MB.
    physical_mb: float = 384 * MB
    #: Memory held by the kernel and system daemons, MB (paper: ~100 MB).
    kernel_mb: float = 100 * MB
    #: Multiplicative progress factor applied to every task while the
    #: machine is thrashing (working sets exceed physical memory).  The
    #: paper reports host processes "make little progress"; its Figure 4
    #: bars show 25--40% host CPU-usage reductions for thrashing pairs,
    #: which this factor is calibrated to.
    thrash_progress_factor: float = 0.35

    def __post_init__(self) -> None:
        if self.physical_mb <= 0 or self.kernel_mb < 0:
            raise ConfigError("memory sizes must be positive")
        if self.kernel_mb >= self.physical_mb:
            raise ConfigError("kernel memory must be below physical memory")
        if not 0 < self.thrash_progress_factor <= 1:
            raise ConfigError("thrash_progress_factor must be in (0, 1]")

    @property
    def available_mb(self) -> float:
        """Memory available to user processes before thrashing sets in."""
        return self.physical_mb - self.kernel_mb


@dataclass(frozen=True)
class ThresholdConfig:
    """The two host-load thresholds of the multi-state model (Section 4).

    On the paper's Linux testbed ``Th1 = 20%`` and ``Th2 = 60%``; the
    contention experiments in :mod:`repro.contention` re-derive comparable
    values from the simulated scheduler.
    """

    #: Host CPU load above which the guest must run at lowest priority.
    th1: float = 0.20
    #: Host CPU load above which the guest must be suspended/terminated.
    th2: float = 0.60
    #: Host slowdown considered "noticeable" (paper: 5%).
    noticeable_slowdown: float = 0.05
    #: Duration a guest stays suspended waiting for load to drop before it is
    #: terminated (paper: 1 minute).
    suspension_grace: float = 1 * MINUTE

    def __post_init__(self) -> None:
        if not 0 < self.th1 < self.th2 <= 1.0:
            raise ConfigError("need 0 < th1 < th2 <= 1")
        if not 0 < self.noticeable_slowdown < 1:
            raise ConfigError("noticeable_slowdown must be in (0, 1)")
        if self.suspension_grace <= 0:
            raise ConfigError("suspension_grace must be positive")


@dataclass(frozen=True)
class MonitorConfig:
    """Resource-monitor sampling parameters (Section 5, vmstat/prstat)."""

    #: Sampling period in seconds.
    period: float = 10.0
    #: Std-dev of multiplicative observation noise on host CPU load samples.
    noise_std: float = 0.01

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigError("period must be positive")
        if self.noise_std < 0:
            raise ConfigError("noise_std must be non-negative")


@dataclass(frozen=True)
class TestbedConfig:
    """The simulated iShare testbed of Section 5.

    Paper: 20 identical 1.7 GHz RedHat Linux machines in a student lab at
    Purdue, traced for three months (~92 days, ~1800 machine-days), each
    with more than 1 GB of RAM (so memory thrashing is rarer than on the
    384 MB Solaris box of Section 3.2.3).
    """

    #: Not a test class, despite the name (silences pytest collection).
    __test__ = False

    n_machines: int = 20
    duration: float = 92 * DAY
    #: Weekday of day 0 (0=Monday).  2005-08-01 was a Monday.
    start_weekday: int = 0
    #: Physical memory of the lab machines, MB (paper: > 1 GB).
    machine_memory_mb: float = 1280 * MB
    #: Kernel-resident memory on the lab machines, MB.
    machine_kernel_mb: float = 160 * MB

    def __post_init__(self) -> None:
        if self.n_machines <= 0:
            raise ConfigError("n_machines must be positive")
        if self.duration <= 0:
            raise ConfigError("duration must be positive")
        if not 0 <= self.start_weekday <= 6:
            raise ConfigError("start_weekday must be in [0, 6]")

    @property
    def n_days(self) -> int:
        """Whole days in the trace."""
        return int(self.duration // DAY)


@dataclass(frozen=True)
class LabWorkloadConfig:
    """Stochastic model of student-lab host workloads driving the testbed.

    The constants are calibrated (see EXPERIMENTS.md) so that the generated
    traces land inside the paper's published aggregates: 405--453
    unavailability events per machine over three months with a 69--79% /
    19--30% / 0--3% split between CPU contention, memory contention and
    revocation (Table 2), the interval-length CDFs of Figure 6 and the
    hourly occurrence profile of Figure 7.
    """

    # -- diurnal login intensity ------------------------------------------
    #: Peak concurrent-user intensity on weekdays (relative units).
    weekday_peak: float = 1.0
    #: Peak intensity on weekends relative to weekdays.
    weekend_factor: float = 0.50
    #: Hour at which lab activity ramps up (students arriving).
    day_start_hour: float = 9.5
    #: Hour at which lab activity winds down.
    day_end_hour: float = 22.5
    #: Softness of the morning/evening ramps, hours.
    edge_hours: float = 1.2
    #: Overnight baseline intensity (relative to peak).
    night_floor: float = 0.22

    # -- load bursts -------------------------------------------------------
    #: Mean number of heavy-load episodes per machine per weekday.
    weekday_heavy_rate: float = 4.6
    #: Mean duration (seconds) of a heavy-load (CPU) episode.
    heavy_duration_mean: float = 60 * MINUTE
    #: Shape parameter of the lognormal heavy-episode duration.
    heavy_duration_sigma: float = 0.70
    #: Fraction of heavy episodes that also exhaust memory (big compiles,
    #: simulation runs) causing S4 rather than S3.
    memory_heavy_fraction: float = 0.28

    # -- background load ---------------------------------------------------
    #: Mean host CPU load when a machine is in "light interactive" use.
    light_load_mean: float = 0.08
    #: Mean host load during moderate use (keeps guest in S2 territory).
    moderate_load_mean: float = 0.35

    # -- updatedb cron (Section 5.3's 4--5 AM spike) ------------------------
    updatedb_hour: float = 4.0
    updatedb_duration: float = 30 * MINUTE
    updatedb_load: float = 0.92

    # -- revocation ---------------------------------------------------------
    #: Mean machine reboots per machine per month (~90% of URR).
    reboot_rate_per_month: float = 2.2
    #: Mean HW/SW failures per machine per month (remaining URR).
    failure_rate_per_month: float = 0.25
    #: Downtime after a plain reboot, seconds.  Short enough that even
    #: after monitor-sampling quantization (one period each side) the
    #: detected duration stays below the one-minute reboot cutoff.
    reboot_downtime: float = 38.0
    #: Mean downtime after a HW/SW failure, seconds.
    failure_downtime_mean: float = 2 * HOUR

    def __post_init__(self) -> None:
        if not 0 < self.weekend_factor <= 1:
            raise ConfigError("weekend_factor must be in (0, 1]")
        if self.weekday_heavy_rate < 0 or self.heavy_duration_mean <= 0:
            raise ConfigError("heavy-episode parameters must be positive")
        if not 0 <= self.memory_heavy_fraction <= 1:
            raise ConfigError("memory_heavy_fraction must be a fraction")


@dataclass(frozen=True)
class ExecutionConfig:
    """How expensive pipelines execute: worker pool, cache, fault handling.

    Execution settings change *how fast* (or *how robustly*) results are
    computed, never *what* is computed — every wired pipeline is
    bit-for-bit identical for any ``jobs`` value, and for any fault plan
    whose injected faults are cleared by retries — so this config is
    excluded from dataset cache keys (see
    :func:`repro.parallel.cache.config_fingerprint`).  Partial (quarantine-
    degraded) results are never written to the cache.
    """

    #: Worker processes for parallel stages.  ``1`` runs in-process with no
    #: pool (always safe, no pickling); ``0`` means one worker per
    #: available CPU; ``N > 1`` uses a process pool of that size.
    jobs: int = 1
    #: Directory for the content-addressed on-disk dataset cache.
    #: ``None`` disables caching entirely.
    cache_dir: Optional[str] = None
    #: Master switch so a CLI can keep a configured ``cache_dir`` but skip
    #: reading/writing it for one run (``--no-cache``).
    use_cache: bool = True
    #: Deterministic fault-injection plan (chaos testing); ``None`` injects
    #: nothing.  Retry/timeout hardening below applies either way.
    fault_plan: Optional["FaultPlan"] = None
    #: Re-executions allowed per failed work unit (exponential backoff).
    max_retries: int = 2
    #: Parent-side backoff before the first retry, seconds (doubles per
    #: further retry, capped at 1 s); wall-clock only, never affects results.
    retry_backoff: float = 0.05
    #: Per-unit wall-clock budget, seconds (enforced post hoc — an overrun
    #: unit is rerun, not preempted); ``None`` disables the check.
    unit_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ConfigError("jobs must be >= 0 (0 = one worker per CPU)")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ConfigError("retry_backoff must be non-negative")
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ConfigError("unit_timeout must be positive")

    @property
    def cache_enabled(self) -> bool:
        """True when a cache directory is configured and not switched off."""
        return self.use_cache and self.cache_dir is not None

    def fault_context(
        self, label: str, *, quarantine: bool = False
    ) -> "FaultContext":
        """A fresh per-batch :class:`repro.faults.FaultContext`.

        ``label`` prefixes the stable unit keys (``<label>:<index>``);
        ``quarantine=True`` lets exhausted units degrade to partial
        results instead of aborting the batch.
        """
        from .faults import FaultContext, RetryPolicy

        return FaultContext(
            plan=self.fault_plan,
            policy=RetryPolicy(
                max_retries=self.max_retries,
                backoff_base=self.retry_backoff,
                unit_timeout=self.unit_timeout,
                quarantine=quarantine,
            ),
            label=label,
        )


@dataclass(frozen=True)
class FgcsConfig:
    """Bundle of all sub-configs; the single object most APIs accept."""

    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    thresholds: ThresholdConfig = field(default_factory=ThresholdConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    lab: LabWorkloadConfig = field(default_factory=LabWorkloadConfig)
    #: How to execute the expensive pipelines (never affects results).
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    #: Root seed for all random streams.
    seed: int = 2006

    def with_seed(self, seed: int) -> "FgcsConfig":
        """A copy of this config with a different root seed."""
        from dataclasses import replace

        return replace(self, seed=seed)

    def with_execution(self, execution: ExecutionConfig) -> "FgcsConfig":
        """A copy of this config with different execution settings."""
        from dataclasses import replace

        return replace(self, execution=execution)


DEFAULT_CONFIG = FgcsConfig()
