"""Parameter sweeps reproducing Figures 1–4 of the paper.

Each sweep returns a structured result holding the same series the figure
plots; the benchmark harness renders them as text tables and EXPERIMENTS.md
records them against the paper's values.

Every sweep is a grid of independent simulator cells, so the grid fans
out over a process pool (``jobs > 1``) with bit-for-bit identical results
to the serial run.  Figures 2–4 are fully deterministic; Figure 1's only
randomness — the host-group duty compositions — is drawn up front in the
parent process, from one stream in grid order, and shipped to the workers
inside their payloads, so the dispatch order cannot perturb the draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..config import MemoryConfig, SchedulerConfig
from ..errors import ExperimentError
from ..faults import FaultContext
from ..obs.metrics import span
from ..parallel.backend import get_backend
from ..rng import generator_from
from ..workloads.hostgroups import random_duty_composition
from ..workloads.musbus import MUSBUS_WORKLOADS, MusbusWorkload
from ..workloads.spec import SPEC_APPS, SpecApp, spec_guest_task
from ..workloads.synthetic import guest_task, host_task
from .experiment import calibrated_host_group, measure_contention

__all__ = [
    "Figure1Result",
    "Figure2Result",
    "Figure3Result",
    "Figure4Result",
    "figure1_sweep",
    "figure2_sweep",
    "figure3_sweep",
    "figure4_sweep",
]

#: L_H grid of Figure 1 (10% .. 100%).
FIG1_LH_GRID: tuple[float, ...] = tuple(round(0.1 * k, 2) for k in range(1, 11))
#: Host group sizes of Figure 1.
FIG1_GROUP_SIZES: tuple[int, ...] = (1, 2, 3, 4, 5)


@dataclass(frozen=True)
class Figure1Result:
    """Reduction rate of host CPU usage vs L_H, per host-group size M.

    ``reduction[i, j]`` is the mean reduction rate at ``lh_grid[i]`` for
    group size ``group_sizes[j]`` (NaN where L_H < 0.1 * M is infeasible).
    """

    guest_nice: int
    lh_grid: tuple[float, ...]
    group_sizes: tuple[int, ...]
    reduction: np.ndarray
    isolated_usage: np.ndarray

    def series(self, m: int) -> list[tuple[float, float]]:
        """(L_H, reduction) points for group size ``m``, skipping NaNs."""
        j = self.group_sizes.index(m)
        return [
            (lh, float(r))
            for lh, r in zip(self.lh_grid, self.reduction[:, j])
            if not np.isnan(r)
        ]

    def threshold(self, criterion: float = 0.05) -> Optional[float]:
        """Lowest L_H (over all M) where the reduction exceeds ``criterion``.

        This is exactly how the paper picks Th1 (from the equal-priority
        sweep) and Th2 (from the nice-19 sweep).
        """
        exceed = [
            lh
            for i, lh in enumerate(self.lh_grid)
            if np.nanmax(self.reduction[i, :]) > criterion
        ]
        return min(exceed) if exceed else None


def _figure1_cell(
    payload: tuple[
        int,
        int,
        int,
        float,
        int,
        tuple[tuple[float, ...], ...],
        float,
        Optional[SchedulerConfig],
    ],
) -> tuple[int, int, float, float]:
    """One (L_H, M) cell of Figure 1: mean over its host-group combos.

    The cell's random duty compositions are drawn *before* dispatch (by
    ``figure1_sweep``, from one stream, in grid order) and arrive in the
    payload; from here on everything — group calibration, the contention
    measurement — is deterministic, so cells compute identical values in
    any order or process.
    """
    i, j, guest_nice, lh, m, compositions, duration, scheduler_config = payload
    reds, isos = [], []
    for duties in compositions:
        group = calibrated_host_group(
            lh, m, None, duties=duties, scheduler_config=scheduler_config
        )
        meas = measure_contention(
            lambda g=group: g.tasks(),
            lambda: guest_task(nice=guest_nice),
            duration=duration,
            scheduler_config=scheduler_config,
        )
        reds.append(meas.reduction_rate)
        isos.append(meas.isolated_host_usage)
    return i, j, float(np.mean(reds)), float(np.mean(isos))


def figure1_sweep(
    guest_nice: int,
    *,
    lh_grid: Sequence[float] = FIG1_LH_GRID,
    group_sizes: Sequence[int] = FIG1_GROUP_SIZES,
    combinations: int = 3,
    duration: float = 120.0,
    seed: int = 0,
    scheduler_config: Optional[SchedulerConfig] = None,
    jobs: int = 1,
    faults: Optional[FaultContext] = None,
) -> Figure1Result:
    """The Figure 1 experiment: reduction rate vs L_H for M = 1..5.

    For each (L_H, M) cell, ``combinations`` random host groups are
    measured and averaged, as in the paper ("multiple combinations of host
    processes were used ... the average of the measurements is plotted").

    ``guest_nice=0`` reproduces Figure 1(a), ``guest_nice=19`` Figure 1(b).
    ``jobs`` fans the ~50 cells out over worker processes; results are
    identical for every value: the random duty compositions are drawn here,
    serially, from one stream in grid order — the sweep's only stochastic
    step, and one whose draw count never depends on measurement results —
    and each cell's (purely deterministic) simulation gets its compositions
    in the payload.
    """
    if combinations < 1:
        raise ExperimentError("combinations must be >= 1")
    rng = generator_from(seed)
    lh_grid = tuple(lh_grid)
    group_sizes = tuple(group_sizes)
    reduction = np.full((len(lh_grid), len(group_sizes)), np.nan)
    isolated = np.full_like(reduction, np.nan)

    cells = []
    for i, lh in enumerate(lh_grid):
        for j, m in enumerate(group_sizes):
            if lh < 0.1 * m - 1e-9:  # infeasible: each program needs >= 10%
                continue
            n_combos = combinations if m > 1 else 1  # M=1 has one combo
            compositions = tuple(
                random_duty_composition(lh, m, rng) for _ in range(n_combos)
            )
            cells.append(
                (i, j, guest_nice, lh, m, compositions, duration, scheduler_config)
            )
    with span(f"contention.figure1.nice{guest_nice}"):
        for i, j, red, iso in get_backend(jobs).map(
            _figure1_cell, cells, faults=faults
        ):
            reduction[i, j] = red
            isolated[i, j] = iso

    return Figure1Result(
        guest_nice=guest_nice,
        lh_grid=lh_grid,
        group_sizes=group_sizes,
        reduction=reduction,
        isolated_usage=isolated,
    )


@dataclass(frozen=True)
class Figure2Result:
    """Reduction rate vs (L_H, guest priority): the gradual-renice question.

    ``reduction[i, j]`` is the reduction at ``lh_grid[i]`` with the guest at
    ``priorities[j]``.
    """

    lh_grid: tuple[float, ...]
    priorities: tuple[int, ...]
    reduction: np.ndarray

    def gradual_renice_gain(self, criterion: float = 0.05) -> dict[float, bool]:
        """For each L_H: does *any* intermediate priority (0 < nice < 19)
        keep slowdown acceptable where nice 0 does not?

        The paper's conclusion is "no": where renicing is needed at all,
        only the lowest priority suffices, so fine-grained values between
        Th1 and Th2 add nothing.
        """
        out: dict[float, bool] = {}
        j_first, j_last = 0, len(self.priorities) - 1
        for i, lh in enumerate(self.lh_grid):
            nice0_bad = self.reduction[i, j_first] > criterion
            mids_ok = any(
                self.reduction[i, j] <= criterion
                for j in range(1, j_last)
            )
            out[lh] = bool(nice0_bad and mids_ok)
        return out


def _figure2_cell(
    payload: tuple[int, int, float, int, float, Optional[SchedulerConfig]],
) -> tuple[int, int, float]:
    """One (L_H, priority) cell of Figure 2 (fully deterministic)."""
    i, j, lh, nice, duration, scheduler_config = payload
    meas = measure_contention(
        lambda lh=lh: [host_task("h0", lh)],
        lambda nice=nice: guest_task(nice=nice),
        duration=duration,
        scheduler_config=scheduler_config,
    )
    return i, j, meas.reduction_rate


def figure2_sweep(
    *,
    lh_grid: Sequence[float] = tuple(round(0.1 * k, 2) for k in range(2, 11)),
    priorities: Sequence[int] = (0, 5, 10, 15, 19),
    duration: float = 120.0,
    scheduler_config: Optional[SchedulerConfig] = None,
    jobs: int = 1,
    faults: Optional[FaultContext] = None,
) -> Figure2Result:
    """The Figure 2 experiment: one host process vs guests of varying nice."""
    lh_grid = tuple(lh_grid)
    priorities = tuple(priorities)
    reduction = np.zeros((len(lh_grid), len(priorities)))
    cells = [
        (i, j, lh, nice, duration, scheduler_config)
        for i, lh in enumerate(lh_grid)
        for j, nice in enumerate(priorities)
    ]
    with span("contention.figure2"):
        for i, j, red in get_backend(jobs).map(_figure2_cell, cells, faults=faults):
            reduction[i, j] = red
    return Figure2Result(lh_grid=lh_grid, priorities=priorities, reduction=reduction)


@dataclass(frozen=True)
class Figure3Result:
    """Guest CPU usage at priority 0 vs 19 under light host load.

    One row per (host duty, guest duty) combination, labelled as in the
    paper's x-axis ("0.2+1" = host 20%, guest 100%).
    """

    combos: tuple[tuple[float, float], ...]
    guest_usage_nice0: np.ndarray
    guest_usage_nice19: np.ndarray

    @property
    def labels(self) -> list[str]:
        return [f"{h:g}+{g:g}" for h, g in self.combos]

    @property
    def mean_gap(self) -> float:
        """Mean extra guest CPU usage from running at priority 0 (the
        paper reports about 2 percentage points)."""
        return float(np.mean(self.guest_usage_nice0 - self.guest_usage_nice19))


def _figure3_cell(
    payload: tuple[int, int, float, float, float, Optional[SchedulerConfig]],
) -> tuple[int, int, float]:
    """One (combo, priority) cell of Figure 3 (fully deterministic)."""
    k, nice, h, g, duration, scheduler_config = payload
    # CPU-intensive guests stall at sub-100 ms granularity (short
    # I/O waits between compute stretches), unlike the 1 s cycles
    # of the synthetic *host* programs.  The short cycle also
    # avoids phase-locking with the host's period.
    meas = measure_contention(
        lambda h=h: [host_task("h0", h)],
        lambda g=g, nice=nice: guest_task(duty=g, nice=nice, period=0.1),
        duration=duration,
        scheduler_config=scheduler_config,
    )
    return k, nice, meas.guest_usage


def figure3_sweep(
    *,
    host_duties: Sequence[float] = (0.2, 0.1),
    guest_duties: Sequence[float] = (1.0, 0.9, 0.8, 0.7),
    duration: float = 240.0,
    scheduler_config: Optional[SchedulerConfig] = None,
    jobs: int = 1,
    faults: Optional[FaultContext] = None,
) -> Figure3Result:
    """The Figure 3 experiment: does always-lowest priority waste guest CPU?"""
    combos = tuple((h, g) for h in host_duties for g in guest_duties)
    usage0 = np.zeros(len(combos))
    usage19 = np.zeros(len(combos))
    cells = [
        (k, nice, h, g, duration, scheduler_config)
        for k, (h, g) in enumerate(combos)
        for nice in (0, 19)
    ]
    with span("contention.figure3"):
        for k, nice, usage in get_backend(jobs).map(
            _figure3_cell, cells, faults=faults
        ):
            (usage0 if nice == 0 else usage19)[k] = usage
    return Figure3Result(
        combos=combos, guest_usage_nice0=usage0, guest_usage_nice19=usage19
    )


@dataclass(frozen=True)
class Figure4Cell:
    """One (guest app, host workload, priority) bar of Figure 4."""

    guest: str
    host: str
    guest_nice: int
    reduction: float
    thrashing: bool


@dataclass(frozen=True)
class Figure4Result:
    """All bars of Figure 4 plus the Table 1 footprints they rest on."""

    cells: tuple[Figure4Cell, ...] = field(default=())

    def cell(self, guest: str, host: str, nice: int) -> Figure4Cell:
        for c in self.cells:
            if c.guest == guest and c.host == host and c.guest_nice == nice:
                return c
        raise KeyError((guest, host, nice))

    def thrashing_pairs(self) -> set[tuple[str, str]]:
        """(guest, host) pairs that thrash at either priority (the starred
        bars: the paper finds H2/H5 with apsi, bzip2 or mcf)."""
        return {(c.guest, c.host) for c in self.cells if c.thrashing}


def _figure4_cell(
    payload: tuple[
        str, str, int, float, MemoryConfig, Optional[SchedulerConfig]
    ],
) -> Figure4Cell:
    """One Figure 4 bar (fully deterministic)."""
    gname, hname, nice, duration, memory_config, scheduler_config = payload
    workload: MusbusWorkload = MUSBUS_WORKLOADS[hname]
    app: SpecApp = SPEC_APPS[gname]
    meas = measure_contention(
        lambda w=workload: w.host_tasks(),
        lambda a=app, nice=nice: spec_guest_task(a, nice=nice),
        duration=duration,
        memory_config=memory_config,
        scheduler_config=scheduler_config,
    )
    return Figure4Cell(
        guest=gname,
        host=hname,
        guest_nice=nice,
        reduction=meas.reduction_rate,
        thrashing=meas.thrash_fraction > 0.5,
    )


def figure4_sweep(
    *,
    guests: Sequence[str] = ("apsi", "galgel", "bzip2", "mcf"),
    hosts: Sequence[str] = ("H1", "H2", "H3", "H4", "H5", "H6"),
    priorities: Sequence[int] = (0, 19),
    duration: float = 120.0,
    memory_config: Optional[MemoryConfig] = None,
    scheduler_config: Optional[SchedulerConfig] = None,
    jobs: int = 1,
    faults: Optional[FaultContext] = None,
) -> Figure4Result:
    """The Figure 4 experiment: SPEC guests vs Musbus hosts on 384 MB.

    Memory contention shows up as thrashing for exactly the pairs whose
    working sets (plus ~100 MB kernel) exceed physical memory; elsewhere the
    CPU thresholds govern, with host CPU usages taken from Table 1.
    """
    memory_config = memory_config or MemoryConfig()
    cells = [
        (gname, hname, nice, duration, memory_config, scheduler_config)
        for hname in hosts
        for gname in guests
        for nice in priorities
    ]
    with span("contention.figure4"):
        return Figure4Result(
            cells=tuple(get_backend(jobs).map(_figure4_cell, cells, faults=faults))
        )
