"""Threshold extraction (Section 3.2.1 / Section 4).

From the two Figure 1 sweeps, derive Th1 and Th2 exactly as the paper does:

* **Th1** — "the lowest value of L_H, above which host jobs can be slowed
  down by larger than 5%" with the guest at *default* priority;
* **Th2** — the same with the guest at *minimum* priority.

The extracted pair parameterizes the multi-state availability model
(:mod:`repro.core`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..config import SchedulerConfig, ThresholdConfig
from ..errors import ExperimentError
from ..faults import FaultContext
from ..obs.metrics import span
from .sweeps import FIG1_LH_GRID, Figure1Result, figure1_sweep

__all__ = ["ThresholdEstimate", "extract_thresholds", "calibrate_thresholds"]


@dataclass(frozen=True)
class ThresholdEstimate:
    """Calibrated thresholds plus the sweeps they came from."""

    th1: float
    th2: float
    criterion: float
    sweep_nice0: Figure1Result
    sweep_nice19: Figure1Result

    def to_config(
        self, base: Optional[ThresholdConfig] = None
    ) -> ThresholdConfig:
        """A :class:`ThresholdConfig` carrying the calibrated values."""
        base = base or ThresholdConfig()
        return ThresholdConfig(
            th1=self.th1,
            th2=self.th2,
            noticeable_slowdown=base.noticeable_slowdown,
            suspension_grace=base.suspension_grace,
        )


def extract_thresholds(
    sweep_nice0: Figure1Result,
    sweep_nice19: Figure1Result,
    *,
    criterion: float = 0.05,
) -> ThresholdEstimate:
    """Derive (Th1, Th2) from the two Figure 1 sweeps.

    The threshold is where the worst curve (max over group sizes) crosses
    the 5% criterion, linearly interpolated between grid points — the way
    the paper reads Th1/Th2 off its figures.  Values are platform
    properties: the paper measures (0.20, 0.60) on its Linux testbed and
    notes Th2 between 0.22 and 0.57 on Solaris; the simulated scheduler
    lands inside those ranges.
    """
    if sweep_nice0.guest_nice != 0:
        raise ExperimentError("sweep_nice0 must use guest nice 0")
    if sweep_nice19.guest_nice != 19:
        raise ExperimentError("sweep_nice19 must use guest nice 19")

    th1 = _interpolated_crossing(sweep_nice0, criterion)
    th2 = _interpolated_crossing(sweep_nice19, criterion)
    if th1 is None or th2 is None:
        raise ExperimentError(
            "no 5% crossing found in a sweep; widen the L_H grid"
        )
    if not th1 < th2:
        raise ExperimentError(
            f"calibration produced th1={th1} >= th2={th2}: the scheduler "
            "model does not separate the priority regimes"
        )
    return ThresholdEstimate(
        th1=th1,
        th2=th2,
        criterion=criterion,
        sweep_nice0=sweep_nice0,
        sweep_nice19=sweep_nice19,
    )


def _interpolated_crossing(
    sweep: Figure1Result, criterion: float
) -> Optional[float]:
    """L_H where the worst-case (max over M) reduction crosses the
    criterion, linearly interpolated; ``None`` if it never crosses."""
    import numpy as np

    grid = list(sweep.lh_grid)
    worst = [float(np.nanmax(sweep.reduction[i, :])) for i in range(len(grid))]
    for i, w in enumerate(worst):
        if w > criterion:
            if i == 0:
                return grid[0]
            lo, hi = worst[i - 1], w
            frac = (criterion - lo) / (hi - lo) if hi > lo else 0.0
            return grid[i - 1] + frac * (grid[i] - grid[i - 1])
    return None


def calibrate_thresholds(
    *,
    criterion: float = 0.05,
    lh_grid: Sequence[float] = FIG1_LH_GRID,
    group_sizes: Sequence[int] = (1, 2, 3),
    combinations: int = 2,
    duration: float = 120.0,
    seed: int = 0,
    scheduler_config: Optional[SchedulerConfig] = None,
    jobs: int = 1,
    faults: Optional["FaultContext"] = None,
) -> ThresholdEstimate:
    """Run both Figure 1 sweeps and extract thresholds in one call.

    This is the "offline experiments to determine the values of these
    thresholds on specific systems" step of Section 3; FGCS deployments
    run it once per platform.  ``jobs`` fans the sweep cells out over
    worker processes without changing the derived thresholds.
    """
    kwargs = dict(
        lh_grid=lh_grid,
        group_sizes=group_sizes,
        combinations=combinations,
        duration=duration,
        seed=seed,
        scheduler_config=scheduler_config,
        jobs=jobs,
        faults=faults,
    )
    with span("thresholds.sweep_nice0"):
        sweep0 = figure1_sweep(0, **kwargs)
    with span("thresholds.sweep_nice19"):
        sweep19 = figure1_sweep(19, **kwargs)
    return extract_thresholds(sweep0, sweep19, criterion=criterion)
