"""The core contention measurement.

Mirrors the paper's method exactly: run the host workload alone to measure
its isolated CPU usage ``L_H``; run it again together with a guest process;
report the *reduction rate* of host CPU usage
``(L_H - usage_with_guest) / L_H`` and the guest's own CPU usage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..config import MemoryConfig, SchedulerConfig
from ..errors import ExperimentError
from ..oskernel import Machine
from ..oskernel.tasks import Task

__all__ = ["ContentionMeasurement", "ContentionResult", "measure_contention"]

#: Factory producing a fresh list of host tasks for one run.  A factory
#: (not a task list) because tasks are single-use: each run needs new ones.
HostFactory = Callable[[], list[Task]]
#: Factory producing a fresh guest task.
GuestFactory = Callable[[], Task]

#: Default measurement length, seconds of simulated time.  Long enough to
#: average over many work cycles and scheduler epochs.
DEFAULT_DURATION: float = 120.0
#: Settling time excluded from measurement while counters reach steady state.
DEFAULT_WARMUP: float = 5.0


@dataclass(frozen=True)
class ContentionMeasurement:
    """One (host workload, guest) contention measurement."""

    #: Host CPU usage running alone (the measured L_H).
    isolated_host_usage: float
    #: Host CPU usage with the guest running.
    contended_host_usage: float
    #: Guest CPU usage while contending.
    guest_usage: float
    #: Fraction of the contended run spent thrashing.
    thrash_fraction: float

    @property
    def reduction_rate(self) -> float:
        """The paper's y-axis: relative loss of host CPU usage."""
        if self.isolated_host_usage <= 0:
            return 0.0
        return (
            self.isolated_host_usage - self.contended_host_usage
        ) / self.isolated_host_usage

    @property
    def noticeable(self) -> bool:
        """True if the slowdown exceeds the paper's 5% criterion."""
        return self.reduction_rate > 0.05


@dataclass(frozen=True)
class ContentionResult(ContentionMeasurement):
    """A measurement annotated with its experimental coordinates."""

    target_lh: float = 0.0
    group_size: int = 1
    guest_nice: int = 0
    label: str = ""


def _run_machine(
    hosts: list[Task],
    guest: Optional[Task],
    *,
    duration: float,
    warmup: float,
    scheduler_config: Optional[SchedulerConfig],
    memory_config: Optional[MemoryConfig],
) -> tuple[float, float, float]:
    """(host_usage, guest_usage, thrash_fraction) over the measured window."""
    machine = Machine(scheduler_config, memory_config)
    for t in hosts:
        machine.spawn(t)
    if guest is not None:
        machine.spawn(guest)
    machine.run_for(warmup)
    thrash0 = machine.thrash_time
    snap0 = machine.snapshot()
    machine.run_for(duration)
    snap1 = machine.snapshot()
    host_u, guest_u = snap1.usage_since(snap0)
    thrash_frac = (machine.thrash_time - thrash0) / duration
    return host_u, guest_u, thrash_frac


def calibrated_host_group(
    total: float,
    m: int,
    rng,
    *,
    duties: Optional[Sequence[float]] = None,
    scheduler_config: Optional[SchedulerConfig] = None,
    tolerance: float = 0.02,
    max_iter: int = 4,
    probe_duration: float = 30.0,
):
    """A host group whose *measured* group usage equals ``total``.

    The paper chooses combinations by running candidates together and
    keeping those whose total CPU usage equals L_H: host processes contend
    with each other, so nominal duties summing to L_H measure slightly
    lower.  This helper reproduces that selection by scaling a random
    composition until the measured usage matches.

    ``duties`` supplies a pre-drawn composition instead of sampling one
    from ``rng`` (which may then be ``None``); the calibration itself is
    deterministic, so callers can draw compositions centrally and fan the
    calibration out to worker processes.
    """
    from ..oskernel import Machine
    from ..workloads.hostgroups import HostGroup, random_duty_composition

    duties = list(
        random_duty_composition(total, m, rng) if duties is None else duties
    )
    scale = 1.0
    for _ in range(max_iter):
        scaled = tuple(min(d * scale, 1.0) for d in duties)
        group = HostGroup(scaled)
        machine = Machine(scheduler_config)
        for t in group.tasks():
            machine.spawn(t)
        machine.run_for(probe_duration)
        measured = machine.host_cpu_time() / probe_duration
        if abs(measured - total) <= tolerance or all(s >= 1.0 for s in scaled):
            return group
        scale *= total / max(measured, 1e-6)
    return group


def measure_contention(
    host_factory: HostFactory,
    guest_factory: Optional[GuestFactory],
    *,
    duration: float = DEFAULT_DURATION,
    warmup: float = DEFAULT_WARMUP,
    scheduler_config: Optional[SchedulerConfig] = None,
    memory_config: Optional[MemoryConfig] = None,
) -> ContentionMeasurement:
    """Measure host slowdown caused by a guest process.

    Runs the host workload twice on identical fresh machines — once alone,
    once with the guest — and reports usages over the post-warmup window.

    Parameters
    ----------
    host_factory:
        Builds the host task set; called twice (isolated + contended run).
    guest_factory:
        Builds the guest task; ``None`` measures the isolated run only.
    duration, warmup:
        Measured window and excluded settling time, simulated seconds.
    """
    if duration <= 0:
        raise ExperimentError("duration must be positive")
    if warmup < 0:
        raise ExperimentError("warmup must be >= 0")

    isolated_usage, _, _ = _run_machine(
        host_factory(),
        None,
        duration=duration,
        warmup=warmup,
        scheduler_config=scheduler_config,
        memory_config=memory_config,
    )
    if guest_factory is None:
        return ContentionMeasurement(isolated_usage, isolated_usage, 0.0, 0.0)

    contended_usage, guest_usage, thrash_frac = _run_machine(
        host_factory(),
        guest_factory(),
        duration=duration,
        warmup=warmup,
        scheduler_config=scheduler_config,
        memory_config=memory_config,
    )
    return ContentionMeasurement(
        isolated_host_usage=isolated_usage,
        contended_host_usage=contended_usage,
        guest_usage=guest_usage,
        thrash_fraction=thrash_frac,
    )
