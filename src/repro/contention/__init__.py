"""Offline resource-contention experiments (Section 3.2).

The experiments run synthetic (or SPEC/Musbus) host workloads together with
a guest process on the simulated machine, measure the reduction rate of
host CPU usage, and derive the two thresholds Th1/Th2 that quantify
"noticeable slowdown" — the empirical foundation of the multi-state
availability model.
"""

from .experiment import ContentionMeasurement, ContentionResult, measure_contention
from .sweeps import (
    Figure1Result,
    Figure2Result,
    Figure3Result,
    Figure4Result,
    figure1_sweep,
    figure2_sweep,
    figure3_sweep,
    figure4_sweep,
)
from .thresholds import ThresholdEstimate, calibrate_thresholds, extract_thresholds

__all__ = [
    "ContentionMeasurement",
    "ContentionResult",
    "calibrate_thresholds",
    "Figure1Result",
    "Figure2Result",
    "Figure3Result",
    "Figure4Result",
    "ThresholdEstimate",
    "extract_thresholds",
    "figure1_sweep",
    "figure2_sweep",
    "figure3_sweep",
    "figure4_sweep",
    "measure_contention",
]
