"""Change-point-adaptive prediction for non-stationary workloads.

The paper's trace spans one semester of one lab; real deployments see
regime changes — semester breaks, machine-room reshuffles, new user
populations.  History-window prediction silently averages across such
breaks.  This module detects mean shifts in the daily event-count series
(binary segmentation with a z-test on segment means) and fits the inner
predictor only on the data after the most recent change, so stale history
stops polluting the forecasts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import PredictionError
from ..traces.dataset import TraceDataset
from .base import AvailabilityPredictor, PredictionQuery
from .history import HistoryWindowPredictor

__all__ = ["detect_change_points", "ChangePointAdaptivePredictor"]


def detect_change_points(
    series: Sequence[float] | np.ndarray,
    *,
    min_segment: int = 7,
    z_threshold: float = 4.0,
) -> list[int]:
    """Indices where the series' mean shifts, by binary segmentation.

    For each candidate split the two segment means are compared with a
    z-statistic under a Poisson-like variance (variance ≈ mean, suiting
    daily event counts); splits with |z| above the threshold recurse into
    both halves.  Returns sorted change indices (the first index of the
    new regime).
    """
    x = np.asarray(series, dtype=float)
    if min_segment < 2:
        raise PredictionError("min_segment must be >= 2")
    out: list[int] = []

    def split(lo: int, hi: int) -> None:
        n = hi - lo
        if n < 2 * min_segment:
            return
        best_k, best_z = -1, 0.0
        seg = x[lo:hi]
        csum = np.concatenate(([0.0], np.cumsum(seg)))
        for k in range(min_segment, n - min_segment + 1):
            left = csum[k] / k
            right = (csum[n] - csum[k]) / (n - k)
            var = max(left / k + right / (n - k), 1e-9)
            z = abs(left - right) / np.sqrt(var)
            if z > best_z:
                best_k, best_z = k, z
        if best_z > z_threshold:
            out.append(lo + best_k)
            split(lo, lo + best_k)
            split(lo + best_k, hi)

    split(0, len(x))
    return sorted(out)


class ChangePointAdaptivePredictor(AvailabilityPredictor):
    """History-window prediction restricted to the current regime.

    Parameters
    ----------
    history_days:
        Same-type days the inner predictor consults.
    min_regime_days:
        Never truncate below this many trailing days (the inner predictor
        needs same-type history to answer at all).
    z_threshold:
        Sensitivity of the change detector.
    """

    def __init__(
        self,
        *,
        history_days: int = 8,
        min_regime_days: int = 14,
        z_threshold: float = 4.0,
    ) -> None:
        super().__init__()
        self.history_days = history_days
        self.min_regime_days = min_regime_days
        self.z_threshold = z_threshold
        self._inner: HistoryWindowPredictor | None = None
        #: Day offset of the regime start within the training trace.
        self.regime_start_day: int = 0

    def fit(self, dataset: TraceDataset) -> "ChangePointAdaptivePredictor":
        super().fit(dataset)
        daily = self.matrix.counts.sum(axis=(0, 2)).astype(float)
        changes = detect_change_points(
            daily, z_threshold=self.z_threshold
        )
        start = 0
        if changes:
            last = changes[-1]
            if dataset.n_days - last >= self.min_regime_days:
                start = last
        self.regime_start_day = start
        regime = dataset.slice_days(start, dataset.n_days)
        self._inner = HistoryWindowPredictor(
            history_days=self.history_days
        ).fit(regime)
        return self

    def _shifted(self, query: PredictionQuery) -> PredictionQuery:
        return PredictionQuery(
            machine_id=query.machine_id,
            day=query.day - self.regime_start_day,
            start_hour=query.start_hour,
            duration_hours=query.duration_hours,
        )

    def predict_count(self, query: PredictionQuery) -> float:
        if self._inner is None:
            raise PredictionError(f"{self.name} is not fitted")
        return self._inner.predict_count(self._shifted(query))

    def predict_survival(self, query: PredictionQuery) -> float:
        if self._inner is None:
            raise PredictionError(f"{self.name} is not fitted")
        return self._inner.predict_survival(self._shifted(query))

    @property
    def name(self) -> str:
        return f"ChangePointAdaptive(d={self.history_days})"
