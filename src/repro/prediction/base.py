"""Shared plumbing for availability predictors.

All predictors consume a :class:`CountMatrix` — per (machine, day, hour)
counts of unavailability occurrences (by event start time) — and answer
:class:`PredictionQuery` objects about future windows with two numbers:

* ``predict_count`` — expected unavailability occurrences in the window;
* ``predict_survival`` — probability that **no** unavailability starts in
  the window (the quantity a proactive scheduler needs: will a guest job
  launched now survive its runtime?).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import PredictionError
from ..traces.dataset import TraceDataset
from ..units import DAY, HOUR

__all__ = ["AvailabilityPredictor", "CountMatrix", "PredictionQuery"]


@dataclass(frozen=True)
class PredictionQuery:
    """A future time window on one machine.

    ``day`` is the absolute day index; the window spans
    ``[start_hour, start_hour + duration_hours)`` within (or past) it.
    Fractional hours are allowed.
    """

    machine_id: int
    day: int
    start_hour: float
    duration_hours: float

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise PredictionError("duration_hours must be positive")
        if not 0 <= self.start_hour < 24:
            raise PredictionError("start_hour must be in [0, 24)")

    @property
    def start_time(self) -> float:
        return self.day * DAY + self.start_hour * HOUR

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration_hours * HOUR

    def hour_cells(self) -> list[tuple[int, int, float]]:
        """(day, hour-of-day, overlap fraction) cells the window covers."""
        cells = []
        h = self.start_hour + self.day * 24
        end = h + self.duration_hours
        while h < end - 1e-9:
            cell_start = np.floor(h)
            overlap = min(end, cell_start + 1) - h
            day, hour = divmod(int(cell_start), 24)
            cells.append((day, hour, float(overlap)))
            h = cell_start + 1
        return cells


class CountMatrix:
    """Per (machine, day, hour) unavailability-start counts for a dataset."""

    def __init__(self, dataset: TraceDataset) -> None:
        self.n_machines = dataset.n_machines
        self.n_days = dataset.n_days
        self.start_weekday = dataset.start_weekday
        self.counts = np.zeros(
            (self.n_machines, self.n_days, 24), dtype=np.int64
        )
        for e in dataset.events:
            day, rem = divmod(e.start, DAY)
            day = int(day)
            hour = int(rem // HOUR)
            if day < self.n_days:
                self.counts[e.machine_id, day, hour] += 1

    def is_weekend_day(self, day: int) -> bool:
        return (day + self.start_weekday) % 7 >= 5

    def same_type_days_before(self, day: int, limit: int | None = None) -> list[int]:
        """Day indices before ``day`` with the same weekday/weekend type,
        most recent first."""
        target = self.is_weekend_day(day)
        days = [d for d in range(day - 1, -1, -1) if self.is_weekend_day(d) == target]
        return days if limit is None else days[:limit]

    def window_count(self, machine_id: int, day: int, query: PredictionQuery) -> float:
        """Fractional-overlap count of events in the query window shape,
        transplanted onto ``day`` (for history lookups)."""
        total = 0.0
        for cell_day_offset, hour, overlap in _shifted_cells(query, day):
            if 0 <= cell_day_offset < self.n_days:
                total += overlap * self.counts[machine_id, cell_day_offset, hour]
        return total


def _shifted_cells(query: PredictionQuery, day: int) -> list[tuple[int, int, float]]:
    """The query's hour cells with its anchor day replaced by ``day``."""
    shift = day - query.day
    return [(d + shift, h, o) for (d, h, o) in query.hour_cells()]


class AvailabilityPredictor(abc.ABC):
    """Base class: fit on a trace dataset, answer window queries."""

    def __init__(self) -> None:
        self._matrix: CountMatrix | None = None

    def fit(self, dataset: TraceDataset) -> "AvailabilityPredictor":
        """Learn from a (training) trace dataset.  Returns self."""
        self._matrix = CountMatrix(dataset)
        self._fit(self._matrix)
        return self

    def _fit(self, matrix: CountMatrix) -> None:
        """Subclass hook; default does nothing beyond storing the matrix."""

    @property
    def matrix(self) -> CountMatrix:
        if self._matrix is None:
            raise PredictionError(f"{type(self).__name__} is not fitted")
        return self._matrix

    @abc.abstractmethod
    def predict_count(self, query: PredictionQuery) -> float:
        """Expected number of unavailability occurrences in the window."""

    def predict_survival(self, query: PredictionQuery) -> float:
        """P(no unavailability starts in the window).

        Default: treat the predicted count as a Poisson mean.  Subclasses
        with direct empirical estimates override this.
        """
        lam = max(self.predict_count(query), 0.0)
        return float(np.exp(-lam))

    @property
    def name(self) -> str:
        return type(self).__name__
