"""Predictor evaluation over held-out trace days.

Splits a dataset chronologically (train on the first ``train_days``, test
on the rest), queries every predictor with sliding windows on the test
days, and scores:

* **count MAE** — mean absolute error of the predicted event count;
* **Brier score** — squared error of the survival probability against the
  binary "window was event-free" outcome (lower is better);
* **calibration** — predicted vs empirical survival by probability decile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import PredictionError
from ..obs.metrics import span
from ..traces.dataset import TraceDataset
from .base import AvailabilityPredictor, CountMatrix, PredictionQuery

__all__ = ["EvaluationResult", "PredictorScore", "evaluate_predictors"]


@dataclass(frozen=True)
class PredictorScore:
    """Aggregate scores of one predictor."""

    name: str
    count_mae: float
    brier: float
    n_queries: int
    calibration: tuple[tuple[float, float, int], ...] = field(default=())

    def __str__(self) -> str:
        return (
            f"{self.name:<34s} count MAE {self.count_mae:.3f}   "
            f"Brier {self.brier:.4f}   ({self.n_queries} windows)"
        )


@dataclass(frozen=True)
class EvaluationResult:
    """Scores of all predictors on the same query set."""

    scores: tuple[PredictorScore, ...]
    train_days: int
    test_days: int

    def best_by_brier(self) -> PredictorScore:
        return min(self.scores, key=lambda s: s.brier)

    def score_of(self, name: str) -> PredictorScore:
        for s in self.scores:
            if s.name == name:
                return s
        raise KeyError(name)


def make_queries(
    dataset: TraceDataset,
    *,
    first_day: int,
    durations_hours: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    start_hours: Sequence[float] = tuple(range(0, 24, 2)),
    machines: Sequence[int] | None = None,
) -> list[PredictionQuery]:
    """Sliding windows over the test days."""
    machines = list(machines) if machines is not None else list(
        range(dataset.n_machines)
    )
    queries = []
    for day in range(first_day, dataset.n_days):
        for h in start_hours:
            for dur in durations_hours:
                if day * 24 + h + dur > dataset.n_days * 24:
                    continue
                for m in machines:
                    queries.append(
                        PredictionQuery(
                            machine_id=m,
                            day=day,
                            start_hour=h,
                            duration_hours=dur,
                        )
                    )
    return queries


def evaluate_predictors(
    dataset: TraceDataset,
    predictors: Iterable[AvailabilityPredictor],
    *,
    train_days: int,
    durations_hours: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    start_hours: Sequence[float] = tuple(range(0, 24, 2)),
    machines: Sequence[int] | None = None,
    calibration_bins: int = 10,
) -> EvaluationResult:
    """Fit on the training prefix; score on windows over the test days.

    Predictors see only the training slice: history queries into test days
    are answered from the trailing edge of training data (queries carry
    absolute day indices, and the count matrix simply has no rows past the
    training span, so lookups clamp there).
    """
    if not 1 <= train_days < dataset.n_days:
        raise PredictionError(
            f"train_days must be in [1, {dataset.n_days - 1}], got {train_days}"
        )
    train = dataset.slice_days(0, train_days)
    with span("predict.queries"):
        queries = make_queries(
            dataset,
            first_day=train_days,
            durations_hours=durations_hours,
            start_hours=start_hours,
            machines=machines,
        )
        if not queries:
            raise PredictionError("no evaluation queries (test span too short)")

        # Ground truth from the full dataset.
        truth_matrix = CountMatrix(dataset)
        actual_counts = np.array(
            [truth_matrix.window_count(q.machine_id, q.day, q) for q in queries]
        )
        event_free = (actual_counts < 0.5).astype(float)

    scores = []
    for predictor in predictors:
        with span(f"predict.{predictor.name}"):
            predictor.fit(train)
            pred_counts = np.array([predictor.predict_count(q) for q in queries])
            pred_survival = np.clip(
                np.array([predictor.predict_survival(q) for q in queries]),
                0.0,
                1.0,
            )
            mae = float(np.abs(pred_counts - actual_counts).mean())
            brier = float(((pred_survival - event_free) ** 2).mean())
            calibration = _calibration(pred_survival, event_free, calibration_bins)
        scores.append(
            PredictorScore(
                name=predictor.name,
                count_mae=mae,
                brier=brier,
                n_queries=len(queries),
                calibration=calibration,
            )
        )
    return EvaluationResult(
        scores=tuple(scores),
        train_days=train_days,
        test_days=dataset.n_days - train_days,
    )


def evaluate_by_duration(
    dataset: TraceDataset,
    predictor: AvailabilityPredictor,
    *,
    train_days: int,
    durations_hours: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 12.0),
    start_hours: Sequence[float] = tuple(range(0, 24, 3)),
    machines: Sequence[int] | None = None,
) -> dict[float, PredictorScore]:
    """Score one predictor separately per window duration.

    The paper claims predictability "over an arbitrary future time
    window"; this shows how accuracy degrades (or not) as the window
    grows — long windows saturate toward "something will happen", short
    ones toward "nothing will".
    """
    out: dict[float, PredictorScore] = {}
    for duration in durations_hours:
        result = evaluate_predictors(
            dataset,
            [predictor],
            train_days=train_days,
            durations_hours=(duration,),
            start_hours=start_hours,
            machines=machines,
        )
        out[duration] = result.scores[0]
    return out


def evaluate_machine_ranking(
    dataset: TraceDataset,
    predictor: AvailabilityPredictor,
    *,
    train_days: int,
    duration_hours: float = 3.0,
    start_hours: Sequence[float] = tuple(range(0, 24, 3)),
) -> dict[str, float]:
    """How well the predictor *ranks machines* for placement decisions.

    A placement policy only needs relative ordering: which machine is
    likeliest to survive this window?  For every (test day, start hour) we
    rank machines by predicted survival and check against the realized
    outcome: the fraction of windows where the predictor's top-ranked
    machine was event-free ("top-1 hit"), versus the same for a random
    pick (the base rate), plus the mean Spearman correlation between
    predicted survival and realized cleanliness.
    """
    import scipy.stats

    if not 1 <= train_days < dataset.n_days:
        raise PredictionError("train_days must leave test days")
    predictor.fit(dataset.slice_days(0, train_days))
    truth = CountMatrix(dataset)

    top1_hits, base_rates, spearmans = [], [], []
    for day in range(train_days, dataset.n_days):
        for h in start_hours:
            if day * 24 + h + duration_hours > dataset.n_days * 24:
                continue
            preds, clean = [], []
            for m in range(dataset.n_machines):
                q = PredictionQuery(m, day, float(h), duration_hours)
                preds.append(predictor.predict_survival(q))
                clean.append(
                    1.0 if truth.window_count(m, day, q) < 0.5 else 0.0
                )
            preds_arr = np.asarray(preds)
            clean_arr = np.asarray(clean)
            if clean_arr.min() == clean_arr.max():
                continue  # uninformative window: all clean or all dirty
            top1_hits.append(clean_arr[int(np.argmax(preds_arr))])
            base_rates.append(clean_arr.mean())
            if preds_arr.min() < preds_arr.max():
                rho = scipy.stats.spearmanr(preds_arr, clean_arr).statistic
                if rho == rho:
                    spearmans.append(rho)

    if not top1_hits:
        raise PredictionError("no informative windows in the test span")
    return {
        "top1_hit_rate": float(np.mean(top1_hits)),
        "random_hit_rate": float(np.mean(base_rates)),
        "mean_spearman": float(np.mean(spearmans)) if spearmans else 0.0,
        "n_windows": float(len(top1_hits)),
    }


def _calibration(
    predicted: np.ndarray, outcome: np.ndarray, bins: int
) -> tuple[tuple[float, float, int], ...]:
    """(mean predicted, empirical rate, n) per probability bin."""
    edges = np.linspace(0.0, 1.0, bins + 1)
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (predicted >= lo) & (predicted < hi if hi < 1.0 else predicted <= hi)
        if mask.sum() == 0:
            continue
        rows.append(
            (
                float(predicted[mask].mean()),
                float(outcome[mask].mean()),
                int(mask.sum()),
            )
        )
    return tuple(rows)
