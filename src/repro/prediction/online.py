"""Online (streaming) availability prediction.

A deployed FGCS node cannot refit on a frozen dataset: events arrive one
at a time as the detector emits them, and predictions must be available
continuously.  :class:`OnlinePredictor` maintains the per-(machine, day,
hour) counts incrementally — ``observe`` events as they are detected, ask
for windows at any moment — and is provably equivalent to refitting the
batch :class:`~repro.prediction.history.HistoryWindowPredictor` on the
events observed so far (see the equivalence test).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Literal

import numpy as np

from ..core.events import UnavailabilityEvent
from ..errors import PredictionError
from ..units import DAY, HOUR
from .base import PredictionQuery

__all__ = ["OnlinePredictor"]


class OnlinePredictor:
    """Incrementally updated history-window predictor.

    Parameters
    ----------
    n_machines:
        Machines in the testbed (ids 0..n-1).
    history_days:
        Same-type days consulted per query.
    start_weekday:
        Weekday of day 0 (0 = Monday).
    laplace:
        Survival smoothing, as in the batch predictor.
    """

    def __init__(
        self,
        n_machines: int,
        *,
        history_days: int = 8,
        start_weekday: int = 0,
        laplace: float = 0.5,
        statistic: Literal["mean", "median"] = "mean",
    ) -> None:
        if n_machines <= 0:
            raise PredictionError("n_machines must be positive")
        if history_days < 1:
            raise PredictionError("history_days must be >= 1")
        self.n_machines = n_machines
        self.history_days = history_days
        self.start_weekday = start_weekday
        self.laplace = laplace
        self.statistic = statistic
        #: (machine, day) -> 24-vector of counts; sparse by day.
        self._counts: dict[tuple[int, int], np.ndarray] = defaultdict(
            lambda: np.zeros(24, dtype=np.int64)
        )
        self._latest_time = 0.0

    # -- ingestion -----------------------------------------------------------

    def observe(self, event: UnavailabilityEvent) -> None:
        """Ingest one detected unavailability event (by start time)."""
        if not 0 <= event.machine_id < self.n_machines:
            raise PredictionError(
                f"machine {event.machine_id} outside testbed"
            )
        day, rem = divmod(event.start, DAY)
        self._counts[(event.machine_id, int(day))][int(rem // HOUR)] += 1
        self._latest_time = max(self._latest_time, event.start)

    def observe_all(self, events) -> "OnlinePredictor":
        for e in events:
            self.observe(e)
        return self

    # -- querying -------------------------------------------------------------

    def _is_weekend(self, day: int) -> bool:
        return (day + self.start_weekday) % 7 >= 5

    def _history_days_before(self, day: int) -> list[int]:
        target = self._is_weekend(day)
        days = []
        d = day - 1
        while d >= 0 and len(days) < self.history_days:
            if self._is_weekend(d) == target:
                days.append(d)
            d -= 1
        return days

    def _window_count(
        self, machine_id: int, day: int, query: PredictionQuery
    ) -> float:
        total = 0.0
        shift = day - query.day
        for cell_day, hour, overlap in query.hour_cells():
            counts = self._counts.get((machine_id, cell_day + shift))
            if counts is not None:
                total += overlap * counts[hour]
        return total

    def _history_counts(self, query: PredictionQuery) -> np.ndarray:
        days = self._history_days_before(query.day)
        if not days:
            raise PredictionError(
                f"no same-type history observed before day {query.day}"
            )
        return np.array(
            [self._window_count(query.machine_id, d, query) for d in days]
        )

    def predict_count(self, query: PredictionQuery) -> float:
        counts = self._history_counts(query)
        if self.statistic == "median":
            return float(np.median(counts))
        return float(counts.mean())

    def predict_survival(self, query: PredictionQuery) -> float:
        counts = self._history_counts(query)
        clean = float(np.count_nonzero(counts < 0.5))
        return (clean + self.laplace) / (counts.size + 2 * self.laplace)

    @property
    def name(self) -> str:
        return f"Online(d={self.history_days},{self.statistic})"
