"""A generative semi-Markov model over the five availability states.

Fits Figure 5 as a stochastic process: state-transition probabilities from
the empirical jump chain plus per-state dwell-time distributions (by day
type).  Once fitted it can

* simulate synthetic availability futures (Monte-Carlo rollouts from a
  given state), and
* answer survival queries ("will the machine stay out of S3/S4/S5 for the
  next w hours?") by rollout averaging.

This closes the modelling loop: the multi-state model is not only a
detector but a generator whose synthetic traces can be compared back to
the real ones (see the round-trip test: simulated state occupancy matches
the training trace).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.model import MultiStateModel
from ..core.samples import SampleBatch
from ..errors import PredictionError
from ..rng import generator_from
from ..units import HOUR

__all__ = ["SemiMarkovModel"]

_N_STATES = 5  # S1..S5 as indices 0..4
_FAILURES = (2, 3, 4)


class SemiMarkovModel:
    """Jump-chain + dwell-time model of the availability process."""

    def __init__(self, model: Optional[MultiStateModel] = None) -> None:
        self.model = model or MultiStateModel()
        #: transition[i, j]: jump-chain probability i -> j (i != j).
        self._jump: np.ndarray | None = None
        #: dwell[i]: list of observed dwell durations (seconds) in state i.
        self._dwell: list[np.ndarray] | None = None

    # -- fitting ------------------------------------------------------------

    def fit(self, batches: list[SampleBatch]) -> "SemiMarkovModel":
        """Fit from one sample stream per machine."""
        if not batches:
            raise PredictionError("need at least one sample stream")
        jump_counts = np.zeros((_N_STATES, _N_STATES))
        dwell: list[list[float]] = [[] for _ in range(_N_STATES)]
        for batch in batches:
            if len(batch) < 2:
                continue
            codes = self.model.classify_batch(batch) - 1
            period = float(np.median(np.diff(batch.times)))
            change = np.flatnonzero(np.diff(codes) != 0)
            starts = np.concatenate(([0], change + 1))
            ends = np.concatenate((change + 1, [len(codes)]))
            for k, (b, e) in enumerate(zip(starts, ends)):
                s = int(codes[b])
                dwell[s].append((e - b) * period)
                if k + 1 < len(starts):
                    jump_counts[s, int(codes[starts[k + 1]])] += 1
        if jump_counts.sum() == 0:
            raise PredictionError("sample streams contain no transitions")
        totals = jump_counts.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            self._jump = np.where(totals > 0, jump_counts / totals, 0.0)
        self._dwell = [np.asarray(d, dtype=float) for d in dwell]
        return self

    # -- introspection ----------------------------------------------------------

    @property
    def jump_matrix(self) -> np.ndarray:
        if self._jump is None:
            raise PredictionError("SemiMarkovModel is not fitted")
        return self._jump

    def mean_dwell(self, state_index: int) -> float:
        """Mean dwell seconds in state S{state_index+1} (NaN if unseen)."""
        assert self._dwell is not None
        d = self._dwell[state_index]
        return float(d.mean()) if d.size else float("nan")

    # -- simulation ---------------------------------------------------------------

    def simulate(
        self,
        duration: float,
        *,
        start_state: int = 0,
        rng=None,
    ) -> list[tuple[int, float, float]]:
        """One rollout: [(state_index, start, end), ...] covering duration."""
        if self._jump is None or self._dwell is None:
            raise PredictionError("SemiMarkovModel is not fitted")
        rng = generator_from(rng)
        t = 0.0
        state = start_state
        out: list[tuple[int, float, float]] = []
        while t < duration:
            d = self._dwell[state]
            if d.size == 0:
                dwell = duration - t  # unseen state: absorb
            else:
                dwell = float(d[rng.integers(d.size)])  # empirical bootstrap
            end = min(t + dwell, duration)
            out.append((state, t, end))
            t = end
            if t >= duration:
                break
            probs = self._jump[state]
            if probs.sum() <= 0:
                break
            state = int(rng.choice(_N_STATES, p=probs / probs.sum()))
        return out

    def survival(
        self,
        window_hours: float,
        *,
        start_state: int = 0,
        rollouts: int = 200,
        rng=None,
    ) -> float:
        """P(no failure state entered within the window), by Monte Carlo.

        The rollout starts a fresh dwell in ``start_state`` — the renewal
        assumption a scheduler makes when it just observed the machine
        recover.
        """
        if window_hours <= 0:
            raise PredictionError("window_hours must be positive")
        rng = generator_from(rng)
        window = window_hours * HOUR
        clean = 0
        for _ in range(rollouts):
            segments = self.simulate(window, start_state=start_state, rng=rng)
            if all(s not in _FAILURES for (s, _, _) in segments):
                clean += 1
        return clean / rollouts

    def occupancy(
        self, duration: float, *, rollouts: int = 50, rng=None
    ) -> np.ndarray:
        """Mean fraction of time in each state over simulated futures."""
        rng = generator_from(rng)
        acc = np.zeros(_N_STATES)
        for _ in range(rollouts):
            for state, t0, t1 in self.simulate(duration, rng=rng):
                acc[state] += t1 - t0
        return acc / (rollouts * duration)
