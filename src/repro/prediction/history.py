"""The paper's history-window predictor.

"It is feasible to predict resource availability over an arbitrary future
time window, if the prediction uses history data for the corresponding
time windows from previous weekdays or weekends.  ...  An aggressive
prediction algorithm would accommodate the small deviations of resource
availability among related time windows.  One approach is to use
statistics on history trace to alleviate the effects of 'irregular'
data."  (Section 5.3)

For a query window, the predictor looks at the same wall-clock window on
the most recent ``history_days`` days of the same type (weekday/weekend)
on the same machine.  The expected count is a robust statistic over those
history counts; survival is the empirical fraction of history windows that
were event-free, with optional Laplace smoothing.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..errors import PredictionError
from .base import AvailabilityPredictor, PredictionQuery

__all__ = ["HistoryWindowPredictor"]


class HistoryWindowPredictor(AvailabilityPredictor):
    """Predict a window from the same window on recent same-type days.

    Parameters
    ----------
    history_days:
        How many past days of the matching type to use.
    statistic:
        ``"mean"``, ``"median"`` or ``"trimmed"`` (20% trimmed mean) over
        the history counts — the paper's suggestion to damp irregular days.
    laplace:
        Smoothing pseudo-count for the survival estimate: with ``k``
        event-free days out of ``n``, survival = ``(k + laplace) /
        (n + 2 * laplace)``.
    pool_machines:
        Also average over all machines (the testbed is homogeneous); with
        False only the queried machine's history is used.
    """

    def __init__(
        self,
        history_days: int = 8,
        *,
        statistic: Literal["mean", "median", "trimmed"] = "mean",
        laplace: float = 0.5,
        pool_machines: bool = False,
    ) -> None:
        super().__init__()
        if history_days < 1:
            raise PredictionError("history_days must be >= 1")
        if statistic not in ("mean", "median", "trimmed"):
            raise PredictionError(f"unknown statistic {statistic!r}")
        if laplace < 0:
            raise PredictionError("laplace must be >= 0")
        self.history_days = history_days
        self.statistic = statistic
        self.laplace = laplace
        self.pool_machines = pool_machines

    # -- internals -----------------------------------------------------------

    def _history_counts(self, query: PredictionQuery) -> np.ndarray:
        m = self.matrix
        days = m.same_type_days_before(min(query.day, m.n_days), self.history_days)
        if not days:
            raise PredictionError(
                f"no same-type history before day {query.day}; "
                "train on a longer trace"
            )
        machines = (
            range(m.n_machines) if self.pool_machines else [query.machine_id]
        )
        counts = [
            m.window_count(mid, d, query) for d in days for mid in machines
        ]
        return np.asarray(counts, dtype=float)

    def _reduce(self, counts: np.ndarray) -> float:
        if self.statistic == "median":
            return float(np.median(counts))
        if self.statistic == "trimmed":
            k = int(0.2 * counts.size)
            trimmed = np.sort(counts)[k : counts.size - k or None]
            return float(trimmed.mean())
        return float(counts.mean())

    # -- API ----------------------------------------------------------------------

    def predict_count(self, query: PredictionQuery) -> float:
        return self._reduce(self._history_counts(query))

    def predict_survival(self, query: PredictionQuery) -> float:
        counts = self._history_counts(query)
        clean = float(np.count_nonzero(counts < 0.5))
        n = counts.size
        return (clean + self.laplace) / (n + 2 * self.laplace)

    def predict_survival_interval(
        self, query: PredictionQuery, *, confidence: float = 0.9
    ) -> tuple[float, float]:
        """A (lo, hi) credible interval for the survival probability.

        Beta posterior from the history's clean/dirty window counts (the
        Laplace prior doubles as the Beta prior).  Risk-averse schedulers
        place by the lower bound: a machine with 8/8 clean history days
        beats one with 2/2, even though both have point estimate ~1.
        """
        if not 0 < confidence < 1:
            raise PredictionError("confidence must be in (0, 1)")
        import scipy.stats

        counts = self._history_counts(query)
        clean = float(np.count_nonzero(counts < 0.5))
        n = counts.size
        a = clean + self.laplace
        b = (n - clean) + self.laplace
        alpha = (1 - confidence) / 2
        dist = scipy.stats.beta(a, b)
        return (float(dist.ppf(alpha)), float(dist.ppf(1 - alpha)))

    @property
    def name(self) -> str:
        pooled = "+pool" if self.pool_machines else ""
        return (
            f"HistoryWindow(d={self.history_days},{self.statistic}{pooled})"
        )
