"""Baseline predictors the history-window approach must beat.

These represent progressively more informed null models:

* :class:`GlobalRatePredictor` — one Poisson rate for everything (what a
  prediction-oblivious scheduler implicitly assumes);
* :class:`HourlyMeanPredictor` — hour-of-day rates, ignoring day type;
* :class:`LastDayPredictor` — yesterday's matching window only;
* :class:`EwmaPredictor` — exponentially weighted history (recency bias).
"""

from __future__ import annotations

import numpy as np

from ..errors import PredictionError
from .base import AvailabilityPredictor, CountMatrix, PredictionQuery

__all__ = [
    "GlobalRatePredictor",
    "HourlyMeanPredictor",
    "LastDayPredictor",
    "EwmaPredictor",
]


class GlobalRatePredictor(AvailabilityPredictor):
    """A single unavailability rate per machine-hour, no structure at all."""

    def __init__(self) -> None:
        super().__init__()
        self._rate = 0.0

    def _fit(self, matrix: CountMatrix) -> None:
        total = float(matrix.counts.sum())
        hours = matrix.n_machines * matrix.n_days * 24
        self._rate = total / hours

    def predict_count(self, query: PredictionQuery) -> float:
        return self._rate * query.duration_hours


class HourlyMeanPredictor(AvailabilityPredictor):
    """Mean count per hour-of-day, pooled over machines and all days.

    Captures the diurnal shape but not the weekday/weekend distinction.
    """

    def __init__(self) -> None:
        super().__init__()
        self._hour_rate = np.zeros(24)

    def _fit(self, matrix: CountMatrix) -> None:
        per_hour = matrix.counts.mean(axis=(0, 1))  # mean over machines, days
        self._hour_rate = per_hour

    def predict_count(self, query: PredictionQuery) -> float:
        return float(
            sum(o * self._hour_rate[h] for (_, h, o) in query.hour_cells())
        )


class LastDayPredictor(AvailabilityPredictor):
    """Exactly the matching window on the single most recent same-type day.

    Maximally recency-biased: it inherits every irregularity of that one
    day, which is what the paper's "use statistics to alleviate irregular
    data" remark warns about.
    """

    def predict_count(self, query: PredictionQuery) -> float:
        m = self.matrix
        days = m.same_type_days_before(min(query.day, m.n_days), 1)
        if not days:
            raise PredictionError("no same-type history day available")
        return m.window_count(query.machine_id, days[0], query)

    def predict_survival(self, query: PredictionQuery) -> float:
        # A window is either clean or not on the one history day; soften
        # the extremes slightly so the Brier score is finite-sample fair.
        count = self.predict_count(query)
        return 0.9 if count < 0.5 else 0.1


class EwmaPredictor(AvailabilityPredictor):
    """Exponentially weighted mean over previous same-type days."""

    def __init__(self, *, alpha: float = 0.35, max_days: int = 15) -> None:
        super().__init__()
        if not 0 < alpha <= 1:
            raise PredictionError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.max_days = max_days

    def predict_count(self, query: PredictionQuery) -> float:
        m = self.matrix
        days = m.same_type_days_before(min(query.day, m.n_days), self.max_days)
        if not days:
            raise PredictionError("no same-type history available")
        weights = np.array([(1 - self.alpha) ** k for k in range(len(days))])
        weights /= weights.sum()
        counts = np.array(
            [m.window_count(query.machine_id, d, query) for d in days]
        )
        return float((weights * counts).sum())

    @property
    def name(self) -> str:
        return f"EWMA(alpha={self.alpha})"
