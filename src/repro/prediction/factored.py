"""A factored predictor: per-machine rate x pooled daily shape.

The history-window predictor estimates every (machine, window) cell
directly, which is noisy when history is short.  But the testbed's
structure factorizes: *how busy a machine is* is a stable per-machine
scalar (some desks are simply more popular), while *when* unavailability
happens follows the shared daily pattern.  Estimating the two factors
separately pools far more data per parameter:

    E[count(machine m, window W on day type T)]
        = rate_m x shape_T(W) / mean_rate

This is the "use statistics on history trace to alleviate the effects of
irregular data" direction of Section 5.3 taken one step further.
"""

from __future__ import annotations

import numpy as np

from ..errors import PredictionError
from .base import AvailabilityPredictor, CountMatrix, PredictionQuery

__all__ = ["FactoredPredictor"]


class FactoredPredictor(AvailabilityPredictor):
    """Per-machine busyness factor times pooled hour-of-day shape.

    Parameters
    ----------
    shrinkage:
        Shrinks per-machine rates toward the fleet mean (empirical-Bayes
        style): with total machine counts ``c_m`` over ``H`` hours,
        ``rate_m = (c_m + shrinkage * c_mean) / (H * (1 + shrinkage))``.
        0 = raw per-machine rates; larger = closer to pooled.
    """

    def __init__(self, *, shrinkage: float = 0.5) -> None:
        super().__init__()
        if shrinkage < 0:
            raise PredictionError("shrinkage must be >= 0")
        self.shrinkage = shrinkage
        self._machine_factor: np.ndarray | None = None
        #: shape[(weekend, hour)] = mean pooled events per machine-hour.
        self._shape: dict[bool, np.ndarray] = {}

    def _fit(self, matrix: CountMatrix) -> None:
        counts = matrix.counts  # (machines, days, 24)
        day_types = np.array(
            [matrix.is_weekend_day(d) for d in range(matrix.n_days)]
        )
        per_machine = counts.sum(axis=(1, 2)).astype(float)
        mean_count = float(per_machine.mean())
        if mean_count <= 0:
            raise PredictionError("training trace contains no events")
        shrunk = (per_machine + self.shrinkage * mean_count) / (
            1.0 + self.shrinkage
        )
        self._machine_factor = shrunk / mean_count

        for weekend in (False, True):
            sel = counts[:, day_types == weekend, :]
            if sel.shape[1] == 0:
                raise PredictionError(
                    "training trace lacks "
                    + ("weekend" if weekend else "weekday")
                    + " days"
                )
            # Pooled over machines and days: events per machine-hour cell.
            self._shape[weekend] = sel.mean(axis=(0, 1))

    def predict_count(self, query: PredictionQuery) -> float:
        if self._machine_factor is None:
            raise PredictionError(f"{self.name} is not fitted")
        m = self.matrix
        factor = float(self._machine_factor[query.machine_id])
        total = 0.0
        for day, hour, overlap in query.hour_cells():
            weekend = m.is_weekend_day(day)
            total += overlap * float(self._shape[weekend][hour])
        return factor * total

    @property
    def name(self) -> str:
        return f"Factored(shrink={self.shrinkage})"
