"""Availability prediction (the paper's stated goal and future work).

Section 5.3 concludes that "it is feasible to predict resource availability
over an arbitrary future time window, if the prediction uses history data
for the corresponding time windows from previous weekdays or weekends."
This package implements exactly that predictor, several baselines it must
beat for the claim to hold, and an evaluation harness over held-out trace
days.

* :mod:`~repro.prediction.base` — query/count-matrix plumbing shared by all
  predictors;
* :mod:`~repro.prediction.history` — the paper's history-window predictor;
* :mod:`~repro.prediction.baselines` — global-rate, hourly-mean, last-day
  and EWMA baselines;
* :mod:`~repro.prediction.markov` — an interval-based semi-Markov baseline;
* :mod:`~repro.prediction.evaluate` — train/test evaluation (count MAE,
  survival Brier score, calibration).
"""

from .base import AvailabilityPredictor, CountMatrix, PredictionQuery
from .baselines import (
    EwmaPredictor,
    GlobalRatePredictor,
    HourlyMeanPredictor,
    LastDayPredictor,
)
from .adaptive import ChangePointAdaptivePredictor, detect_change_points
from .ensemble import EnsemblePredictor
from .evaluate import (
    EvaluationResult,
    evaluate_by_duration,
    evaluate_machine_ranking,
    evaluate_predictors,
)
from .factored import FactoredPredictor
from .history import HistoryWindowPredictor
from .markov import IntervalExponentialPredictor
from .online import OnlinePredictor
from .renewal import RenewalAgePredictor
from .semimarkov import SemiMarkovModel

__all__ = [
    "AvailabilityPredictor",
    "ChangePointAdaptivePredictor",
    "CountMatrix",
    "detect_change_points",
    "EvaluationResult",
    "EnsemblePredictor",
    "EwmaPredictor",
    "FactoredPredictor",
    "GlobalRatePredictor",
    "HistoryWindowPredictor",
    "HourlyMeanPredictor",
    "IntervalExponentialPredictor",
    "LastDayPredictor",
    "OnlinePredictor",
    "PredictionQuery",
    "RenewalAgePredictor",
    "SemiMarkovModel",
    "evaluate_by_duration",
    "evaluate_machine_ranking",
    "evaluate_predictors",
]
