"""Ensemble availability prediction.

Different predictors capture different structure: the history window sees
machine-specific recent windows, the factored model sees stable busyness
and the pooled daily shape, the hourly mean smooths aggressively.  A
convex combination usually beats each member on Brier score (variance
reduction on correlated-but-distinct estimators), and the weights can be
tuned on a validation slice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import PredictionError
from ..traces.dataset import TraceDataset
from .base import AvailabilityPredictor, PredictionQuery

__all__ = ["EnsemblePredictor"]


class EnsemblePredictor(AvailabilityPredictor):
    """Weighted average of member predictors.

    Parameters
    ----------
    members:
        Predictors to combine (fitted by this ensemble's :meth:`fit`).
    weights:
        Convex weights (normalized); default uniform.
    """

    def __init__(
        self,
        members: Sequence[AvailabilityPredictor],
        *,
        weights: Sequence[float] | None = None,
    ) -> None:
        super().__init__()
        if not members:
            raise PredictionError("ensemble needs at least one member")
        self.members = list(members)
        if weights is None:
            weights = [1.0] * len(self.members)
        w = np.asarray(list(weights), dtype=float)
        if w.size != len(self.members) or np.any(w < 0) or w.sum() <= 0:
            raise PredictionError("weights must be non-negative, same length")
        self.weights = w / w.sum()

    def fit(self, dataset: TraceDataset) -> "EnsemblePredictor":
        super().fit(dataset)
        for m in self.members:
            m.fit(dataset)
        return self

    def predict_count(self, query: PredictionQuery) -> float:
        return float(
            sum(
                w * m.predict_count(query)
                for w, m in zip(self.weights, self.members)
            )
        )

    def predict_survival(self, query: PredictionQuery) -> float:
        return float(
            sum(
                w * m.predict_survival(query)
                for w, m in zip(self.weights, self.members)
            )
        )

    @property
    def name(self) -> str:
        inner = "+".join(m.name for m in self.members)
        return f"Ensemble({inner})"


def tune_weights(
    ensemble: EnsemblePredictor,
    dataset: TraceDataset,
    *,
    train_days: int,
    validation_days: int,
    grid_steps: int = 5,
    durations_hours: Sequence[float] = (2.0, 4.0),
    start_hours: Sequence[float] = (0, 6, 12, 18),
) -> EnsemblePredictor:
    """Grid-search convex weights on a validation slice (two members only).

    Fits members on the first ``train_days``, scores Brier on the next
    ``validation_days``, and returns a new ensemble with the best weights.
    """
    if len(ensemble.members) != 2:
        raise PredictionError("weight tuning supports exactly two members")
    total = train_days + validation_days
    if total > dataset.n_days:
        raise PredictionError("train + validation exceeds the trace")
    from .evaluate import evaluate_predictors

    best_w, best_brier = 0.5, np.inf
    for k in range(grid_steps + 1):
        w = k / grid_steps
        candidate = EnsemblePredictor(
            ensemble.members, weights=[w, 1.0 - w]
        )
        result = evaluate_predictors(
            dataset.slice_days(0, total),
            [candidate],
            train_days=train_days,
            durations_hours=durations_hours,
            start_hours=start_hours,
        )
        brier = result.scores[0].brier
        if brier < best_brier:
            best_w, best_brier = w, brier
    return EnsemblePredictor(ensemble.members, weights=[best_w, 1.0 - best_w])
