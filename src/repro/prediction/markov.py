"""An interval-based (semi-Markov) baseline.

Models each machine as alternating available/unavailable periods whose
available-interval lengths follow the empirical day-type distribution;
survival of a window is the probability that the current availability
interval outlives it, assuming a fresh interval starts at the window
(a renewal approximation).  It uses Figure 6's information (interval
lengths by day type) but not Figure 7's (time-of-day structure), so the
gap between it and the history-window predictor measures how much the
daily pattern itself is worth.
"""

from __future__ import annotations

import numpy as np

from ..errors import PredictionError
from ..traces.dataset import TraceDataset
from ..units import HOUR
from .base import AvailabilityPredictor, PredictionQuery

__all__ = ["IntervalExponentialPredictor"]


class IntervalExponentialPredictor(AvailabilityPredictor):
    """Exponential survival with day-type-specific mean interval lengths."""

    def __init__(self) -> None:
        super().__init__()
        self._mean_interval_h = {False: float("nan"), True: float("nan")}

    def fit(self, dataset: TraceDataset) -> "IntervalExponentialPredictor":
        super().fit(dataset)
        weekday, weekend = [], []
        for iv in dataset.all_intervals(include_censored=False):
            (weekend if dataset.is_weekend_time(iv.start) else weekday).append(
                iv.length / HOUR
            )
        if not weekday or not weekend:
            raise PredictionError("trace too short to fit interval statistics")
        self._mean_interval_h[False] = float(np.mean(weekday))
        self._mean_interval_h[True] = float(np.mean(weekend))
        return self

    def _rate(self, query: PredictionQuery) -> float:
        weekend = self.matrix.is_weekend_day(query.day)
        mean_h = self._mean_interval_h[weekend]
        if not np.isfinite(mean_h) or mean_h <= 0:
            raise PredictionError("predictor not fitted")
        return 1.0 / mean_h

    def predict_count(self, query: PredictionQuery) -> float:
        return self._rate(query) * query.duration_hours

    def predict_survival(self, query: PredictionQuery) -> float:
        return float(np.exp(-self._rate(query) * query.duration_hours))

    @property
    def name(self) -> str:
        return "IntervalExponential"
