"""Renewal-age survival prediction from the interval-length distribution.

Figure 6's message is that availability-interval lengths have strong
structure: almost no interval ends before 2 hours, most end between 2 and
4 hours (weekdays) or 4 and 6 (weekends).  That makes the *age* of the
current availability interval — how long ago the machine's last
unavailability ended — highly informative:

    P(survive another w hours | age a) = S(a + w) / S(a)

with ``S`` the empirical interval-length survival function per day type.
A machine that just came back is very likely to stay available for the
next couple of hours; one that has been available for three hours is due.

This predictor answers a different query shape than the count-matrix
predictors (it needs the machine's current age), so it stands alone; the
age-aware scheduling policy is its consumer.
"""

from __future__ import annotations

import numpy as np

from ..errors import PredictionError
from ..traces.dataset import TraceDataset
from ..units import HOUR

__all__ = ["RenewalAgePredictor"]


class RenewalAgePredictor:
    """Conditional survival of availability intervals given current age."""

    def __init__(self, *, tail_rate_quantile: float = 0.9) -> None:
        #: Beyond the observed data, the tail decays exponentially at the
        #: hazard implied by the intervals above this quantile.
        if not 0.5 <= tail_rate_quantile < 1.0:
            raise PredictionError("tail_rate_quantile must be in [0.5, 1)")
        self.tail_rate_quantile = tail_rate_quantile
        self._lengths: dict[bool, np.ndarray] = {}
        self._tail_rate: dict[bool, float] = {}

    def fit(self, dataset: TraceDataset) -> "RenewalAgePredictor":
        """Collect interval lengths by day type (of the interval start)."""
        weekday, weekend = [], []
        for iv in dataset.all_intervals(include_censored=False):
            (weekend if dataset.is_weekend_time(iv.start) else weekday).append(
                iv.length / HOUR
            )
        if len(weekday) < 10 or len(weekend) < 10:
            raise PredictionError(
                "too few intervals to fit a renewal model; use a longer trace"
            )
        for key, data in ((False, weekday), (True, weekend)):
            arr = np.sort(np.asarray(data, dtype=float))
            self._lengths[key] = arr
            # Mean residual length above the tail quantile -> tail hazard.
            q = float(np.quantile(arr, self.tail_rate_quantile))
            tail = arr[arr > q] - q
            mean_tail = float(tail.mean()) if tail.size else 1.0
            self._tail_rate[key] = 1.0 / max(mean_tail, 1e-6)
        return self

    def survival_function(self, length_h: float, *, weekend: bool) -> float:
        """S(length) = P(interval longer than ``length_h``)."""
        if not self._lengths:
            raise PredictionError("RenewalAgePredictor is not fitted")
        arr = self._lengths[weekend]
        n = arr.size
        below = int(np.searchsorted(arr, length_h, side="right"))
        s = (n - below) / n
        if s > 0:
            return s
        # Exponential tail beyond the largest observed interval.
        overshoot = max(length_h - float(arr[-1]), 0.0)
        return (1.0 / n) * float(np.exp(-self._tail_rate[weekend] * overshoot))

    def survival(
        self, age_h: float, window_h: float, *, weekend: bool
    ) -> float:
        """P(no failure for another ``window_h`` | available ``age_h``)."""
        if age_h < 0 or window_h < 0:
            raise PredictionError("age and window must be >= 0")
        s_now = self.survival_function(age_h, weekend=weekend)
        s_later = self.survival_function(age_h + window_h, weekend=weekend)
        if s_now <= 0:
            return 0.0
        return min(s_later / s_now, 1.0)

    def expected_residual(self, age_h: float, *, weekend: bool) -> float:
        """E[remaining availability | age] in hours (numeric integral)."""
        grid = np.linspace(0.0, 24.0, 97)
        surv = np.array(
            [self.survival(age_h, w, weekend=weekend) for w in grid]
        )
        return float(np.trapezoid(surv, grid))
