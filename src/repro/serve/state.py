"""Live per-machine predictor state for the serving daemon.

The batch prediction path (:mod:`repro.prediction`) fits a
:class:`~repro.prediction.base.CountMatrix` over a frozen trace and
answers :class:`~repro.prediction.base.PredictionQuery` windows.  A
deployed forecast service cannot refit per request: it needs the same
per-(machine, day, hour) unavailability-start counts held as *live*
state — cheap to read thousands of times a second, updatable in place as
new events stream in, and small enough (or pageable enough) that a
million-machine fleet fits under a fixed RSS ceiling.

:class:`ServeState` is that state, split into two tiers:

* **base tier** — count blocks built from the bootstrap trace.  A state
  bootstrapped from in-memory columns holds one resident block; a
  store-backed state pages **fixed-size machine-range blocks** in and
  out through a :class:`~repro.serve.paging.BlockPager` (rebuilt
  zero-copy from the mmap'd binary shards, LRU-bounded by blocks and/or
  bytes), so the fleet's total state never has to be resident at once —
  the block grain is what lets a 10⁵–10⁶-machine fleet serve under a
  fixed RSS ceiling.
* **overlay tier** — a sparse ``(machine, day) -> 24-vector`` of counts
  from *streamed* events (``POST /v1/ingest`` or stdin JSONL).  The
  overlay is always resident (it only holds what was streamed) and is
  never evicted, so eviction can never lose live data: a machine's
  effective counts are always ``base + overlay``.  The overlay (plus
  the ingest tails) is what :meth:`save_overlay_snapshot` persists so
  restarts don't lose streamed events.

A state may own only a **machine range** of the fleet: the scale-out
router (:mod:`repro.serve.router`) gives each worker process a
contiguous run of shards, and the worker's state answers for exactly
those machines (``machine_lo``/``machine_hi``), raising
:class:`~repro.errors.WorkerRangeError` for the rest.  Fleet-vectorized
queries return per-owned-machine arrays the router scatter-gathers.

Exactness contract
------------------
For a state built from a trace with no streamed events, every answer is
*value-identical* to the batch path on the same trace:
:func:`counts_from_columns` reproduces ``CountMatrix.counts`` exactly
(same ``divmod`` binning, vectorized), and the query methods replicate
:class:`~repro.prediction.history.HistoryWindowPredictor`'s arithmetic
operation for operation — per-cell ``total += overlap * count``
accumulation in cell order, ``np.mean`` over the same-shaped history
vector, the same Laplace-smoothed survival quotient.  The fleet-wide
vectorized path (:meth:`ServeState.survival_fleet`) keeps the identical
per-cell accumulation order across machines, and block paging commutes
with counting (integer restriction to a machine sub-range), so capacity
and ranking answers agree with the scalar path bit for bit through any
block size, eviction churn, routing split, or snapshot/restore cycle.
The differential suites (``tests/test_serve_api.py``,
``tests/test_serve_paging.py``, ``tests/test_serve_router.py``) pin
this.

Ingest contract
---------------
Streamed delivery is not trusted to be clean.  At the ingest boundary,
per machine:

* event start times must be **non-decreasing** — an event starting
  before the machine's newest accepted event raises
  :class:`~repro.errors.IngestOrderError` and rejects the whole batch
  atomically (no partial application, so readers never observe a torn
  batch);
* an event **identical** to the machine's newest accepted event
  (same start, end, and state) is a duplicate delivery: it is dropped
  deterministically and counted, never double-ingested;
* events sharing a start time with different payloads are distinct
  events (simultaneous detections) and all accepted.

Validation and application are split (:meth:`validate_events` /
:meth:`apply_batch`) so the asynchronous ingest queue
(:mod:`repro.serve.ingest`) can decide a batch's fate synchronously at
the enqueue boundary — same contract, same result — and apply the
pre-validated counts later without re-deciding anything.

The batch path freezes its day horizon at the trace span; the live path
extends it as events arrive (``horizon_day``), so "now" queries keep
working past the end of the bootstrap trace.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from ..errors import (
    IngestOrderError,
    NoHistoryError,
    ServeError,
    WorkerRangeError,
)
from ..prediction.base import PredictionQuery
from ..traces.records import CODE_TO_STATE, EventColumns
from ..traces.shards import ShardedTraceDataset
from ..units import DAY, HOUR
from .paging import BlockPager

__all__ = [
    "IngestResult",
    "ServeState",
    "TierStats",
    "ValidatedBatch",
    "counts_from_columns",
]

#: Failure-state names accepted on the ingest boundary, by on-disk code.
_STATE_NAMES = {code: state.value for code, state in CODE_TO_STATE.items()}

#: Overlay-snapshot document version (bump on incompatible layout change).
SNAPSHOT_VERSION = 1


def counts_from_columns(cols: EventColumns) -> np.ndarray:
    """The ``(n_machines, n_days, 24)`` unavailability-start count matrix.

    Vectorized but binning-identical to
    :class:`repro.prediction.base.CountMatrix`: ``day, rem =
    divmod(start, DAY)``; ``hour = rem // HOUR``; events past the last
    whole day are dropped.  ``np.divmod`` / ``np.floor_divide`` run the
    same fmod-and-correct algorithm as CPython's float ``divmod``, so
    the two paths bin every float start identically (property-tested).
    """
    from .paging import counts_from_event_rows

    n_days = cols.n_days
    if len(cols) == 0 or n_days == 0:
        return np.zeros((cols.n_machines, n_days, 24), dtype=np.int64)
    return counts_from_event_rows(cols.events, cols.n_machines, n_days)


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one atomically applied ingest batch."""

    accepted: int
    deduplicated: int


@dataclass(frozen=True)
class TierStats:
    """A snapshot of the hot/cold tier and ingest accounting."""

    hot_entries: int
    resident_bytes: int
    hits: int
    rebuilds: int
    evictions: int
    streamed_events: int
    deduplicated_events: int
    overlay_cells: int
    #: Total pageable blocks in the base tier (1 for in-memory states).
    n_blocks: int = 1
    #: Configured block size (``None`` = whole-shard blocks).
    block_machines: Optional[int] = None


class _ParsedEvent:
    """One validated ingest event (internal)."""

    __slots__ = ("machine_id", "start", "end", "state")

    def __init__(self, machine_id: int, start: float, end: float, state: int):
        self.machine_id = machine_id
        self.start = start
        self.end = end
        self.state = state

    def same_as(self, other: "_ParsedEvent") -> bool:
        return (
            self.start == other.start
            and self.end == other.end
            and self.state == other.state
        )


@dataclass(frozen=True)
class ValidatedBatch:
    """A batch whose fate was fully decided at the ingest boundary.

    ``accepted`` holds the events that will count (duplicates already
    dropped), ``tails`` the per-machine newest-event delta the batch
    leaves behind, and ``horizon_day`` the projected first-unobserved
    day once applied — everything a deferred apply or a queue's shadow
    state needs, with no re-validation.
    """

    accepted: tuple
    deduplicated: int
    tails: dict = field(default_factory=dict)
    horizon_day: int = 0

    @property
    def n_accepted(self) -> int:
        return len(self.accepted)

    def result(self) -> IngestResult:
        return IngestResult(
            accepted=len(self.accepted), deduplicated=self.deduplicated
        )


class ServeState:
    """The daemon's live, query-ready fleet state (thread-safe).

    Parameters
    ----------
    n_machines, n_days, start_weekday:
        The fleet frame.  ``n_days`` is the bootstrap trace's whole-day
        horizon; streamed events may extend it (see ``horizon_day``).
    store:
        Optional shard store backing the base tier.  Without one the
        state is overlay-only (pure streamed mode) unless bootstrapped
        via :meth:`from_columns`.
    shard_range:
        With a store: the contiguous shard range ``[lo, hi)`` this state
        owns (a scale-out worker's slice).  Default: every shard.
    hot_shards:
        Maximum base-tier blocks resident at once (``None`` = unbounded).
        With the default whole-shard blocks this bounds resident
        *shards*, which is what the flag has always meant.
    hot_bytes:
        Maximum base-tier resident bytes (``None`` = unbounded).  Both
        bounds may be active; eviction runs until both hold.
    block_machines:
        Machines per pageable base-tier block (``None`` = whole-shard
        blocks).  Smaller blocks page at a finer grain — the knob that
        holds a 10⁵⁺-machine fleet under a fixed RSS ceiling.
    history_days, statistic, laplace:
        Predictor knobs, matching
        :class:`~repro.prediction.history.HistoryWindowPredictor`.
    verify:
        Verify shard content fingerprints on first touch.
    """

    def __init__(
        self,
        n_machines: int,
        n_days: int,
        start_weekday: int = 0,
        *,
        store: Optional[ShardedTraceDataset] = None,
        shard_range: Optional[tuple] = None,
        hot_shards: Optional[int] = None,
        hot_bytes: Optional[int] = None,
        block_machines: Optional[int] = None,
        history_days: int = 8,
        statistic: str = "mean",
        laplace: float = 0.5,
        verify: bool = True,
    ) -> None:
        if n_machines <= 0:
            raise ServeError("ServeState needs n_machines > 0")
        if n_days < 0:
            raise ServeError("ServeState needs n_days >= 0")
        if history_days < 1:
            raise ServeError("history_days must be >= 1")
        if statistic not in ("mean", "median", "trimmed"):
            raise ServeError(f"unknown statistic {statistic!r}")
        if laplace < 0:
            raise ServeError("laplace must be >= 0")
        if hot_shards is not None and hot_shards < 1:
            raise ServeError("hot_shards must be >= 1")
        if hot_bytes is not None and hot_bytes <= 0:
            raise ServeError("hot_bytes must be positive")
        if shard_range is not None and store is None:
            raise ServeError("shard_range needs a backing store")
        self.n_machines = n_machines
        self.base_n_days = n_days
        self.start_weekday = start_weekday
        self.history_days = history_days
        self.statistic = statistic
        self.laplace = laplace
        self._store = store
        #: Resident base-tier counts for in-memory bootstraps
        #: (:meth:`from_columns`); ``None`` for store-backed states.
        self._base: Optional[np.ndarray] = None
        self._pager: Optional[BlockPager] = None
        if store is not None:
            if store.n_machines != n_machines:
                raise ServeError(
                    f"store holds {store.n_machines} machines, state "
                    f"declares {n_machines}"
                )
            lo, hi = shard_range if shard_range else (0, store.n_shards)
            self._pager = BlockPager(
                store,
                shard_lo=lo,
                shard_hi=hi,
                block_machines=block_machines,
                max_blocks=hot_shards,
                max_bytes=hot_bytes,
                verify=verify,
            )
            self.machine_lo = self._pager.machine_lo
            self.machine_hi = self._pager.machine_hi
        else:
            self.machine_lo = 0
            self.machine_hi = n_machines
        self._lock = threading.RLock()
        # Overlay tier: (machine, day) -> int64[24], plus a by-day index
        # for the fleet-vectorized path and per-machine tails for the
        # ingest ordering contract.
        self._overlay: dict[tuple[int, int], np.ndarray] = {}
        self._overlay_by_day: dict[int, dict[int, np.ndarray]] = {}
        self._last_event: dict[int, _ParsedEvent] = {}
        self._overlay_horizon = 0
        self._n_streamed = 0
        self._n_deduped = 0

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_store(
        cls, store: ShardedTraceDataset, **kwargs
    ) -> "ServeState":
        """State backed by an on-disk shard store (the cold tier)."""
        return cls(
            store.n_machines,
            store.n_days,
            store.start_weekday,
            store=store,
            **kwargs,
        )

    @classmethod
    def from_columns(cls, cols: EventColumns, **kwargs) -> "ServeState":
        """State bootstrapped from one in-memory event table (always hot)."""
        kwargs.pop("hot_shards", None)
        kwargs.pop("hot_bytes", None)
        kwargs.pop("block_machines", None)
        state = cls(cols.n_machines, cols.n_days, cols.start_weekday, **kwargs)
        state._base = counts_from_columns(cols)
        return state

    # -- introspection --------------------------------------------------------

    @property
    def owned_machines(self) -> int:
        """Machines this state answers for (the fleet, or a worker slice)."""
        return self.machine_hi - self.machine_lo

    @property
    def horizon_day(self) -> int:
        """First unobserved day: the query clamp the batch path takes at
        ``n_days``, extended here by streamed events."""
        return max(self.base_n_days, self._overlay_horizon)

    @property
    def ready(self) -> bool:
        """True once any observed history exists.

        A bootstrap frame with ``n_days > 0`` counts even when it holds
        zero events — an event-free day is real (good) history, exactly
        as the batch path treats it.  A pure streamed state
        (``n_days == 0``, no store) stays not-ready until its first
        event arrives.
        """
        return (
            self.base_n_days > 0
            or self._pager is not None
            or self._base is not None
            or self._n_streamed > 0
        )

    def tier_stats(self) -> TierStats:
        with self._lock:
            if self._pager is not None:
                p = self._pager.stats()
                hot, resident = p.resident_blocks, p.resident_bytes
                hits, rebuilds, evictions = p.hits, p.rebuilds, p.evictions
                n_blocks, block_machines = p.n_blocks, p.block_machines
            elif self._base is not None:
                hot, resident = 1, self._base.nbytes
                hits = rebuilds = evictions = 0
                n_blocks, block_machines = 1, None
            else:
                hot = resident = hits = rebuilds = evictions = 0
                n_blocks, block_machines = 0, None
            return TierStats(
                hot_entries=hot,
                resident_bytes=resident,
                hits=hits,
                rebuilds=rebuilds,
                evictions=evictions,
                streamed_events=self._n_streamed,
                deduplicated_events=self._n_deduped,
                overlay_cells=len(self._overlay),
                n_blocks=n_blocks,
                block_machines=block_machines,
            )

    def is_weekend_day(self, day: int) -> bool:
        return (day + self.start_weekday) % 7 >= 5

    # -- base tier ------------------------------------------------------------

    def _base_segments(
        self,
    ) -> Iterator[tuple[int, int, Optional[np.ndarray]]]:
        """Owned machine segments ``(lo, hi, counts)`` in machine order.

        ``counts`` is the segment's base-tier block (``None`` when the
        state has no base tier — overlay-only).  Store-backed states
        yield one segment per pageable block, paging each in turn so a
        fleet sweep respects the resident bounds.  Callers hold
        ``self._lock``.
        """
        if self._base is not None:
            yield self.machine_lo, self.machine_hi, self._base
        elif self._pager is not None:
            for block in self._pager.blocks:
                yield block.lo, block.hi, self._pager.counts(block.index)
        else:
            yield self.machine_lo, self.machine_hi, None

    def _base_cell(self, machine_id: int, day: int, hour: int) -> int:
        if self._base is not None:
            return int(self._base[machine_id, day, hour])
        if self._pager is not None:
            return self._pager.cell(machine_id, day, hour)
        return 0

    def _cell_count(self, machine_id: int, day: int, hour: int) -> int:
        """Base + overlay count of one (machine, day, hour) cell.

        Callers hold ``self._lock``.
        """
        total = 0
        if 0 <= day < self.base_n_days:
            total += self._base_cell(machine_id, day, hour)
        vec = self._overlay.get((machine_id, day))
        if vec is not None:
            total += int(vec[hour])
        return total

    # -- ingest ---------------------------------------------------------------

    def _parse_event(self, event: Union[dict, Sequence]) -> _ParsedEvent:
        if isinstance(event, dict):
            try:
                machine_id = event["machine_id"]
                start = event["start"]
                end = event["end"]
                state = event["state"]
            except KeyError as exc:
                raise ServeError(f"ingest event missing field {exc}") from exc
        else:
            try:
                machine_id, start, end, state = event[:4]
            except (TypeError, ValueError) as exc:
                raise ServeError(
                    "ingest event must be a dict or a "
                    "(machine_id, start, end, state) sequence"
                ) from exc
        try:
            machine_id = int(machine_id)
            start = float(start)
            end = float(end)
        except (TypeError, ValueError) as exc:
            raise ServeError(f"malformed ingest event: {exc}") from exc
        if isinstance(state, str):
            codes = {v: k for k, v in _STATE_NAMES.items()}
            if state not in codes:
                raise ServeError(f"invalid failure state {state!r}")
            state = codes[state]
        else:
            try:
                state = int(state)
            except (TypeError, ValueError) as exc:
                raise ServeError(f"malformed ingest event: {exc}") from exc
            if state not in _STATE_NAMES:
                raise ServeError(f"invalid failure-state code {state!r}")
        if not 0 <= machine_id < self.n_machines:
            raise ServeError(
                f"machine {machine_id} outside fleet [0, {self.n_machines})"
            )
        self._check_owned(machine_id)
        if not np.isfinite(start) or not np.isfinite(end) or start < 0:
            raise ServeError(
                f"ingest event needs finite start >= 0 and end (got "
                f"[{start}, {end}])"
            )
        if not end > start:
            raise ServeError(
                f"ingest event needs end > start (got [{start}, {end}])"
            )
        return _ParsedEvent(machine_id, start, end, state)

    def _validate_parsed(
        self,
        parsed: Sequence[_ParsedEvent],
        tail_of: Callable[[int], Optional[_ParsedEvent]],
    ) -> ValidatedBatch:
        """Decide a parsed batch's fate against the given tail view.

        ``tail_of`` maps a machine to its newest accepted event *before*
        this batch — the applied tails for synchronous ingest, or the
        queue's shadow tails for asynchronous ingest.  Raises
        :class:`IngestOrderError` (whole batch, atomically) on an
        ordering violation; duplicates of the newest event are dropped
        and counted.
        """
        tails: dict[int, _ParsedEvent] = {}
        accepted: list[_ParsedEvent] = []
        deduped = 0
        horizon = 0
        for ev in parsed:
            tail = tails.get(ev.machine_id)
            if tail is None:
                tail = tail_of(ev.machine_id)
            if tail is not None:
                if ev.start < tail.start:
                    raise IngestOrderError(
                        f"machine {ev.machine_id}: event start "
                        f"{ev.start} is older than the newest accepted "
                        f"event start {tail.start}; streamed starts "
                        "must be non-decreasing per machine (batch "
                        "rejected, nothing applied)"
                    )
                if ev.same_as(tail):
                    deduped += 1
                    continue
            tails[ev.machine_id] = ev
            accepted.append(ev)
            day = int(np.divmod(ev.start, DAY)[0])
            if day + 1 > horizon:
                horizon = day + 1
        return ValidatedBatch(
            accepted=tuple(accepted),
            deduplicated=deduped,
            tails=tails,
            horizon_day=horizon,
        )

    def validate_events(
        self,
        events: Iterable[Union[dict, Sequence]],
        tail_of: Optional[Callable[[int], Optional[_ParsedEvent]]] = None,
    ) -> ValidatedBatch:
        """Parse and contract-check a batch without applying it.

        With no ``tail_of`` the batch is judged against the currently
        applied tails (under the state lock) — the synchronous decision.
        The async ingest queue passes its shadow-tail view instead.
        """
        parsed = [self._parse_event(e) for e in events]
        if tail_of is not None:
            return self._validate_parsed(parsed, tail_of)
        with self._lock:
            return self._validate_parsed(parsed, self._last_event.get)

    def tail_of(self, machine_id: int) -> Optional[_ParsedEvent]:
        """The machine's newest *applied* event (thread-safe)."""
        with self._lock:
            return self._last_event.get(machine_id)

    def _apply_locked(self, batch: ValidatedBatch) -> None:
        for ev in batch.accepted:
            day_f, rem = np.divmod(ev.start, DAY)
            day = int(day_f)
            hour = int(rem // HOUR)
            key = (ev.machine_id, day)
            vec = self._overlay.get(key)
            if vec is None:
                vec = np.zeros(24, dtype=np.int64)
                self._overlay[key] = vec
                self._overlay_by_day.setdefault(day, {})[
                    ev.machine_id
                ] = vec
            vec[hour] += 1
            if day + 1 > self._overlay_horizon:
                self._overlay_horizon = day + 1
        self._last_event.update(batch.tails)
        self._n_streamed += len(batch.accepted)
        self._n_deduped += batch.deduplicated

    def apply_batch(self, batch: ValidatedBatch) -> IngestResult:
        """Apply a pre-validated batch atomically (counts + tails).

        The batch's fate was decided at validation time; application
        cannot fail and readers never observe it half-applied.
        """
        with self._lock:
            self._apply_locked(batch)
        return batch.result()

    def ingest(self, events: Iterable[Union[dict, Sequence]]) -> IngestResult:
        """Apply a batch of streamed events atomically (synchronous).

        The whole batch is validated — shape, ranges, and the per-machine
        ordering contract (module docstring) — before any count changes;
        a rejected batch leaves the state untouched and queries running
        concurrently never observe a partially applied batch.
        """
        parsed = [self._parse_event(e) for e in events]
        with self._lock:
            batch = self._validate_parsed(parsed, self._last_event.get)
            self._apply_locked(batch)
        return batch.result()

    def ingest_jsonl(self, lines: Iterable[str]) -> IngestResult:
        """Ingest a JSONL stream (one event object per non-blank line)."""
        return self.ingest(self.parse_jsonl(lines))

    @staticmethod
    def parse_jsonl(lines: Iterable[str]) -> list[dict]:
        """Decode a JSONL event stream into raw event dicts."""
        import json

        events = []
        for i, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                raise ServeError(
                    f"ingest line {i}: invalid JSON: {exc}"
                ) from exc
        return events

    # -- overlay snapshot/restore ---------------------------------------------

    def save_overlay_snapshot(self, path: Union[str, Path]) -> Path:
        """Persist the overlay tier atomically (write-temp-rename).

        The snapshot holds everything streamed since bootstrap: the
        overlay cells, the per-machine ingest tails (so the ordering
        contract survives a restart), and the counters.  The base tier
        is *not* saved — it rebuilds from the shard store, which is the
        durable copy of the bootstrap trace.
        """
        path = Path(path)
        with self._lock:
            keys = sorted(self._overlay)
            cells = len(keys)
            cell_machine = np.fromiter(
                (k[0] for k in keys), dtype=np.int64, count=cells
            )
            cell_day = np.fromiter(
                (k[1] for k in keys), dtype=np.int64, count=cells
            )
            cell_counts = (
                np.stack([self._overlay[k] for k in keys])
                if keys
                else np.zeros((0, 24), dtype=np.int64)
            )
            tail_keys = sorted(self._last_event)
            tails = [self._last_event[m] for m in tail_keys]
            payload = dict(
                meta=np.array(
                    [
                        SNAPSHOT_VERSION,
                        self.n_machines,
                        self.base_n_days,
                        self.start_weekday,
                        self.machine_lo,
                        self.machine_hi,
                        self._overlay_horizon,
                        self._n_streamed,
                        self._n_deduped,
                    ],
                    dtype=np.int64,
                ),
                cell_machine=cell_machine,
                cell_day=cell_day,
                cell_counts=cell_counts,
                tail_machine=np.array(tail_keys, dtype=np.int64),
                tail_start=np.array([t.start for t in tails], dtype=np.float64),
                tail_end=np.array([t.end for t in tails], dtype=np.float64),
                tail_state=np.array([t.state for t in tails], dtype=np.int64),
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **payload)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return path

    def restore_overlay_snapshot(self, path: Union[str, Path]) -> int:
        """Restore a snapshot written by :meth:`save_overlay_snapshot`.

        Replaces the overlay tier wholesale (meant for boot, before any
        streaming).  The snapshot's fleet frame must match this state's;
        a frame mismatch raises :class:`ServeError` rather than serving
        counts for the wrong fleet.  Returns the streamed-event count
        restored.
        """
        path = Path(path)
        try:
            with np.load(path) as data:
                arrays = {name: data[name] for name in data.files}
        except (OSError, ValueError, KeyError) as exc:
            raise ServeError(
                f"cannot read overlay snapshot {path}: {exc}"
            ) from exc
        try:
            meta = arrays["meta"]
            (
                version,
                n_machines,
                base_n_days,
                start_weekday,
                machine_lo,
                machine_hi,
                horizon,
                n_streamed,
                n_deduped,
            ) = (int(x) for x in meta)
        except (KeyError, ValueError) as exc:
            raise ServeError(
                f"malformed overlay snapshot {path}: {exc}"
            ) from exc
        if version != SNAPSHOT_VERSION:
            raise ServeError(
                f"overlay snapshot {path} has version {version}, "
                f"this build reads {SNAPSHOT_VERSION}"
            )
        frame = (n_machines, base_n_days, start_weekday, machine_lo, machine_hi)
        mine = (
            self.n_machines,
            self.base_n_days,
            self.start_weekday,
            self.machine_lo,
            self.machine_hi,
        )
        if frame != mine:
            raise ServeError(
                f"overlay snapshot {path} frame {frame} does not match "
                f"this state's {mine}; refusing to restore"
            )
        overlay: dict[tuple[int, int], np.ndarray] = {}
        by_day: dict[int, dict[int, np.ndarray]] = {}
        for machine, day, counts in zip(
            arrays["cell_machine"], arrays["cell_day"], arrays["cell_counts"]
        ):
            vec = np.asarray(counts, dtype=np.int64).copy()
            overlay[(int(machine), int(day))] = vec
            by_day.setdefault(int(day), {})[int(machine)] = vec
        tails = {
            int(m): _ParsedEvent(int(m), float(s), float(e), int(st))
            for m, s, e, st in zip(
                arrays["tail_machine"],
                arrays["tail_start"],
                arrays["tail_end"],
                arrays["tail_state"],
            )
        }
        with self._lock:
            self._overlay = overlay
            self._overlay_by_day = by_day
            self._last_event = tails
            self._overlay_horizon = horizon
            self._n_streamed = n_streamed
            self._n_deduped = n_deduped
        return n_streamed

    # -- queries --------------------------------------------------------------

    def _history_day_list(self, day: int) -> list[int]:
        """Same-type days before ``day``, newest first, batch-identical:
        ``CountMatrix.same_type_days_before(min(day, horizon), limit)``."""
        anchor = min(day, self.horizon_day)
        target = self.is_weekend_day(anchor)
        days = []
        d = anchor - 1
        while d >= 0 and len(days) < self.history_days:
            if self.is_weekend_day(d) == target:
                days.append(d)
            d -= 1
        return days

    def window_count(
        self, machine_id: int, day: int, start_hour: float, duration_hours: float
    ) -> float:
        """Observed (fractional-overlap) event count of one concrete window.

        The raw quantity history queries average over — exposed for
        consistency probes and monitoring, not a forecast.
        """
        self._check_machine(machine_id)
        query = PredictionQuery(
            machine_id=machine_id,
            day=day,
            start_hour=start_hour,
            duration_hours=duration_hours,
        )
        cells = query.hour_cells()
        with self._lock:
            total = 0.0
            for cell_day, hour, overlap in cells:
                if 0 <= cell_day < self.horizon_day:
                    total += overlap * self._cell_count(
                        machine_id, cell_day, hour
                    )
            return total

    def _check_owned(self, machine_id: int) -> None:
        if not self.machine_lo <= machine_id < self.machine_hi:
            raise WorkerRangeError(
                f"machine {machine_id} not owned by this worker (owns "
                f"[{self.machine_lo}, {self.machine_hi}) of "
                f"{self.n_machines} machines)"
            )

    def _check_machine(self, machine_id: int) -> None:
        if not 0 <= machine_id < self.n_machines:
            raise ServeError(
                f"unknown machine {machine_id} (fleet is "
                f"[0, {self.n_machines}))"
            )
        self._check_owned(machine_id)

    def _check_ready(self) -> None:
        if not self.ready:
            raise NoHistoryError(
                "no data ingested yet: attach a trace or stream events "
                "before querying"
            )

    def history_counts(self, query: PredictionQuery) -> np.ndarray:
        """The per-history-day window counts the predictor reduces over.

        Value-identical to
        ``HistoryWindowPredictor._history_counts`` on the same data:
        same day list, same cell bounds, same ``total += overlap *
        count`` accumulation order.
        """
        self._check_machine(query.machine_id)
        self._check_ready()
        days = self._history_day_list(query.day)
        if not days:
            raise NoHistoryError(
                f"no same-type history before day {query.day}; "
                "ingest a longer trace first"
            )
        cells = query.hour_cells()
        horizon = self.horizon_day
        with self._lock:
            counts = []
            for d in days:
                shift = d - query.day
                total = 0.0
                for cell_day, hour, overlap in cells:
                    day = cell_day + shift
                    if 0 <= day < horizon:
                        total += overlap * self._cell_count(
                            query.machine_id, day, hour
                        )
                counts.append(total)
        return np.asarray(counts, dtype=float)

    def _reduce(self, counts: np.ndarray) -> float:
        """``HistoryWindowPredictor._reduce``, verbatim."""
        if self.statistic == "median":
            return float(np.median(counts))
        if self.statistic == "trimmed":
            k = int(0.2 * counts.size)
            trimmed = np.sort(counts)[k : counts.size - k or None]
            return float(trimmed.mean())
        return float(counts.mean())

    def predict_count(self, query: PredictionQuery) -> float:
        """Expected unavailability occurrences in the window."""
        return self._reduce(self.history_counts(query))

    def predict_survival(self, query: PredictionQuery) -> float:
        """P(no unavailability starts in the window) — the serving
        layer's headline answer, batch-identical."""
        counts = self.history_counts(query)
        clean = float(np.count_nonzero(counts < 0.5))
        n = counts.size
        return (clean + self.laplace) / (n + 2 * self.laplace)

    # -- fleet-vectorized queries ---------------------------------------------

    def _history_matrix(
        self, day: int, start_hour: float, duration_hours: float
    ) -> np.ndarray:
        """``(owned_machines, n_history_days)`` window counts.

        Row ``m - machine_lo`` equals :meth:`history_counts` for machine
        ``m`` exactly: the per-cell accumulation happens in the same
        cell order, and each cell's base and overlay counts are summed
        as integers before the single float multiply, so the float
        result is bit-identical to the scalar path — per machine, for
        any block size, through any eviction or routing split.
        """
        self._check_ready()
        days = self._history_day_list(day)
        if not days:
            raise NoHistoryError(
                f"no same-type history before day {day}; "
                "ingest a longer trace first"
            )
        query = PredictionQuery(
            machine_id=0,
            day=day,
            start_hour=start_hour,
            duration_hours=duration_hours,
        )
        cells = query.hour_cells()
        horizon = self.horizon_day
        out = np.zeros((self.owned_machines, len(days)), dtype=float)
        with self._lock:
            for lo, hi, counts in self._base_segments():
                sub = out[lo - self.machine_lo : hi - self.machine_lo]
                for i, d in enumerate(days):
                    shift = d - day
                    for cell_day, hour, overlap in cells:
                        cd = cell_day + shift
                        if not 0 <= cd < horizon:
                            continue
                        if counts is not None and cd < self.base_n_days:
                            cell = counts[:, cd, hour].copy()
                        else:
                            cell = np.zeros(hi - lo, dtype=np.int64)
                        touched = self._overlay_by_day.get(cd)
                        if touched:
                            for mid, vec in touched.items():
                                if lo <= mid < hi:
                                    cell[mid - lo] += vec[hour]
                        sub[:, i] += overlap * cell
        return out

    def survival_fleet(
        self, day: int, start_hour: float, duration_hours: float
    ) -> np.ndarray:
        """Per-owned-machine survival probabilities for one window shape.

        Index ``m - machine_lo`` holds machine ``m``'s answer.
        """
        matrix = self._history_matrix(day, start_hour, duration_hours)
        n = matrix.shape[1]
        clean = np.count_nonzero(matrix < 0.5, axis=1).astype(float)
        return (clean + self.laplace) / (n + 2 * self.laplace)

    def capacity(
        self,
        day: int,
        start_hour: float,
        duration_hours: float,
        *,
        threshold: float = 0.5,
    ) -> dict:
        """How many owned machines forecast free for the whole window.

        A machine counts when its survival probability is >= ``threshold``.
        For a worker slice the answer covers only the owned range
        (``owned``/``machine_lo``/``machine_hi``); the router merges
        partials — integer ``available`` sums are exact, and
        ``survival_sum`` lets it recompute the fleet mean.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ServeError("threshold must be in [0, 1]")
        survival = self.survival_fleet(day, start_hour, duration_hours)
        available = int(np.count_nonzero(survival >= threshold))
        return {
            "available": available,
            "n_machines": self.n_machines,
            "owned": self.owned_machines,
            "machine_lo": self.machine_lo,
            "machine_hi": self.machine_hi,
            "fraction": available / self.owned_machines,
            "threshold": threshold,
            "mean_survival": float(survival.mean()),
            "survival_sum": float(survival.sum()),
        }

    def rank(
        self, day: int, start_hour: float, duration_hours: float, *, k: int = 10
    ) -> list[tuple[int, float]]:
        """Top-``k`` owned machines by survival, ties broken by machine id.

        Machine ids are global, so worker partials merge by a plain
        ``(-survival, machine)`` sort at the router.
        """
        if k < 1:
            raise ServeError("k must be >= 1")
        survival = self.survival_fleet(day, start_hour, duration_hours)
        # Stable sort on -survival: equal survivals keep ascending id order.
        order = np.argsort(-survival, kind="stable")[:k]
        return [
            (int(m) + self.machine_lo, float(survival[m])) for m in order
        ]
