"""Live per-machine predictor state for the serving daemon.

The batch prediction path (:mod:`repro.prediction`) fits a
:class:`~repro.prediction.base.CountMatrix` over a frozen trace and
answers :class:`~repro.prediction.base.PredictionQuery` windows.  A
deployed forecast service cannot refit per request: it needs the same
per-(machine, day, hour) unavailability-start counts held as *live*
state — cheap to read thousands of times a second, updatable in place as
new events stream in, and small enough (or pageable enough) that a
million-machine fleet fits under a fixed RSS ceiling.

:class:`ServeState` is that state, split into two tiers:

* **base tier** — per-shard ``(machines, n_days, 24)`` ``int64`` count
  blocks rebuilt on demand from an on-disk shard store
  (:meth:`~repro.traces.shards.ShardedTraceDataset.shard_columns`, so
  binary shards rebuild from a zero-copy memmap without materializing
  events) and held in an LRU bounded by ``hot_shards`` entries and/or
  ``hot_bytes`` resident bytes.  Cold shards cost one rebuild on next
  touch; the fleet's total state never has to be resident at once.
* **overlay tier** — a sparse ``(machine, day) -> 24-vector`` of counts
  from *streamed* events (``POST /v1/ingest`` or stdin JSONL).  The
  overlay is always resident (it only holds what was streamed) and is
  never evicted, so eviction can never lose live data: a machine's
  effective counts are always ``base + overlay``.

Exactness contract
------------------
For a state built from a trace with no streamed events, every answer is
*value-identical* to the batch path on the same trace:
:func:`counts_from_columns` reproduces ``CountMatrix.counts`` exactly
(same ``divmod`` binning, vectorized), and the query methods replicate
:class:`~repro.prediction.history.HistoryWindowPredictor`'s arithmetic
operation for operation — per-cell ``total += overlap * count``
accumulation in cell order, ``np.mean`` over the same-shaped history
vector, the same Laplace-smoothed survival quotient.  The fleet-wide
vectorized path (:meth:`ServeState.survival_fleet`) keeps the identical
per-cell accumulation order across machines, so capacity and ranking
answers agree with the scalar path bit for bit.  The differential suite
(``tests/test_serve_api.py``) pins this.

Ingest contract
---------------
Streamed delivery is not trusted to be clean.  At the ingest boundary,
per machine:

* event start times must be **non-decreasing** — an event starting
  before the machine's newest accepted event raises
  :class:`~repro.errors.IngestOrderError` and rejects the whole batch
  atomically (no partial application, so readers never observe a torn
  batch);
* an event **identical** to the machine's newest accepted event
  (same start, end, and state) is a duplicate delivery: it is dropped
  deterministically and counted, never double-ingested;
* events sharing a start time with different payloads are distinct
  events (simultaneous detections) and all accepted.

The batch path freezes its day horizon at the trace span; the live path
extends it as events arrive (``horizon_day``), so "now" queries keep
working past the end of the bootstrap trace.
"""

from __future__ import annotations

import bisect
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..errors import IngestOrderError, NoHistoryError, ServeError
from ..prediction.base import PredictionQuery
from ..traces.records import CODE_TO_STATE, EventColumns
from ..traces.shards import ShardedTraceDataset
from ..units import DAY, HOUR

__all__ = [
    "IngestResult",
    "ServeState",
    "TierStats",
    "counts_from_columns",
]

#: Failure-state names accepted on the ingest boundary, by on-disk code.
_STATE_NAMES = {code: state.value for code, state in CODE_TO_STATE.items()}


def counts_from_columns(cols: EventColumns) -> np.ndarray:
    """The ``(n_machines, n_days, 24)`` unavailability-start count matrix.

    Vectorized but binning-identical to
    :class:`repro.prediction.base.CountMatrix`: ``day, rem =
    divmod(start, DAY)``; ``hour = rem // HOUR``; events past the last
    whole day are dropped.  ``np.divmod`` / ``np.floor_divide`` run the
    same fmod-and-correct algorithm as CPython's float ``divmod``, so
    the two paths bin every float start identically (property-tested).
    """
    n_days = cols.n_days
    counts = np.zeros((cols.n_machines, n_days, 24), dtype=np.int64)
    if len(cols) == 0 or n_days == 0:
        return counts
    start = cols.events["start"]
    day, rem = np.divmod(start, DAY)
    hour = np.floor_divide(rem, HOUR).astype(np.int64)
    day = day.astype(np.int64)
    keep = day < n_days
    flat = (
        cols.events["machine_id"].astype(np.int64)[keep] * (n_days * 24)
        + day[keep] * 24
        + hour[keep]
    )
    counts += np.bincount(
        flat, minlength=cols.n_machines * n_days * 24
    ).reshape(counts.shape)
    return counts


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one atomically applied ingest batch."""

    accepted: int
    deduplicated: int


@dataclass(frozen=True)
class TierStats:
    """A snapshot of the hot/cold tier and ingest accounting."""

    hot_entries: int
    resident_bytes: int
    hits: int
    rebuilds: int
    evictions: int
    streamed_events: int
    deduplicated_events: int
    overlay_cells: int


class _ParsedEvent:
    """One validated ingest event (internal)."""

    __slots__ = ("machine_id", "start", "end", "state")

    def __init__(self, machine_id: int, start: float, end: float, state: int):
        self.machine_id = machine_id
        self.start = start
        self.end = end
        self.state = state

    def same_as(self, other: "_ParsedEvent") -> bool:
        return (
            self.start == other.start
            and self.end == other.end
            and self.state == other.state
        )


class ServeState:
    """The daemon's live, query-ready fleet state (thread-safe).

    Parameters
    ----------
    n_machines, n_days, start_weekday:
        The fleet frame.  ``n_days`` is the bootstrap trace's whole-day
        horizon; streamed events may extend it (see ``horizon_day``).
    store:
        Optional shard store backing the base tier.  Without one the
        state is overlay-only (pure streamed mode).
    hot_shards:
        Maximum base-tier blocks resident at once (``None`` = unbounded).
    hot_bytes:
        Maximum base-tier resident bytes (``None`` = unbounded).  Both
        bounds may be active; eviction runs until both hold.
    history_days, statistic, laplace:
        Predictor knobs, matching
        :class:`~repro.prediction.history.HistoryWindowPredictor`.
    """

    def __init__(
        self,
        n_machines: int,
        n_days: int,
        start_weekday: int = 0,
        *,
        store: Optional[ShardedTraceDataset] = None,
        hot_shards: Optional[int] = None,
        hot_bytes: Optional[int] = None,
        history_days: int = 8,
        statistic: str = "mean",
        laplace: float = 0.5,
    ) -> None:
        if n_machines <= 0:
            raise ServeError("ServeState needs n_machines > 0")
        if n_days < 0:
            raise ServeError("ServeState needs n_days >= 0")
        if history_days < 1:
            raise ServeError("history_days must be >= 1")
        if statistic not in ("mean", "median", "trimmed"):
            raise ServeError(f"unknown statistic {statistic!r}")
        if laplace < 0:
            raise ServeError("laplace must be >= 0")
        if hot_shards is not None and hot_shards < 1:
            raise ServeError("hot_shards must be >= 1")
        if hot_bytes is not None and hot_bytes <= 0:
            raise ServeError("hot_bytes must be positive")
        self.n_machines = n_machines
        self.base_n_days = n_days
        self.start_weekday = start_weekday
        self.history_days = history_days
        self.statistic = statistic
        self.laplace = laplace
        self._store = store
        self._hot_shards = hot_shards
        self._hot_bytes = hot_bytes
        # Shard machine ranges; overlay-only states get one virtual
        # zero-count "shard" spanning the fleet so the fleet-vectorized
        # path has a single uniform shape.
        if store is not None:
            self._ranges = [
                (s.machine_lo, s.machine_hi) for s in store.manifest.shards
            ]
            if store.n_machines != n_machines:
                raise ServeError(
                    f"store holds {store.n_machines} machines, state "
                    f"declares {n_machines}"
                )
        else:
            self._ranges = [(0, n_machines)]
        self._shard_los = [lo for lo, _ in self._ranges]
        self._lock = threading.RLock()
        self._hot: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._resident_bytes = 0
        self._hits = 0
        self._rebuilds = 0
        self._evictions = 0
        # Overlay tier: (machine, day) -> int64[24], plus a by-day index
        # for the fleet-vectorized path and per-machine tails for the
        # ingest ordering contract.
        self._overlay: dict[tuple[int, int], np.ndarray] = {}
        self._overlay_by_day: dict[int, dict[int, np.ndarray]] = {}
        self._last_event: dict[int, _ParsedEvent] = {}
        self._overlay_horizon = 0
        self._n_streamed = 0
        self._n_deduped = 0

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_store(
        cls, store: ShardedTraceDataset, **kwargs
    ) -> "ServeState":
        """State backed by an on-disk shard store (the cold tier)."""
        return cls(
            store.n_machines,
            store.n_days,
            store.start_weekday,
            store=store,
            **kwargs,
        )

    @classmethod
    def from_columns(cls, cols: EventColumns, **kwargs) -> "ServeState":
        """State bootstrapped from one in-memory event table (always hot)."""
        state = cls(cols.n_machines, cols.n_days, cols.start_weekday, **kwargs)
        state._hot[0] = counts_from_columns(cols)
        state._resident_bytes = state._hot[0].nbytes
        return state

    # -- introspection --------------------------------------------------------

    @property
    def horizon_day(self) -> int:
        """First unobserved day: the query clamp the batch path takes at
        ``n_days``, extended here by streamed events."""
        return max(self.base_n_days, self._overlay_horizon)

    @property
    def ready(self) -> bool:
        """True once any observed history exists.

        A bootstrap frame with ``n_days > 0`` counts even when it holds
        zero events — an event-free day is real (good) history, exactly
        as the batch path treats it.  A pure streamed state
        (``n_days == 0``, no store) stays not-ready until its first
        event arrives.
        """
        return (
            self.base_n_days > 0
            or self._store is not None
            or bool(self._hot)
            or self._n_streamed > 0
        )

    def tier_stats(self) -> TierStats:
        with self._lock:
            return TierStats(
                hot_entries=len(self._hot),
                resident_bytes=self._resident_bytes,
                hits=self._hits,
                rebuilds=self._rebuilds,
                evictions=self._evictions,
                streamed_events=self._n_streamed,
                deduplicated_events=self._n_deduped,
                overlay_cells=len(self._overlay),
            )

    def is_weekend_day(self, day: int) -> bool:
        return (day + self.start_weekday) % 7 >= 5

    # -- base tier ------------------------------------------------------------

    def _shard_of(self, machine_id: int) -> int:
        return bisect.bisect_right(self._shard_los, machine_id) - 1

    def _block(self, index: int) -> np.ndarray:
        """The shard's count block, rebuilding and evicting as needed.

        Callers hold ``self._lock``.
        """
        block = self._hot.get(index)
        if block is not None:
            self._hot.move_to_end(index)
            self._hits += 1
            return block
        if self._store is None:
            # Overlay-only state: the virtual shard is all zeros.
            lo, hi = self._ranges[index]
            block = np.zeros((hi - lo, self.base_n_days, 24), dtype=np.int64)
        else:
            block = counts_from_columns(self._store.shard_columns(index))
        self._rebuilds += 1
        self._hot[index] = block
        self._resident_bytes += block.nbytes
        self._evict()
        return block

    def _evict(self) -> None:
        def over() -> bool:
            if self._hot_shards is not None and len(self._hot) > self._hot_shards:
                return True
            return (
                self._hot_bytes is not None
                and self._resident_bytes > self._hot_bytes
            )

        while len(self._hot) > 1 and over():
            _, evicted = self._hot.popitem(last=False)
            self._resident_bytes -= evicted.nbytes
            self._evictions += 1

    # -- ingest ---------------------------------------------------------------

    def _parse_event(self, event: Union[dict, Sequence]) -> _ParsedEvent:
        if isinstance(event, dict):
            try:
                machine_id = event["machine_id"]
                start = event["start"]
                end = event["end"]
                state = event["state"]
            except KeyError as exc:
                raise ServeError(f"ingest event missing field {exc}") from exc
        else:
            try:
                machine_id, start, end, state = event[:4]
            except (TypeError, ValueError) as exc:
                raise ServeError(
                    "ingest event must be a dict or a "
                    "(machine_id, start, end, state) sequence"
                ) from exc
        try:
            machine_id = int(machine_id)
            start = float(start)
            end = float(end)
        except (TypeError, ValueError) as exc:
            raise ServeError(f"malformed ingest event: {exc}") from exc
        if isinstance(state, str):
            codes = {v: k for k, v in _STATE_NAMES.items()}
            if state not in codes:
                raise ServeError(f"invalid failure state {state!r}")
            state = codes[state]
        else:
            try:
                state = int(state)
            except (TypeError, ValueError) as exc:
                raise ServeError(f"malformed ingest event: {exc}") from exc
            if state not in _STATE_NAMES:
                raise ServeError(f"invalid failure-state code {state!r}")
        if not 0 <= machine_id < self.n_machines:
            raise ServeError(
                f"machine {machine_id} outside fleet [0, {self.n_machines})"
            )
        if not np.isfinite(start) or not np.isfinite(end) or start < 0:
            raise ServeError(
                f"ingest event needs finite start >= 0 and end (got "
                f"[{start}, {end}])"
            )
        if not end > start:
            raise ServeError(
                f"ingest event needs end > start (got [{start}, {end}])"
            )
        return _ParsedEvent(machine_id, start, end, state)

    def ingest(self, events: Iterable[Union[dict, Sequence]]) -> IngestResult:
        """Apply a batch of streamed events atomically.

        The whole batch is validated — shape, ranges, and the per-machine
        ordering contract (module docstring) — before any count changes;
        a rejected batch leaves the state untouched and queries running
        concurrently never observe a partially applied batch.
        """
        parsed = [self._parse_event(e) for e in events]
        with self._lock:
            tails = dict(self._last_event)
            accepted: list[_ParsedEvent] = []
            deduped = 0
            for ev in parsed:
                tail = tails.get(ev.machine_id)
                if tail is not None:
                    if ev.start < tail.start:
                        raise IngestOrderError(
                            f"machine {ev.machine_id}: event start "
                            f"{ev.start} is older than the newest accepted "
                            f"event start {tail.start}; streamed starts "
                            "must be non-decreasing per machine (batch "
                            "rejected, nothing applied)"
                        )
                    if ev.same_as(tail):
                        deduped += 1
                        continue
                tails[ev.machine_id] = ev
                accepted.append(ev)
            for ev in accepted:
                day_f, rem = np.divmod(ev.start, DAY)
                day = int(day_f)
                hour = int(rem // HOUR)
                key = (ev.machine_id, day)
                vec = self._overlay.get(key)
                if vec is None:
                    vec = np.zeros(24, dtype=np.int64)
                    self._overlay[key] = vec
                    self._overlay_by_day.setdefault(day, {})[
                        ev.machine_id
                    ] = vec
                vec[hour] += 1
                if day + 1 > self._overlay_horizon:
                    self._overlay_horizon = day + 1
            self._last_event.update(tails)
            self._n_streamed += len(accepted)
            self._n_deduped += deduped
        return IngestResult(accepted=len(accepted), deduplicated=deduped)

    def ingest_jsonl(self, lines: Iterable[str]) -> IngestResult:
        """Ingest a JSONL stream (one event object per non-blank line)."""
        import json

        events = []
        for i, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                raise ServeError(f"ingest line {i}: invalid JSON: {exc}") from exc
        return self.ingest(events)

    # -- queries --------------------------------------------------------------

    def _history_day_list(self, day: int) -> list[int]:
        """Same-type days before ``day``, newest first, batch-identical:
        ``CountMatrix.same_type_days_before(min(day, horizon), limit)``."""
        anchor = min(day, self.horizon_day)
        target = self.is_weekend_day(anchor)
        days = []
        d = anchor - 1
        while d >= 0 and len(days) < self.history_days:
            if self.is_weekend_day(d) == target:
                days.append(d)
            d -= 1
        return days

    def _cell_count(self, machine_id: int, day: int, hour: int) -> int:
        """Base + overlay count of one (machine, day, hour) cell.

        Callers hold ``self._lock``.
        """
        total = 0
        if 0 <= day < self.base_n_days:
            index = self._shard_of(machine_id)
            lo = self._ranges[index][0]
            total += int(self._block(index)[machine_id - lo, day, hour])
        vec = self._overlay.get((machine_id, day))
        if vec is not None:
            total += int(vec[hour])
        return total

    def window_count(
        self, machine_id: int, day: int, start_hour: float, duration_hours: float
    ) -> float:
        """Observed (fractional-overlap) event count of one concrete window.

        The raw quantity history queries average over — exposed for
        consistency probes and monitoring, not a forecast.
        """
        self._check_machine(machine_id)
        query = PredictionQuery(
            machine_id=machine_id,
            day=day,
            start_hour=start_hour,
            duration_hours=duration_hours,
        )
        cells = query.hour_cells()
        with self._lock:
            total = 0.0
            for cell_day, hour, overlap in cells:
                if 0 <= cell_day < self.horizon_day:
                    total += overlap * self._cell_count(
                        machine_id, cell_day, hour
                    )
            return total

    def _check_machine(self, machine_id: int) -> None:
        if not 0 <= machine_id < self.n_machines:
            raise ServeError(
                f"unknown machine {machine_id} (fleet is "
                f"[0, {self.n_machines}))"
            )

    def _check_ready(self) -> None:
        if not self.ready:
            raise NoHistoryError(
                "no data ingested yet: attach a trace or stream events "
                "before querying"
            )

    def history_counts(self, query: PredictionQuery) -> np.ndarray:
        """The per-history-day window counts the predictor reduces over.

        Value-identical to
        ``HistoryWindowPredictor._history_counts`` on the same data:
        same day list, same cell bounds, same ``total += overlap *
        count`` accumulation order.
        """
        self._check_machine(query.machine_id)
        self._check_ready()
        days = self._history_day_list(query.day)
        if not days:
            raise NoHistoryError(
                f"no same-type history before day {query.day}; "
                "ingest a longer trace first"
            )
        cells = query.hour_cells()
        horizon = self.horizon_day
        with self._lock:
            counts = []
            for d in days:
                shift = d - query.day
                total = 0.0
                for cell_day, hour, overlap in cells:
                    day = cell_day + shift
                    if 0 <= day < horizon:
                        total += overlap * self._cell_count(
                            query.machine_id, day, hour
                        )
                counts.append(total)
        return np.asarray(counts, dtype=float)

    def _reduce(self, counts: np.ndarray) -> float:
        """``HistoryWindowPredictor._reduce``, verbatim."""
        if self.statistic == "median":
            return float(np.median(counts))
        if self.statistic == "trimmed":
            k = int(0.2 * counts.size)
            trimmed = np.sort(counts)[k : counts.size - k or None]
            return float(trimmed.mean())
        return float(counts.mean())

    def predict_count(self, query: PredictionQuery) -> float:
        """Expected unavailability occurrences in the window."""
        return self._reduce(self.history_counts(query))

    def predict_survival(self, query: PredictionQuery) -> float:
        """P(no unavailability starts in the window) — the serving
        layer's headline answer, batch-identical."""
        counts = self.history_counts(query)
        clean = float(np.count_nonzero(counts < 0.5))
        n = counts.size
        return (clean + self.laplace) / (n + 2 * self.laplace)

    # -- fleet-vectorized queries ---------------------------------------------

    def _history_matrix(
        self, day: int, start_hour: float, duration_hours: float
    ) -> np.ndarray:
        """``(n_machines, n_history_days)`` window counts for the fleet.

        Row ``m`` equals :meth:`history_counts` for machine ``m`` exactly:
        the per-cell accumulation happens in the same cell order, and each
        cell's base and overlay counts are summed as integers before the
        single float multiply, so the float result is bit-identical to
        the scalar path.
        """
        self._check_ready()
        days = self._history_day_list(day)
        if not days:
            raise NoHistoryError(
                f"no same-type history before day {day}; "
                "ingest a longer trace first"
            )
        query = PredictionQuery(
            machine_id=0,
            day=day,
            start_hour=start_hour,
            duration_hours=duration_hours,
        )
        cells = query.hour_cells()
        horizon = self.horizon_day
        out = np.zeros((self.n_machines, len(days)), dtype=float)
        with self._lock:
            for index, (lo, hi) in enumerate(self._ranges):
                block = self._block(index)
                sub = out[lo:hi]
                for i, d in enumerate(days):
                    shift = d - day
                    for cell_day, hour, overlap in cells:
                        cd = cell_day + shift
                        if not 0 <= cd < horizon:
                            continue
                        if cd < self.base_n_days:
                            cell = block[:, cd, hour].copy()
                        else:
                            cell = np.zeros(hi - lo, dtype=np.int64)
                        touched = self._overlay_by_day.get(cd)
                        if touched:
                            for mid, vec in touched.items():
                                if lo <= mid < hi:
                                    cell[mid - lo] += vec[hour]
                        sub[:, i] += overlap * cell
        return out

    def survival_fleet(
        self, day: int, start_hour: float, duration_hours: float
    ) -> np.ndarray:
        """Per-machine survival probabilities for one window shape."""
        matrix = self._history_matrix(day, start_hour, duration_hours)
        n = matrix.shape[1]
        clean = np.count_nonzero(matrix < 0.5, axis=1).astype(float)
        return (clean + self.laplace) / (n + 2 * self.laplace)

    def capacity(
        self,
        day: int,
        start_hour: float,
        duration_hours: float,
        *,
        threshold: float = 0.5,
    ) -> dict:
        """How many machines forecast free for the whole window.

        A machine counts when its survival probability is >= ``threshold``.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ServeError("threshold must be in [0, 1]")
        survival = self.survival_fleet(day, start_hour, duration_hours)
        available = int(np.count_nonzero(survival >= threshold))
        return {
            "available": available,
            "n_machines": self.n_machines,
            "fraction": available / self.n_machines,
            "threshold": threshold,
            "mean_survival": float(survival.mean()),
        }

    def rank(
        self, day: int, start_hour: float, duration_hours: float, *, k: int = 10
    ) -> list[tuple[int, float]]:
        """Top-``k`` machines by survival, ties broken by machine id."""
        if k < 1:
            raise ServeError("k must be >= 1")
        survival = self.survival_fleet(day, start_hour, duration_hours)
        # Stable sort on -survival: equal survivals keep ascending id order.
        order = np.argsort(-survival, kind="stable")[:k]
        return [(int(m), float(survival[m])) for m in order]
