"""Batched asynchronous ingest with bounded-queue backpressure.

PR 8's ingest applied every batch synchronously inside the HTTP handler:
correct, but each POST paid the full apply cost on the request path, and
a burst of writers could stall readers on the state lock.  This module
moves application off the request path without giving up one bit of the
ingest contract:

* **The batch's fate is still decided synchronously.**  At the enqueue
  boundary the batch is parsed and validated against the *effective*
  tails — the applied per-machine tails overlaid with the tails of every
  batch already queued — so ordering violations still 409 and duplicates
  are still counted in the response, exactly as the synchronous path
  answered.  What moves off the request path is only the count
  application, whose outcome validation has already fixed.
* **Bounded queue, explicit backpressure.**  The queue holds at most
  ``max_pending_events`` accepted-but-unapplied events.  A batch that
  would overflow it is rejected with
  :class:`~repro.errors.IngestBackpressureError` (HTTP 429 +
  ``Retry-After``) and leaves no trace — nothing dropped, nothing
  reordered; the client retries the identical batch later.  One
  oversized batch is admitted only into an *empty* queue, so a batch
  larger than the bound is ingestible rather than permanently bounced.
* **FIFO writer.**  A single daemon writer thread drains batches in
  enqueue order and applies each atomically
  (:meth:`~repro.serve.state.ServeState.apply_batch`), so the applied
  event order per machine equals the enqueue order — the same order the
  synchronous path would have produced.
* **Snapshot cadence.**  With ``snapshot_every=N`` the writer invokes
  the snapshot hook after every N applied batches (and :meth:`close`
  always flushes first), bounding how many applied batches a crash can
  lose beyond the last snapshot.

:meth:`flush` blocks until everything enqueued so far is applied — the
determinism point the differential tests (and ``POST /v1/flush``) use to
compare against batch replay.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

from ..errors import IngestBackpressureError, ServeError
from .state import IngestResult, ServeState, ValidatedBatch

__all__ = ["AsyncIngester", "IngestQueueStats"]


@dataclass(frozen=True)
class IngestQueueStats:
    """A snapshot of the ingest queue's accounting."""

    #: Accepted-but-unapplied events currently queued.
    depth_events: int
    #: Batches currently queued.
    depth_batches: int
    #: The queue bound (events).
    capacity_events: int
    #: Batches accepted onto the queue since start.
    enqueued_batches: int
    #: Batches the writer has applied.
    applied_batches: int
    #: Batches bounced with 429 (nothing enqueued).
    backpressure_rejections: int
    #: Snapshots the writer has taken.
    snapshots: int
    #: Snapshot attempts that raised (last error kept for /v1/stats).
    snapshot_failures: int


class AsyncIngester:
    """A bounded ingest queue drained by one background writer thread.

    Parameters
    ----------
    state:
        The live state batches validate against and apply to.
    max_pending_events:
        Queue bound: accepted events allowed to sit unapplied.  A batch
        that would overflow is rejected with
        :class:`IngestBackpressureError` unless the queue is empty.
    retry_after:
        The backoff hint (seconds) carried on rejections.
    snapshot_every:
        Take a snapshot after every N applied batches (``None`` = only
        on :meth:`close`).
    snapshot_fn:
        Zero-argument snapshot hook (typically
        ``lambda: state.save_overlay_snapshot(path)``).  Failures are
        counted, never fatal to the writer.
    """

    def __init__(
        self,
        state: ServeState,
        *,
        max_pending_events: int = 100_000,
        retry_after: float = 0.25,
        snapshot_every: Optional[int] = None,
        snapshot_fn: Optional[Callable[[], object]] = None,
    ) -> None:
        if max_pending_events < 1:
            raise ServeError("max_pending_events must be >= 1")
        if retry_after <= 0:
            raise ServeError("retry_after must be positive")
        if snapshot_every is not None and snapshot_every < 1:
            raise ServeError("snapshot_every must be >= 1")
        self._state = state
        self._capacity = max_pending_events
        self._retry_after = retry_after
        self._snapshot_every = snapshot_every
        self._snapshot_fn = snapshot_fn
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._drained = threading.Condition(self._lock)
        self._queue: deque[ValidatedBatch] = deque()
        self._depth_events = 0
        # Effective tails = applied tails overlaid with queued batches'.
        # Grows like the state's own tail map (one entry per streamed
        # machine) and stays consistent with it by construction.
        self._shadow_tails: dict = {}
        self._applying = False
        self._closed = False
        self._enqueued = 0
        self._applied = 0
        self._rejections = 0
        self._snapshots = 0
        self._snapshot_failures = 0
        self._since_snapshot = 0
        self.last_snapshot_error: Optional[str] = None
        self._writer = threading.Thread(
            target=self._drain, name="fgcs-ingest-writer", daemon=True
        )
        self._writer.start()

    # -- enqueue side ---------------------------------------------------------

    def _tail_of(self, machine_id: int):
        tail = self._shadow_tails.get(machine_id)
        if tail is not None:
            return tail
        return self._state.tail_of(machine_id)

    def validate_only(
        self, events: Iterable[Union[dict, Sequence]]
    ) -> ValidatedBatch:
        """Decide a batch's fate against the effective tails, applying
        and enqueuing nothing — the dry-run half of the router's
        two-phase cross-worker ingest."""
        with self._lock:
            self._check_open()
            return self._state.validate_events(events, self._tail_of)

    def submit(self, events: Iterable[Union[dict, Sequence]]) -> ValidatedBatch:
        """Validate a batch and enqueue it for application.

        Synchronous contract, deferred application: raises exactly what
        :meth:`ServeState.ingest` would raise (parse errors, ordering
        409s) plus :class:`IngestBackpressureError` when the queue is
        full, and returns the validated batch (same accepted/deduplicated
        counts, plus the projected horizon).  On return the batch is
        durable in the queue and its events are visible to the *next*
        batch's validation.
        """
        with self._lock:
            self._check_open()
            batch = self._state.validate_events(events, self._tail_of)
            n_new = batch.n_accepted
            if n_new and self._depth_events and (
                self._depth_events + n_new > self._capacity
            ):
                self._rejections += 1
                raise IngestBackpressureError(
                    f"ingest queue full ({self._depth_events} events "
                    f"pending, bound {self._capacity}); retry after "
                    f"{self._retry_after}s",
                    retry_after=self._retry_after,
                )
            self._queue.append(batch)
            self._depth_events += n_new
            self._shadow_tails.update(batch.tails)
            self._enqueued += 1
            self._has_work.notify()
            return batch

    def _check_open(self) -> None:
        if self._closed:
            raise ServeError("ingest queue is closed")

    # -- writer side ----------------------------------------------------------

    def _drain(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._has_work.wait()
                if not self._queue:
                    return
                batch = self._queue.popleft()
                self._applying = True
            try:
                self._state.apply_batch(batch)
            finally:
                with self._lock:
                    self._depth_events -= batch.n_accepted
                    self._applied += 1
                    self._applying = False
                    take_snapshot = False
                    if self._snapshot_every is not None and batch.n_accepted:
                        self._since_snapshot += 1
                        if self._since_snapshot >= self._snapshot_every:
                            self._since_snapshot = 0
                            take_snapshot = True
                    if not self._queue:
                        self._drained.notify_all()
            if take_snapshot:
                self.snapshot()

    def snapshot(self) -> bool:
        """Run the snapshot hook now (writer cadence calls this too)."""
        if self._snapshot_fn is None:
            return False
        try:
            self._snapshot_fn()
        except Exception as exc:
            with self._lock:
                self._snapshot_failures += 1
                self.last_snapshot_error = f"{type(exc).__name__}: {exc}"
            return False
        with self._lock:
            self._snapshots += 1
        return True

    # -- lifecycle ------------------------------------------------------------

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until every batch enqueued so far is applied."""
        with self._lock:
            return self._drained.wait_for(
                lambda: not self._queue and not self._applying, timeout
            )

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain the queue, stop the writer, take a final snapshot."""
        self.flush(timeout)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._has_work.notify_all()
        self._writer.join(timeout)
        self.snapshot()

    def stats(self) -> IngestQueueStats:
        with self._lock:
            return IngestQueueStats(
                depth_events=self._depth_events,
                depth_batches=len(self._queue) + (1 if self._applying else 0),
                capacity_events=self._capacity,
                enqueued_batches=self._enqueued,
                applied_batches=self._applied,
                backpressure_rejections=self._rejections,
                snapshots=self._snapshots,
                snapshot_failures=self._snapshot_failures,
            )
