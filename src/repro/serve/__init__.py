"""Availability-forecast serving layer.

The live counterpart of :mod:`repro.prediction`: a long-running daemon
(``repro-fgcs serve``) holding per-machine predictor state as hot/cold
tiered count blocks — rebuilt on demand from mmap'd binary shards,
updated in place by streamed events — and answering HTTP/JSON queries
value-identical to the batch :class:`HistoryWindowPredictor` on the
same data.  ``repro-fgcs query`` is the matching CLI client.

See ``docs/serving.md``.
"""

from .client import ServeClient, ServeRequestError
from .server import ServeApp, ServeHandle, start_server
from .state import IngestResult, ServeState, TierStats, counts_from_columns

__all__ = [
    "IngestResult",
    "ServeApp",
    "ServeClient",
    "ServeHandle",
    "ServeRequestError",
    "ServeState",
    "TierStats",
    "counts_from_columns",
    "start_server",
]
