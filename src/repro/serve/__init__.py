"""Availability-forecast serving layer.

The live counterpart of :mod:`repro.prediction`: a long-running daemon
(``repro-fgcs serve``) holding per-machine predictor state as hot/cold
tiered count blocks — paged at block granularity from mmap'd binary
shards (:mod:`repro.serve.paging`), updated in place by streamed events
through a bounded asynchronous ingest queue (:mod:`repro.serve.ingest`)
— and answering HTTP/JSON queries value-identical to the batch
:class:`HistoryWindowPredictor` on the same data.  ``repro-fgcs serve
--workers N`` scales the same protocol horizontally: a router front-end
over per-machine-range worker processes (:mod:`repro.serve.router`).
``repro-fgcs query`` is the matching CLI client.

See ``docs/serving.md``.
"""

from .client import ServeClient, ServeRequestError
from .ingest import AsyncIngester, IngestQueueStats
from .paging import BlockInfo, BlockPager, PagerStats
from .router import RouterApp, RouterHandle, WorkerSpec, start_router
from .server import ServeApp, ServeHandle, start_server
from .state import IngestResult, ServeState, TierStats, counts_from_columns

__all__ = [
    "AsyncIngester",
    "BlockInfo",
    "BlockPager",
    "IngestQueueStats",
    "IngestResult",
    "PagerStats",
    "RouterApp",
    "RouterHandle",
    "ServeApp",
    "ServeClient",
    "ServeHandle",
    "ServeRequestError",
    "ServeState",
    "TierStats",
    "WorkerSpec",
    "counts_from_columns",
    "start_router",
    "start_server",
]
