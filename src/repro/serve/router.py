"""Horizontal scale-out: a router front-end over per-shard-range workers.

A single serve process tops out on one GIL: the accept loop, the JSON
codec, and the fleet sweeps all contend for the same interpreter, so
throughput saturates long before the hardware does (the classic
single-process collapse the multicore-OS literature documents).  The
scale-out front keeps every piece of PR 8's protocol and exactness while
spreading the *state* across processes:

* ``start_router(store, n_workers=N)`` partitions the store's shards
  into N contiguous runs and **spawns one worker process per run** —
  each a full :func:`~repro.serve.server.start_server` daemon whose
  :class:`~repro.serve.state.ServeState` owns exactly that machine
  range (the per-shard count blocks are already independent, so the
  partition is free).  Workers use the ``spawn`` start method: a fresh
  interpreter, picklable specs, and safe respawn while router threads
  run.
* The **router** is a thin HTTP front: per-machine queries
  (``availability``, single-machine ``ingest``) are forwarded verbatim
  to the owning worker over persistent per-thread upstream connections;
  fleet-wide ``capacity``/``rank`` scatter to every worker in parallel
  and merge vectorized (integer partial sums and a global
  ``(-survival, machine)`` sort — exactly the single-process answer,
  see ``docs/serving.md``).  The router holds *no* predictor state, so
  its per-request work is a dict lookup and byte shuffling.
* A **supervisor thread** watches worker processes.  A dead worker
  (crash, SIGKILL) marks its machine range down — requests for it get
  503 + ``Retry-After`` *for that range only*; everything else keeps
  serving — and is respawned from the store (plus its overlay snapshot,
  when snapshots are on).  Worker ports are handed back over a pipe at
  boot, so respawns rebind freely.

Cross-worker ingest batches keep the atomic-batch contract by a
two-phase protocol under a router-wide ingest lock: every owner
validates its slice (``?dry=1``) against its effective tails, and only
when all slices pass does the router commit them (retrying transient
429s).  A worker that dies *between* the phases can leave a batch
partially applied across workers — the same window a crashed
single-process daemon has between accepting and snapshotting — but
per-machine ordering can never be violated.  Single-owner batches (the
common case when producers shard their streams the same way) skip the
lock and both phases.
"""

from __future__ import annotations

import bisect
import json
import multiprocessing
import socket
import threading
import time
from dataclasses import dataclass
from http.server import ThreadingHTTPServer
from typing import Optional, Sequence
from urllib.parse import parse_qs, urlsplit

import numpy as np

from ..errors import ServeError
from ..obs.metrics import MetricsRegistry
from ..traces.shards import ShardedTraceDataset

__all__ = [
    "RouterApp",
    "RouterHandle",
    "WorkerSpec",
    "start_router",
    "worker_main",
]

#: How long a worker gets to bind its port and report back.
_BOOT_TIMEOUT_S = 60.0
#: Supervisor poll cadence.
_POLL_S = 0.2
#: Retry-After hint the router sends for a down machine range.
_DOWN_RETRY_AFTER = 1.0


# -- worker process ------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs (must stay picklable)."""

    worker_id: int
    store_root: str
    shard_lo: int
    shard_hi: int
    host: str = "127.0.0.1"
    block_machines: Optional[int] = None
    hot_shards: Optional[int] = None
    hot_bytes: Optional[int] = None
    history_days: int = 8
    statistic: str = "mean"
    laplace: float = 0.5
    verify: bool = True
    ingest_queue: int = 100_000
    snapshot_dir: Optional[str] = None
    snapshot_every: Optional[int] = None

    @property
    def snapshot_path(self) -> Optional[str]:
        if self.snapshot_dir is None:
            return None
        return f"{self.snapshot_dir}/worker{self.worker_id}.npz"


def worker_main(spec: WorkerSpec, conn) -> None:
    """Entry point of one spawned shard worker (blocks until shutdown)."""
    from pathlib import Path

    from ..traces.shards import open_shards
    from .ingest import AsyncIngester
    from .server import start_server
    from .state import ServeState

    store = open_shards(spec.store_root, verify=spec.verify)
    state = ServeState.from_store(
        store,
        shard_range=(spec.shard_lo, spec.shard_hi),
        hot_shards=spec.hot_shards,
        hot_bytes=spec.hot_bytes,
        block_machines=spec.block_machines,
        history_days=spec.history_days,
        statistic=spec.statistic,
        laplace=spec.laplace,
        verify=spec.verify,
    )
    snapshot_fn = None
    if spec.snapshot_path is not None:
        snap = Path(spec.snapshot_path)
        if snap.exists():
            state.restore_overlay_snapshot(snap)
        snapshot_fn = lambda: state.save_overlay_snapshot(snap)  # noqa: E731
    ingester = AsyncIngester(
        state,
        max_pending_events=spec.ingest_queue,
        snapshot_every=spec.snapshot_every,
        snapshot_fn=snapshot_fn,
    )
    registry = MetricsRegistry()
    handle = start_server(
        state,
        host=spec.host,
        port=0,
        registry=registry,
        ingester=ingester,
        worker_id=spec.worker_id,
    )
    conn.send(handle.port)
    conn.close()
    try:
        handle.wait()  # until POST /v1/shutdown stops the serve loop
    finally:
        handle.server.server_close()
        ingester.close(timeout=30.0)


# -- upstream connections ------------------------------------------------------


class _Upstream:
    """One persistent raw-socket HTTP/1.1 connection to a worker.

    ``http.client`` parses response headers through ``email.parser`` —
    measurable milliseconds per response, which a one-GIL router paying
    it on *every* forwarded request cannot afford.  This speaks just the
    subset the workers emit: status line, ``\\r\\n`` headers,
    ``Content-Length`` bodies over a buffered socket file.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self.sock.makefile("rb")
        self._host_header = f"{host}:{port}".encode("ascii")

    def close(self) -> None:
        try:
            self._rfile.close()
            self.sock.close()
        except OSError:
            pass

    def request(
        self, method: str, target: str, body: bytes = b""
    ) -> tuple[int, dict, bytes]:
        """Returns ``(status, lowercased_headers, body_bytes)``."""
        head = (
            f"{method} {target} HTTP/1.1\r\n".encode("ascii")
            + b"Host: " + self._host_header + b"\r\n"
            + b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
            + (b"Content-Type: application/json\r\n" if body else b"")
            + b"\r\n"
        )
        self.sock.sendall(head + body)
        status_line = self._rfile.readline()
        if not status_line:
            raise ConnectionError("upstream closed the connection")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"malformed upstream status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = self._rfile.readline()
            if not line:
                raise ConnectionError("upstream closed mid-headers")
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.partition(b":")
            headers[name.strip().lower().decode("latin-1")] = (
                value.strip().decode("latin-1")
            )
        length = int(headers.get("content-length") or 0)
        payload = self._rfile.read(length) if length else b""
        if length and len(payload) < length:
            raise ConnectionError("upstream closed mid-body")
        return status, headers, payload


class _WorkerDown(ServeError):
    """Internal: the owning worker's range is temporarily unavailable."""

    def __init__(self, worker: "WorkerHandle"):
        super().__init__(
            f"machine range [{worker.machine_lo}, {worker.machine_hi}) is "
            f"temporarily unavailable (worker {worker.spec.worker_id} "
            "restarting); retry shortly"
        )
        self.worker = worker


# -- supervision ---------------------------------------------------------------


class WorkerHandle:
    """One worker's process, address, and up/down status."""

    def __init__(self, spec: WorkerSpec, machine_lo: int, machine_hi: int):
        self.spec = spec
        self.machine_lo = machine_lo
        self.machine_hi = machine_hi
        self.process = None
        self.port: Optional[int] = None
        #: Bumped on every (re)spawn so pooled connections self-invalidate.
        self.generation = 0
        self.down = True
        self.respawns = -1  # first spawn brings it to 0
        self.lock = threading.Lock()


class WorkerSupervisor:
    """Spawns the worker fleet, watches it, respawns the fallen."""

    def __init__(self, specs: Sequence[WorkerSpec], ranges: Sequence[tuple]):
        self._ctx = multiprocessing.get_context("spawn")
        self.workers = [
            WorkerHandle(spec, lo, hi)
            for spec, (lo, hi) in zip(specs, ranges)
        ]
        self._machine_los = [w.machine_lo for w in self.workers]
        self._closing = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        for worker in self.workers:
            self._spawn(worker)
        self._thread = threading.Thread(
            target=self._watch, name="fgcs-supervisor", daemon=True
        )
        self._thread.start()

    def _spawn(self, worker: WorkerHandle) -> None:
        parent, child = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker.spec, child),
            name=f"fgcs-worker-{worker.spec.worker_id}",
            daemon=True,
        )
        process.start()
        child.close()
        if not parent.poll(_BOOT_TIMEOUT_S):
            process.terminate()
            raise ServeError(
                f"worker {worker.spec.worker_id} did not report a port "
                f"within {_BOOT_TIMEOUT_S:.0f}s"
            )
        port = parent.recv()
        parent.close()
        with worker.lock:
            worker.process = process
            worker.port = port
            worker.generation += 1
            worker.respawns += 1
            worker.down = False

    def _watch(self) -> None:
        while not self._closing.is_set():
            for worker in self.workers:
                if self._closing.is_set():
                    break
                process = worker.process
                if process is not None and not process.is_alive():
                    with worker.lock:
                        worker.down = True
                    try:
                        self._spawn(worker)
                    except Exception:
                        # Boot failed; stays down, retried next poll.
                        with worker.lock:
                            worker.down = True
            self._closing.wait(_POLL_S)

    def worker_for_machine(self, machine_id: int) -> WorkerHandle:
        lo = self.workers[0].machine_lo
        hi = self.workers[-1].machine_hi
        if not lo <= machine_id < hi:
            raise ServeError(
                f"unknown machine {machine_id} (fleet is [{lo}, {hi}))"
            )
        return self.workers[bisect.bisect_right(self._machine_los, machine_id) - 1]

    def close(self, timeout: float = 10.0) -> None:
        self._closing.set()
        if self._thread is not None:
            self._thread.join(timeout)
        for worker in self.workers:
            process, port = worker.process, worker.port
            if process is None or not process.is_alive():
                continue
            try:
                up = _Upstream("127.0.0.1", port, timeout=5.0)
                up.request("POST", "/v1/shutdown", b"")
                up.close()
            except OSError:
                pass
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            process = worker.process
            if process is None:
                continue
            process.join(max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(2.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(1.0)


# -- the router app ------------------------------------------------------------


class RouterApp:
    """Routes front-door requests across the worker fleet.

    Speaks the same wire protocol as :class:`~repro.serve.server.ServeApp`
    (the :class:`~repro.serve.client.ServeClient` cannot tell them
    apart) but holds no predictor state of its own.
    """

    def __init__(
        self,
        supervisor: WorkerSupervisor,
        n_machines: int,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.supervisor = supervisor
        self.n_machines = n_machines
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=False)
        )
        self._started = time.time()
        self._local = threading.local()
        self._ingest_lock = threading.Lock()

    # -- forwarding -----------------------------------------------------------

    def _upstream(self, worker: WorkerHandle) -> _Upstream:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        cached = pool.get(worker.spec.worker_id)
        if cached is not None and cached[0] == worker.generation:
            return cached[1]
        if cached is not None:
            cached[1].close()
        upstream = _Upstream("127.0.0.1", worker.port)
        pool[worker.spec.worker_id] = (worker.generation, upstream)
        return upstream

    def _drop_upstream(self, worker: WorkerHandle) -> None:
        pool = getattr(self._local, "pool", None)
        if pool is not None:
            cached = pool.pop(worker.spec.worker_id, None)
            if cached is not None:
                cached[1].close()

    def forward(
        self, worker: WorkerHandle, method: str, target: str, body: bytes = b""
    ) -> tuple[int, dict, dict]:
        """Forward one request to a worker; reconnect once, then mark the
        range down."""
        with worker.lock:
            down = worker.down
        if down:
            raise _WorkerDown(worker)
        for attempt in (0, 1):
            try:
                upstream = self._upstream(worker)
                status, headers, payload = upstream.request(method, target, body)
                break
            except (OSError, ConnectionError):
                self._drop_upstream(worker)
                if attempt:
                    # Two strikes: the worker is gone (the supervisor
                    # will notice the corpse and respawn it); fail only
                    # this machine range.
                    with worker.lock:
                        worker.down = True
                    raise _WorkerDown(worker)
        try:
            decoded = json.loads(payload) if payload else {}
        except ValueError:
            decoded = {"error": payload.decode("utf-8", errors="replace")}
        out_headers = {}
        if "retry-after" in headers:
            out_headers["Retry-After"] = headers["retry-after"]
        return status, decoded, out_headers

    def _scatter(
        self, method: str, target: str, body: bytes = b""
    ) -> list[tuple[int, dict, dict]]:
        """Forward to every worker in parallel; raises :class:`_WorkerDown`
        if any range is unavailable (fleet answers must be whole)."""
        workers = self.supervisor.workers
        results: list = [None] * len(workers)
        errors: list = [None] * len(workers)

        def fetch(i: int, worker: WorkerHandle) -> None:
            try:
                results[i] = self.forward(worker, method, target, body)
            except ServeError as exc:
                errors[i] = exc

        if len(workers) == 1:
            fetch(0, workers[0])
        else:
            threads = [
                threading.Thread(target=fetch, args=(i, w), daemon=True)
                for i, w in enumerate(workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for exc in errors:
            if exc is not None:
                raise exc
        return results

    # -- plumbing -------------------------------------------------------------

    def handle(
        self, method: str, target: str, body: bytes = b""
    ) -> tuple[int, dict]:
        status, payload, _ = self.handle_full(method, target, body)
        return status, payload

    def handle_full(
        self, method: str, target: str, body: bytes = b""
    ) -> tuple[int, dict, dict]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        params = parse_qs(split.query)
        headers: dict[str, str] = {}
        t0 = time.perf_counter()
        try:
            status, payload, headers = self._route(
                method, path, params, target, body
            )
        except _WorkerDown as exc:
            status = 503
            payload = {"error": str(exc), "retry_after": _DOWN_RETRY_AFTER}
            headers = {"Retry-After": f"{_DOWN_RETRY_AFTER:g}"}
            self.registry.inc("serve.range_unavailable")
        except ServeError as exc:
            message = str(exc)
            if "unknown machine" in message:
                status, payload = 404, {"error": message}
            else:
                status, payload = 400, {"error": message}
            headers = {}
        except Exception as exc:  # pragma: no cover - defensive 500
            status, payload, headers = (
                500,
                {"error": f"{type(exc).__name__}: {exc}"},
                {},
            )
        dt = time.perf_counter() - t0
        name = path.rsplit("/", 1)[-1] or "root"
        self.registry.inc("serve.requests")
        self.registry.inc(f"serve.status.{status // 100}xx")
        self.registry.observe("serve.request_seconds", dt)
        self.registry.observe(f"serve.request_seconds.{name}", dt)
        return status, payload, headers

    def _route(
        self, method: str, path: str, params: dict, target: str, body: bytes
    ) -> tuple[int, dict, dict]:
        if path == "/healthz" and method == "GET":
            return self.healthz()
        if path == "/v1/availability" and method == "GET":
            return self.availability(params, target)
        if path == "/v1/capacity" and method == "GET":
            return self.capacity(target)
        if path == "/v1/rank" and method == "GET":
            return self.rank(params, target)
        if path == "/v1/stats" and method == "GET":
            return self.stats()
        if path == "/v1/ingest" and method == "POST":
            return self.ingest(body)
        if path == "/v1/flush" and method == "POST":
            return self.flush()
        if path == "/v1/shutdown" and method == "POST":
            return 200, {"stopping": True}, {}
        known = {
            "/healthz",
            "/v1/availability",
            "/v1/capacity",
            "/v1/rank",
            "/v1/stats",
            "/v1/ingest",
            "/v1/flush",
            "/v1/shutdown",
        }
        if path in known:
            return 405, {"error": f"{method} not allowed on {path}"}, {}
        return 404, {"error": f"no such endpoint {path!r}"}, {}

    # -- endpoints ------------------------------------------------------------

    def healthz(self) -> tuple[int, dict, dict]:
        workers = []
        all_up = True
        for w in self.supervisor.workers:
            with w.lock:
                down, respawns = w.down, w.respawns
            all_up = all_up and not down
            workers.append(
                {
                    "worker": w.spec.worker_id,
                    "up": not down,
                    "machine_lo": w.machine_lo,
                    "machine_hi": w.machine_hi,
                    "respawns": respawns,
                }
            )
        return 200, {
            "ok": True,
            "ready": all_up,
            "role": "router",
            "n_machines": self.n_machines,
            "workers": workers,
            "uptime_seconds": time.time() - self._started,
        }, {}

    def availability(self, params: dict, target: str) -> tuple[int, dict, dict]:
        raw = params.get("machine", [None])[-1]
        if raw is None:
            return 400, {"error": "missing required parameter 'machine'"}, {}
        try:
            machine = int(raw)
        except ValueError:
            return 400, {
                "error": f"parameter 'machine' must be an integer, got {raw!r}"
            }, {}
        worker = self.supervisor.worker_for_machine(machine)
        return self.forward(worker, "GET", target)

    def capacity(self, target: str) -> tuple[int, dict, dict]:
        results = self._scatter("GET", target)
        for status, payload, headers in results:
            if status != 200:
                return status, payload, headers
        parts = [payload for _, payload, _ in results]
        available = sum(p["available"] for p in parts)
        survival_sum = sum(p["survival_sum"] for p in parts)
        merged = {
            "available": available,
            "n_machines": self.n_machines,
            "owned": self.n_machines,
            "machine_lo": 0,
            "machine_hi": self.n_machines,
            "fraction": available / self.n_machines,
            "threshold": parts[0]["threshold"],
            "mean_survival": survival_sum / self.n_machines,
            "survival_sum": survival_sum,
            "day": parts[0]["day"],
            "hour": parts[0]["hour"],
            "duration_hours": parts[0]["duration_hours"],
            "workers": len(parts),
        }
        return 200, merged, {}

    def rank(self, params: dict, target: str) -> tuple[int, dict, dict]:
        k_raw = params.get("k", [None])[-1]
        try:
            k = 10 if k_raw is None else int(k_raw)
        except ValueError:
            return 400, {
                "error": f"parameter 'k' must be an integer, got {k_raw!r}"
            }, {}
        results = self._scatter("GET", target)
        for status, payload, headers in results:
            if status != 200:
                return status, payload, headers
        parts = [payload for _, payload, _ in results]
        machines = np.array(
            [m["machine"] for p in parts for m in p["machines"]], dtype=np.int64
        )
        survivals = np.array(
            [m["survival"] for p in parts for m in p["machines"]], dtype=float
        )
        # The global top-k is inside the union of per-worker top-ks;
        # lexsort's last key is primary: descending survival, then
        # ascending machine id — the single-process tie-break.
        order = np.lexsort((machines, -survivals))[:k]
        return 200, {
            "day": parts[0]["day"],
            "hour": parts[0]["hour"],
            "duration_hours": parts[0]["duration_hours"],
            "machines": [
                {"machine": int(machines[i]), "survival": float(survivals[i])}
                for i in order
            ],
        }, {}

    def stats(self) -> tuple[int, dict, dict]:
        lanes = []
        totals = {
            "requests": 0,
            "streamed_events": 0,
            "deduplicated_events": 0,
            "queue_depth_events": 0,
            "backpressure_rejections": 0,
            "rebuilds": 0,
            "evictions": 0,
            "hits": 0,
            "resident_bytes": 0,
        }
        for worker in self.supervisor.workers:
            try:
                status, payload, _ = self.forward(worker, "GET", "/v1/stats")
            except _WorkerDown:
                lanes.append({"worker": worker.spec.worker_id, "up": False})
                continue
            if status != 200:
                lanes.append({"worker": worker.spec.worker_id, "up": False})
                continue
            lanes.append({**payload, "up": True})
            totals["requests"] += payload.get("requests", 0)
            tier = payload.get("tier", {})
            for key in ("rebuilds", "evictions", "hits", "resident_bytes"):
                totals[key] += tier.get(key, 0)
            ingest = payload.get("ingest", {})
            totals["streamed_events"] += ingest.get("streamed_events", 0)
            totals["deduplicated_events"] += ingest.get(
                "deduplicated_events", 0
            )
            queue = ingest.get("queue", {})
            totals["queue_depth_events"] += queue.get("depth_events", 0)
            totals["backpressure_rejections"] += queue.get(
                "backpressure_rejections", 0
            )
        payload = {
            "role": "router",
            "n_machines": self.n_machines,
            "workers": lanes,
            "totals": totals,
            "requests": self.registry.counter_value("serve.requests"),
        }
        hist = self.registry.histogram("serve.request_seconds")
        if hist is not None and len(hist):
            payload["latency"] = hist.summary()
        return 200, payload, {}

    # -- ingest ---------------------------------------------------------------

    def _decode_events(self, body: bytes) -> list:
        if not body:
            raise ServeError("ingest body is empty")
        text = body.decode("utf-8", errors="replace").strip()
        if text.startswith("["):
            try:
                events = json.loads(text)
            except ValueError as exc:
                raise ServeError(f"invalid JSON body: {exc}")
            if not isinstance(events, list):
                raise ServeError("ingest JSON body must be an array")
            return events
        events = []
        for i, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                raise ServeError(f"ingest line {i}: invalid JSON: {exc}")
        return events

    def _event_machine(self, event) -> int:
        if isinstance(event, dict):
            raw = event.get("machine_id")
        else:
            try:
                raw = event[0]
            except (TypeError, IndexError):
                raw = None
        try:
            return int(raw)
        except (TypeError, ValueError):
            raise ServeError(
                "ingest event must carry an integer machine_id "
                "(dict field or first sequence element)"
            )

    def ingest(self, body: bytes) -> tuple[int, dict, dict]:
        events = self._decode_events(body)
        slices: dict[int, list] = {}
        for event in events:
            owner = self.supervisor.worker_for_machine(
                self._event_machine(event)
            )
            slices.setdefault(owner.spec.worker_id, []).append(event)
        workers = {
            w.spec.worker_id: w for w in self.supervisor.workers
        }
        if len(slices) == 1:
            # Single owner: the worker's own validate+enqueue is already
            # atomic; forward verbatim (status, 409s, and 429 backpressure
            # pass straight through).
            [(worker_id, payload_events)] = slices.items()
            body_out = json.dumps(payload_events).encode("utf-8")
            return self.forward(
                workers[worker_id], "POST", "/v1/ingest", body_out
            )
        # Cross-worker batch: two phases under the router ingest lock so
        # concurrent batches cannot interleave between validate and
        # commit.  Phase 1 dry-runs every slice; any rejection rejects
        # the whole batch with nothing applied anywhere.
        with self._ingest_lock:
            encoded = {
                wid: json.dumps(evs).encode("utf-8")
                for wid, evs in slices.items()
            }
            for wid, slice_body in encoded.items():
                status, payload, headers = self.forward(
                    workers[wid], "POST", "/v1/ingest?dry=1", slice_body
                )
                if status != 200:
                    return status, payload, headers
            accepted = deduplicated = 0
            horizon = 0
            for wid, slice_body in encoded.items():
                status, payload, headers = self._commit_slice(
                    workers[wid], slice_body
                )
                if status != 200:  # pragma: no cover - crash mid-commit
                    return status, payload, headers
                accepted += payload["accepted"]
                deduplicated += payload["deduplicated"]
                horizon = max(horizon, payload.get("horizon_day", 0))
        return 200, {
            "accepted": accepted,
            "deduplicated": deduplicated,
            "dry": False,
            "horizon_day": horizon,
            "workers": len(slices),
        }, {}

    def _commit_slice(
        self, worker: WorkerHandle, slice_body: bytes, deadline_s: float = 30.0
    ) -> tuple[int, dict, dict]:
        """Commit one validated slice, waiting out transient 429s."""
        deadline = time.monotonic() + deadline_s
        while True:
            status, payload, headers = self.forward(
                worker, "POST", "/v1/ingest", slice_body
            )
            if status != 429 or time.monotonic() >= deadline:
                return status, payload, headers
            time.sleep(
                min(float(payload.get("retry_after", 0.25)), 1.0)
            )

    def flush(self) -> tuple[int, dict, dict]:
        results = self._scatter("POST", "/v1/flush")
        applied = 0
        for status, payload, headers in results:
            if status != 200:
                return status, payload, headers
            applied += payload.get("applied_batches", 0)
        return 200, {"flushed": True, "applied_batches": applied}, {}


# -- lifecycle -----------------------------------------------------------------


class RouterHandle:
    """A running router front plus its worker fleet."""

    def __init__(
        self,
        server: ThreadingHTTPServer,
        app: RouterApp,
        thread: threading.Thread,
        supervisor: WorkerSupervisor,
    ):
        self.server = server
        self.app = app
        self.thread = thread
        self.supervisor = supervisor

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def wait(self, timeout: Optional[float] = None) -> None:
        self.thread.join(timeout)

    def close(self) -> None:
        self.server.shutdown()
        self.thread.join()
        self.server.server_close()
        self.supervisor.close()

    def __enter__(self) -> "RouterHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def partition_shards(n_shards: int, n_workers: int) -> list[tuple[int, int]]:
    """Contiguous shard runs, sizes differing by at most one."""
    if n_workers < 1:
        raise ServeError("n_workers must be >= 1")
    n_workers = min(n_workers, n_shards)
    base, extra = divmod(n_shards, n_workers)
    runs = []
    lo = 0
    for w in range(n_workers):
        hi = lo + base + (1 if w < extra else 0)
        runs.append((lo, hi))
        lo = hi
    return runs


def start_router(
    store: ShardedTraceDataset,
    store_root: str,
    *,
    n_workers: int,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[MetricsRegistry] = None,
    block_machines: Optional[int] = None,
    hot_shards: Optional[int] = None,
    hot_bytes: Optional[int] = None,
    history_days: int = 8,
    statistic: str = "mean",
    laplace: float = 0.5,
    verify: bool = True,
    ingest_queue: int = 100_000,
    snapshot_dir: Optional[str] = None,
    snapshot_every: Optional[int] = None,
) -> RouterHandle:
    """Spawn the worker fleet and start the router front on a thread.

    ``n_workers`` is clamped to the shard count (a worker needs at least
    one shard).  Workers always bind loopback; only the router binds
    ``host``.
    """
    from .server import _Handler

    runs = partition_shards(store.n_shards, n_workers)
    specs = []
    ranges = []
    for worker_id, (lo, hi) in enumerate(runs):
        specs.append(
            WorkerSpec(
                worker_id=worker_id,
                store_root=str(store_root),
                shard_lo=lo,
                shard_hi=hi,
                block_machines=block_machines,
                hot_shards=hot_shards,
                hot_bytes=hot_bytes,
                history_days=history_days,
                statistic=statistic,
                laplace=laplace,
                verify=verify,
                ingest_queue=ingest_queue,
                snapshot_dir=snapshot_dir,
                snapshot_every=snapshot_every,
            )
        )
        ranges.append(
            (
                store.manifest.shards[lo].machine_lo,
                store.manifest.shards[hi - 1].machine_hi,
            )
        )
    supervisor = WorkerSupervisor(specs, ranges)
    supervisor.start()
    app = RouterApp(supervisor, store.n_machines, registry)
    handler = type("RouterHandler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="fgcs-router", daemon=True
    )
    thread.start()
    return RouterHandle(server, app, thread, supervisor)
