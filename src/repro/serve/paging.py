"""Block-level paging of predictor count state over an on-disk shard store.

PR 8's cold tier paged *whole shards*: a touch of any machine rebuilt the
shard's full ``(machines, n_days, 24)`` count block.  At 10³ machines
that is fine; at 10⁵–10⁶ a single shard's block is tens to hundreds of
megabytes and the resident-set ceiling is effectively ``hot_shards ×
shard_block`` — far too coarse to serve a million-machine fleet under a
fixed RSS budget.

:class:`BlockPager` replaces that with **fixed-size machine-range
blocks**: each shard's machine range is chopped into pieces of
``block_machines`` machines, and only the touched block's counts are
(re)built.  For binary shards the rebuild is zero-copy end to end — the
shard file is memory-mapped, the block's event rows are located with two
binary searches on the (machine-sorted) ``machine_id`` column (touching
``O(log n)`` pages, *not* the whole file), and the counts come from one
``bincount`` over that slice.  The mapping is dropped as soon as the
block is built, so evicted state really leaves the resident set instead
of lingering as mapped file pages.

Exactness: a block's counts are the corresponding machine rows of
:func:`repro.serve.state.counts_from_columns` on the whole shard —
integer event counts binned with the same ``np.divmod`` arithmetic, so
restriction to a machine sub-range commutes with counting and every
answer served through paging equals the unpaged (and batch) answer
exactly.  ``tests/test_serve_paging.py`` pins this, block size by block
size, through eviction churn.

Verification: the shard file's SHA-256 is checked against the manifest
**once per shard** (first block touch), not per rebuild — per-rebuild
hashing would re-read the whole file and defeat the point of paging.
Corrupted-after-first-touch files still fail loudly: a truncated map
raises on access, and the fingerprint pins the content the serve process
started from.

``block_machines=None`` keeps whole-shard blocks (PR 8 behavior): every
block spans exactly one shard, and ``max_blocks`` bounds resident
*shards* — which is what the pre-existing ``--hot-shards`` flag still
means.
"""

from __future__ import annotations

import bisect
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ServeError, TraceError
from ..traces.records import EventColumns
from ..traces.shards import ShardedTraceDataset, _sha256_file
from ..units import DAY, HOUR

__all__ = ["BlockInfo", "BlockPager", "PagerStats"]


@dataclass(frozen=True)
class BlockInfo:
    """One pageable block: a machine sub-range of one shard."""

    index: int
    shard: int
    #: Global machine range ``[lo, hi)`` the block covers.
    lo: int
    hi: int

    @property
    def n_machines(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class PagerStats:
    """A snapshot of the pager's accounting."""

    #: Blocks currently resident.
    resident_blocks: int
    #: Bytes of resident count blocks.
    resident_bytes: int
    #: Touches answered from a resident block.
    hits: int
    #: Block (re)builds — the page-miss count.
    rebuilds: int
    #: Blocks dropped to satisfy the bounds.
    evictions: int
    #: Total blocks in the table.
    n_blocks: int
    #: Configured block size (``None`` = whole-shard blocks).
    block_machines: Optional[int]


def counts_from_event_rows(
    rows: np.ndarray, n_machines: int, n_days: int, machine_base: int = 0
) -> np.ndarray:
    """Bin event rows into an ``(n_machines, n_days, 24)`` count block.

    The same ``np.divmod`` / ``np.floor_divide`` binning as
    :func:`repro.serve.state.counts_from_columns`, applied to an
    arbitrary slice of an event table whose machine ids start at
    ``machine_base`` — the block-restricted form of the whole-shard
    count matrix.
    """
    counts = np.zeros((n_machines, n_days, 24), dtype=np.int64)
    if rows.size == 0 or n_days == 0:
        return counts
    day, rem = np.divmod(rows["start"], DAY)
    hour = np.floor_divide(rem, HOUR).astype(np.int64)
    day = day.astype(np.int64)
    keep = day < n_days
    flat = (
        (rows["machine_id"].astype(np.int64)[keep] - machine_base)
        * (n_days * 24)
        + day[keep] * 24
        + hour[keep]
    )
    counts += np.bincount(flat, minlength=n_machines * n_days * 24).reshape(
        counts.shape
    )
    return counts


class BlockPager:
    """An LRU of fixed-machine-range count blocks over a shard store.

    Parameters
    ----------
    store:
        The on-disk shard store blocks rebuild from.
    shard_lo, shard_hi:
        The contiguous shard range ``[shard_lo, shard_hi)`` this pager
        owns (a scale-out worker owns a slice of the fleet; the default
        is every shard).
    block_machines:
        Machines per block.  ``None`` keeps one block per shard.
    max_blocks:
        Resident-block ceiling (``None`` = unbounded).
    max_bytes:
        Resident-byte ceiling (``None`` = unbounded).  Both bounds may
        be active; eviction runs until both hold, always keeping at
        least one block resident.
    verify:
        Check each shard file's SHA-256 against the manifest on the
        shard's first block touch.

    Not internally locked: :class:`~repro.serve.state.ServeState` calls
    under its own lock, which also serializes the counters.
    """

    def __init__(
        self,
        store: ShardedTraceDataset,
        *,
        shard_lo: int = 0,
        shard_hi: Optional[int] = None,
        block_machines: Optional[int] = None,
        max_blocks: Optional[int] = None,
        max_bytes: Optional[int] = None,
        verify: bool = True,
    ) -> None:
        if block_machines is not None and block_machines < 1:
            raise ServeError("block_machines must be >= 1")
        if max_blocks is not None and max_blocks < 1:
            raise ServeError("max_blocks must be >= 1")
        if max_bytes is not None and max_bytes <= 0:
            raise ServeError("max_bytes must be positive")
        shard_hi = store.n_shards if shard_hi is None else shard_hi
        if not 0 <= shard_lo < shard_hi <= store.n_shards:
            raise ServeError(
                f"shard range [{shard_lo}, {shard_hi}) outside the store's "
                f"[0, {store.n_shards})"
            )
        self._store = store
        self._block_machines = block_machines
        self._max_blocks = max_blocks
        self._max_bytes = max_bytes
        self._verify = verify
        self.n_days = store.n_days
        self.blocks: list[BlockInfo] = []
        for s in range(shard_lo, shard_hi):
            info = store.manifest.shards[s]
            step = (
                info.n_machines
                if block_machines is None
                else block_machines
            )
            lo = info.machine_lo
            while lo < info.machine_hi:
                hi = min(lo + step, info.machine_hi)
                self.blocks.append(
                    BlockInfo(len(self.blocks), s, lo, hi)
                )
                lo = hi
        self.machine_lo = self.blocks[0].lo
        self.machine_hi = self.blocks[-1].hi
        self._block_los = [b.lo for b in self.blocks]
        self._lru: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._resident_bytes = 0
        self._hits = 0
        self._rebuilds = 0
        self._evictions = 0
        self._verified: set[int] = set()
        # One-deep cache of parsed columns for JSONL shards, so scanning
        # consecutive blocks of the same (non-zero-copy) shard parses the
        # file once, not once per block.
        self._jsonl_cache: Optional[tuple[int, EventColumns]] = None
        self._jsonl_lock = threading.Lock()

    # -- lookup ---------------------------------------------------------------

    def block_of(self, machine_id: int) -> int:
        """The block index owning a (global) machine id."""
        if not self.machine_lo <= machine_id < self.machine_hi:
            raise ServeError(
                f"machine {machine_id} outside the paged range "
                f"[{self.machine_lo}, {self.machine_hi})"
            )
        return bisect.bisect_right(self._block_los, machine_id) - 1

    def counts(self, block_id: int) -> np.ndarray:
        """The block's ``(n_machines, n_days, 24)`` counts, paging it in."""
        block = self._lru.get(block_id)
        if block is not None:
            self._lru.move_to_end(block_id)
            self._hits += 1
            return block
        block = self._build(self.blocks[block_id])
        self._rebuilds += 1
        self._lru[block_id] = block
        self._resident_bytes += block.nbytes
        self._evict()
        return block

    def cell(self, machine_id: int, day: int, hour: int) -> int:
        """One machine-day-hour count, paging the owning block in."""
        info_id = self.block_of(machine_id)
        info = self.blocks[info_id]
        return int(self.counts(info_id)[machine_id - info.lo, day, hour])

    def stats(self) -> PagerStats:
        return PagerStats(
            resident_blocks=len(self._lru),
            resident_bytes=self._resident_bytes,
            hits=self._hits,
            rebuilds=self._rebuilds,
            evictions=self._evictions,
            n_blocks=len(self.blocks),
            block_machines=self._block_machines,
        )

    # -- internals ------------------------------------------------------------

    def _evict(self) -> None:
        def over() -> bool:
            if self._max_blocks is not None and len(self._lru) > self._max_blocks:
                return True
            return (
                self._max_bytes is not None
                and self._resident_bytes > self._max_bytes
            )

        while len(self._lru) > 1 and over():
            _, evicted = self._lru.popitem(last=False)
            self._resident_bytes -= evicted.nbytes
            self._evictions += 1

    def _check_shard(self, shard: int) -> None:
        if shard in self._verified or not self._verify:
            return
        info = self._store.manifest.shards[shard]
        path = self._store.root / info.path
        try:
            digest = _sha256_file(path)
        except OSError as exc:
            raise TraceError(f"cannot read shard {path}: {exc}") from exc
        if digest != info.sha256:
            raise TraceError(
                f"shard {info.path} content fingerprint mismatch "
                f"(expected {info.sha256[:12]}…, got {digest[:12]}…); "
                "the file was corrupted or replaced"
            )
        self._verified.add(shard)

    def _shard_columns(self, shard: int) -> EventColumns:
        """The shard's event columns: a fresh zero-copy map for binary
        shards, a one-deep parse cache for JSONL shards."""
        from ..traces.binio import is_binary_trace, open_columns

        info = self._store.manifest.shards[shard]
        path = self._store.root / info.path
        self._check_shard(shard)
        if is_binary_trace(path):
            _, columns, _ = open_columns(path, mmap=True)
            return columns
        with self._jsonl_lock:
            cached = self._jsonl_cache
            if cached is not None and cached[0] == shard:
                return cached[1]
        from ..traces.io import load_dataset

        columns = EventColumns.from_dataset(load_dataset(path))
        with self._jsonl_lock:
            self._jsonl_cache = (shard, columns)
        return columns

    def _build(self, block: BlockInfo) -> np.ndarray:
        """(Re)build one block's counts from its shard file.

        The mmap (binary shards) lives only for the duration of this
        call: the two ``searchsorted`` probes touch ``O(log n)`` pages,
        the ``bincount`` touches the block's own rows, and the returned
        counts own their memory — nothing keeps file pages resident.
        """
        shard_info = self._store.manifest.shards[block.shard]
        columns = self._shard_columns(block.shard)
        if columns.n_machines != shard_info.n_machines:
            raise TraceError(
                f"shard {shard_info.path} holds {columns.n_machines} "
                f"machines, manifest says {shard_info.n_machines}"
            )
        # Shard files hold shard-local machine ids.
        local_lo = block.lo - shard_info.machine_lo
        local_hi = block.hi - shard_info.machine_lo
        mids = columns.events["machine_id"]
        row_lo = int(np.searchsorted(mids, local_lo, side="left"))
        row_hi = int(np.searchsorted(mids, local_hi, side="left"))
        return counts_from_event_rows(
            columns.events[row_lo:row_hi],
            block.n_machines,
            self.n_days,
            machine_base=local_lo,
        )
