"""The HTTP/JSON availability-forecast server.

Two layers, split for testability:

* :class:`ServeApp` — a pure request router: ``(method, path, params,
  body) -> (status, payload, headers)``.  All endpoint logic, parameter
  parsing, and error mapping lives here, exercisable without sockets.
* :class:`ServeHandler` + :func:`start_server` — the thin
  :mod:`http.server` shell: a :class:`~http.server.ThreadingHTTPServer`
  speaking HTTP/1.1 keep-alive (persistent connections are what make
  four-digit QPS reachable from a handful of client threads), one
  daemon thread per connection, JSON in/out with ``Content-Length``.

The same app serves three roles: the single-process daemon (PR 8), a
scale-out **shard worker** owning a machine range (``worker_id`` set,
state built with a ``shard_range``), and — through
:class:`~repro.serve.router.RouterApp`, which subclasses none of this
but speaks the same wire protocol — the front-end the workers sit
behind.

Endpoints (see ``docs/serving.md`` for the full API):

====== ========================= ==========================================
Method Path                      Answer
====== ========================= ==========================================
GET    ``/healthz``              liveness + readiness + owned machine range
GET    ``/v1/availability``      P(machine available ≥ duration) + count
GET    ``/v1/capacity``          fleet machines forecast free for a window
GET    ``/v1/rank``              top-k machines by survival probability
GET    ``/v1/stats``             tier/paging/ingest/request counters
POST   ``/v1/ingest``            stream events (JSON array or JSONL body;
                                 ``?dry=1`` validates without applying)
POST   ``/v1/flush``             block until queued ingest is applied
POST   ``/v1/shutdown``          graceful stop
====== ========================= ==========================================

Error contract: unknown machine → 404; a machine outside this worker's
range → 421 (misdirected; the router owns the machine→worker map);
malformed or missing parameters (including an invalid window, via
:class:`~repro.errors.PredictionError`) → 400; queries before any data
exists → 503; ingest ordering violations → 409; ingest-queue
backpressure → 429 with a ``Retry-After`` header and ``retry_after`` in
the body; a window with no same-type history yet → 422.  Every error
body is ``{"error": <human message>}``.

Telemetry: per-request counters and latency histograms on the injected
:class:`~repro.obs.metrics.MetricsRegistry` (``serve.requests``,
``serve.request_seconds``, per-endpoint ``serve.request_seconds.<name>``,
``serve.status.{2,4,5}xx``).  Histograms and counters take the registry
lock, so recording from handler threads is safe; spans are
single-threaded by design and deliberately not used per request.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from ..errors import (
    IngestBackpressureError,
    IngestOrderError,
    NoHistoryError,
    PredictionError,
    ServeError,
    WorkerRangeError,
)
from ..obs.metrics import MetricsRegistry
from ..prediction.base import PredictionQuery
from .ingest import AsyncIngester
from .state import ServeState

__all__ = ["ServeApp", "ServeHandle", "start_server"]


class _BadRequest(ServeError):
    """Parameter-level 400 (internal to the router)."""


def _one(params: dict, name: str) -> Optional[str]:
    values = params.get(name)
    return values[-1] if values else None


def _require(params: dict, name: str) -> str:
    value = _one(params, name)
    if value is None:
        raise _BadRequest(f"missing required parameter {name!r}")
    return value


def _as_int(name: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise _BadRequest(f"parameter {name!r} must be an integer, got {value!r}")


def _as_float(name: str, value: str) -> float:
    try:
        out = float(value)
    except ValueError:
        raise _BadRequest(f"parameter {name!r} must be a number, got {value!r}")
    if out != out or out in (float("inf"), float("-inf")):
        raise _BadRequest(f"parameter {name!r} must be finite, got {value!r}")
    return out


class ServeApp:
    """Routes parsed requests against a :class:`ServeState`.

    Pure: no sockets, no threads of its own — the HTTP shell and the
    test suite both drive :meth:`handle`.  With an
    :class:`~repro.serve.ingest.AsyncIngester` attached, ``POST
    /v1/ingest`` validates synchronously but applies through the queue
    (and can 429); without one it applies inline, exactly as before.
    """

    def __init__(
        self,
        state: ServeState,
        registry: Optional[MetricsRegistry] = None,
        *,
        ingester: Optional[AsyncIngester] = None,
        worker_id: Optional[int] = None,
    ) -> None:
        self.state = state
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=False)
        )
        self.ingester = ingester
        self.worker_id = worker_id
        self._started = time.time()

    # -- plumbing -------------------------------------------------------------

    def handle(
        self, method: str, target: str, body: bytes = b""
    ) -> tuple[int, dict]:
        """Dispatch one request; returns ``(http_status, json_payload)``."""
        status, payload, _ = self.handle_full(method, target, body)
        return status, payload

    def handle_full(
        self, method: str, target: str, body: bytes = b""
    ) -> tuple[int, dict, dict]:
        """Dispatch one request; returns ``(status, payload, headers)``."""
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        params = parse_qs(split.query)
        headers: dict[str, str] = {}
        t0 = time.perf_counter()
        try:
            status, payload = self._route(method, path, params, body)
        except _BadRequest as exc:
            status, payload = 400, {"error": str(exc)}
        except PredictionError as exc:
            status, payload = 400, {"error": str(exc)}
        except IngestOrderError as exc:
            status, payload = 409, {"error": str(exc)}
        except IngestBackpressureError as exc:
            status = 429
            payload = {"error": str(exc), "retry_after": exc.retry_after}
            headers["Retry-After"] = f"{exc.retry_after:g}"
            self.registry.inc("serve.ingest_backpressure")
        except NoHistoryError as exc:
            message = str(exc)
            if "no data ingested" in message:
                status, payload = 503, {"error": message}
            else:
                status, payload = 422, {"error": message}
        except WorkerRangeError as exc:
            status, payload = 421, {"error": str(exc)}
        except ServeError as exc:
            message = str(exc)
            if "unknown machine" in message:
                status, payload = 404, {"error": message}
            else:
                status, payload = 400, {"error": message}
        except Exception as exc:  # pragma: no cover - defensive 500
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        dt = time.perf_counter() - t0
        name = path.rsplit("/", 1)[-1] or "root"
        self.registry.inc("serve.requests")
        self.registry.inc(f"serve.status.{status // 100}xx")
        self.registry.observe("serve.request_seconds", dt)
        self.registry.observe(f"serve.request_seconds.{name}", dt)
        return status, payload, headers

    def _route(
        self, method: str, path: str, params: dict, body: bytes
    ) -> tuple[int, dict]:
        if path == "/healthz" and method == "GET":
            return self.healthz()
        if path == "/v1/availability" and method == "GET":
            return self.availability(params)
        if path == "/v1/capacity" and method == "GET":
            return self.capacity(params)
        if path == "/v1/rank" and method == "GET":
            return self.rank(params)
        if path == "/v1/stats" and method == "GET":
            return self.stats()
        if path == "/v1/ingest" and method == "POST":
            return self.ingest(body, params)
        if path == "/v1/flush" and method == "POST":
            return self.flush()
        if path == "/v1/shutdown" and method == "POST":
            return 200, {"stopping": True}
        known = {
            "/healthz",
            "/v1/availability",
            "/v1/capacity",
            "/v1/rank",
            "/v1/stats",
            "/v1/ingest",
            "/v1/flush",
            "/v1/shutdown",
        }
        if path in known:
            return 405, {"error": f"{method} not allowed on {path}"}
        return 404, {"error": f"no such endpoint {path!r}"}

    # -- window parsing -------------------------------------------------------

    def _window(self, params: dict) -> tuple[int, float, float]:
        """(day, start_hour, duration_hours) from request parameters.

        ``duration`` is required; ``day``/``hour`` default to "now" —
        midnight of the first unobserved day, the earliest window whose
        history is complete.
        """
        duration = _as_float("duration", _require(params, "duration"))
        day_raw = _one(params, "day")
        hour_raw = _one(params, "hour")
        day = (
            self.state.horizon_day
            if day_raw is None
            else _as_int("day", day_raw)
        )
        if day < 0:
            raise _BadRequest(f"parameter 'day' must be >= 0, got {day}")
        hour = 0.0 if hour_raw is None else _as_float("hour", hour_raw)
        return day, hour, duration

    # -- endpoints ------------------------------------------------------------

    def healthz(self) -> tuple[int, dict]:
        payload = {
            "ok": True,
            "ready": self.state.ready,
            "n_machines": self.state.n_machines,
            "machine_lo": self.state.machine_lo,
            "machine_hi": self.state.machine_hi,
            "horizon_day": self.state.horizon_day,
            "uptime_seconds": time.time() - self._started,
        }
        if self.worker_id is not None:
            payload["worker"] = self.worker_id
        return 200, payload

    def availability(self, params: dict) -> tuple[int, dict]:
        machine = _as_int("machine", _require(params, "machine"))
        day, hour, duration = self._window(params)
        query = PredictionQuery(
            machine_id=machine,
            day=day,
            start_hour=hour,
            duration_hours=duration,
        )
        survival = self.state.predict_survival(query)
        expected = self.state.predict_count(query)
        return 200, {
            "machine": machine,
            "day": day,
            "hour": hour,
            "duration_hours": duration,
            "survival": survival,
            "expected_events": expected,
        }

    def capacity(self, params: dict) -> tuple[int, dict]:
        day, hour, duration = self._window(params)
        threshold_raw = _one(params, "threshold")
        threshold = (
            0.5 if threshold_raw is None else _as_float("threshold", threshold_raw)
        )
        result = self.state.capacity(day, hour, duration, threshold=threshold)
        result.update({"day": day, "hour": hour, "duration_hours": duration})
        return 200, result

    def rank(self, params: dict) -> tuple[int, dict]:
        day, hour, duration = self._window(params)
        k_raw = _one(params, "k")
        k = 10 if k_raw is None else _as_int("k", k_raw)
        ranked = self.state.rank(day, hour, duration, k=k)
        return 200, {
            "day": day,
            "hour": hour,
            "duration_hours": duration,
            "machines": [
                {"machine": m, "survival": s} for m, s in ranked
            ],
        }

    def stats(self) -> tuple[int, dict]:
        tiers = self.state.tier_stats()
        payload = {
            "n_machines": self.state.n_machines,
            "machine_lo": self.state.machine_lo,
            "machine_hi": self.state.machine_hi,
            "base_days": self.state.base_n_days,
            "horizon_day": self.state.horizon_day,
            "ready": self.state.ready,
            "history_days": self.state.history_days,
            "statistic": self.state.statistic,
            "laplace": self.state.laplace,
            "tier": {
                "hot_entries": tiers.hot_entries,
                "resident_bytes": tiers.resident_bytes,
                "hits": tiers.hits,
                "rebuilds": tiers.rebuilds,
                "evictions": tiers.evictions,
                "n_blocks": tiers.n_blocks,
                "block_machines": tiers.block_machines,
            },
            "ingest": {
                "streamed_events": tiers.streamed_events,
                "deduplicated_events": tiers.deduplicated_events,
                "overlay_cells": tiers.overlay_cells,
            },
            "requests": self.registry.counter_value("serve.requests"),
        }
        if self.worker_id is not None:
            payload["worker"] = self.worker_id
        if self.ingester is not None:
            q = self.ingester.stats()
            payload["ingest"]["queue"] = {
                "depth_events": q.depth_events,
                "depth_batches": q.depth_batches,
                "capacity_events": q.capacity_events,
                "enqueued_batches": q.enqueued_batches,
                "applied_batches": q.applied_batches,
                "backpressure_rejections": q.backpressure_rejections,
                "snapshots": q.snapshots,
                "snapshot_failures": q.snapshot_failures,
            }
        hist = self.registry.histogram("serve.request_seconds")
        if hist is not None and len(hist):
            payload["latency"] = hist.summary()
        status_counts = {
            band: self.registry.counter_value(f"serve.status.{band}")
            for band in ("2xx", "4xx", "5xx")
        }
        if any(status_counts.values()):
            payload["status"] = status_counts
        return 200, payload

    def _decode_events(self, body: bytes) -> list:
        if not body:
            raise _BadRequest("ingest body is empty")
        text = body.decode("utf-8", errors="replace").strip()
        if text.startswith("["):
            try:
                events = json.loads(text)
            except ValueError as exc:
                raise _BadRequest(f"invalid JSON body: {exc}")
            if not isinstance(events, list):
                raise _BadRequest("ingest JSON body must be an array")
            return events
        return self.state.parse_jsonl(text.splitlines())

    def ingest(self, body: bytes, params: Optional[dict] = None) -> tuple[int, dict]:
        events = self._decode_events(body)
        dry = _one(params or {}, "dry") in ("1", "true")
        # horizon must cover queued-but-unapplied events, so take the
        # batch's own projection where the async path has one.
        horizon = self.state.horizon_day
        if self.ingester is not None:
            batch = (
                self.ingester.validate_only(events)
                if dry
                else self.ingester.submit(events)
            )
            result = batch.result()
            horizon = max(horizon, batch.horizon_day)
        elif dry:
            batch = self.state.validate_events(events)
            result = batch.result()
            horizon = max(horizon, batch.horizon_day)
        else:
            result = self.state.ingest(events)
            horizon = self.state.horizon_day
        if not dry:
            self.registry.inc("serve.ingested_events", result.accepted)
            self.registry.inc("serve.ingest_batches")
        return 200, {
            "accepted": result.accepted,
            "deduplicated": result.deduplicated,
            "dry": dry,
            "horizon_day": horizon,
        }

    def flush(self) -> tuple[int, dict]:
        if self.ingester is not None:
            self.ingester.flush()
            applied = self.ingester.stats().applied_batches
        else:
            applied = self.registry.counter_value("serve.ingest_batches")
        return 200, {"flushed": True, "applied_batches": applied}


class _Handler(BaseHTTPRequestHandler):
    """The socket-facing shell around :class:`ServeApp`."""

    protocol_version = "HTTP/1.1"
    # One buffered write per response + no Nagle: without these, the
    # status line / headers / body go out as separate small segments and
    # Nagle + delayed-ACK adds ~40ms per keep-alive round trip, capping
    # a persistent client at ~25 QPS no matter how fast the handler is.
    wbufsize = -1
    disable_nagle_algorithm = True
    app: ServeApp  # set by start_server on the subclass

    def _respond(
        self, status: int, payload: dict, extra: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        status, payload, headers = self.app.handle_full(method, self.path, body)
        self._respond(status, payload, headers)
        if method == "POST" and self.path.split("?")[0].rstrip("/") == "/v1/shutdown":
            # shutdown() must run off the serve thread or it deadlocks.
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("POST")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # per-request lines go to the metrics registry, not stderr


class ServeHandle:
    """A running server: its address, app, and lifecycle."""

    def __init__(self, server: ThreadingHTTPServer, app: ServeApp, thread: threading.Thread):
        self.server = server
        self.app = app
        self.thread = thread

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until the serve loop exits (shutdown endpoint/close)."""
        self.thread.join(timeout)

    def close(self) -> None:
        self.server.shutdown()
        self.thread.join()
        self.server.server_close()
        if self.app.ingester is not None:
            self.app.ingester.close()

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def start_server(
    state: ServeState,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[MetricsRegistry] = None,
    ingester: Optional[AsyncIngester] = None,
    worker_id: Optional[int] = None,
) -> ServeHandle:
    """Start the daemon on a background thread; ``port=0`` picks a free one."""
    app = ServeApp(state, registry, ingester=ingester, worker_id=worker_id)
    handler = type("ServeHandler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="fgcs-serve", daemon=True
    )
    thread.start()
    return ServeHandle(server, app, thread)
