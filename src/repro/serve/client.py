"""A thin HTTP client for the availability-forecast daemon.

Keeps one persistent HTTP/1.1 connection per instance (reconnecting once
on a dropped keep-alive), so the bench and the load tests measure
request latency rather than TCP handshakes.  The ``repro-fgcs query``
CLI subcommand wraps this.
"""

from __future__ import annotations

import http.client
import json
from typing import Optional, Sequence, Union
from urllib.parse import urlencode, urlsplit

from ..errors import ServeError

__all__ = ["ServeClient", "ServeRequestError"]


class ServeRequestError(ServeError):
    """A non-2xx response from the serve daemon."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Talk to one daemon at ``url`` (e.g. ``http://127.0.0.1:8642``)."""

    def __init__(self, url: str, *, timeout: float = 10.0) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ServeError(f"only http:// URLs are supported, got {url!r}")
        if not split.hostname:
            raise ServeError(f"cannot parse server URL {url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing -------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request_raw(
        self, method: str, target: str, body: Optional[bytes] = None
    ) -> tuple[int, dict]:
        """One request; returns ``(status, decoded_json)`` without raising
        on error statuses (the error-path tests want the raw pair)."""
        headers = {}
        if body is not None:
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, target, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
            ):
                # A keep-alive the server already closed; retry once on a
                # fresh connection, then give up.
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(payload) if payload else {}
        except ValueError:
            decoded = {"error": payload.decode("utf-8", errors="replace")}
        return response.status, decoded

    def _request(
        self, method: str, target: str, body: Optional[bytes] = None
    ) -> dict:
        status, payload = self.request_raw(method, target, body)
        if not 200 <= status < 300:
            raise ServeRequestError(status, payload.get("error", "unknown error"))
        return payload

    @staticmethod
    def _target(path: str, params: dict) -> str:
        query = urlencode(
            {k: v for k, v in params.items() if v is not None}
        )
        return f"{path}?{query}" if query else path

    # -- API ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def availability(
        self,
        machine: int,
        duration: float,
        *,
        day: Optional[int] = None,
        hour: Optional[float] = None,
    ) -> dict:
        return self._request(
            "GET",
            self._target(
                "/v1/availability",
                {"machine": machine, "duration": duration, "day": day, "hour": hour},
            ),
        )

    def capacity(
        self,
        duration: float,
        *,
        threshold: Optional[float] = None,
        day: Optional[int] = None,
        hour: Optional[float] = None,
    ) -> dict:
        return self._request(
            "GET",
            self._target(
                "/v1/capacity",
                {
                    "duration": duration,
                    "threshold": threshold,
                    "day": day,
                    "hour": hour,
                },
            ),
        )

    def rank(
        self,
        duration: float,
        *,
        k: Optional[int] = None,
        day: Optional[int] = None,
        hour: Optional[float] = None,
    ) -> dict:
        return self._request(
            "GET",
            self._target(
                "/v1/rank",
                {"duration": duration, "k": k, "day": day, "hour": hour},
            ),
        )

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def ingest(self, events: Sequence[Union[dict, list]]) -> dict:
        body = json.dumps(list(events)).encode("utf-8")
        return self._request("POST", "/v1/ingest", body)

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")
