"""A thin HTTP client for the availability-forecast daemon.

Keeps one persistent HTTP/1.1 connection per instance, so the bench and
the load tests measure request latency rather than TCP handshakes.  The
``repro-fgcs query`` CLI subcommand wraps this.

Two retry layers make the client safe against the scale-out front's
transient states (see ``docs/serving.md``):

* **Connection-level** — a dropped keep-alive, ``ECONNRESET``, or
  ``ConnectionRefusedError`` (a worker or router mid-restart) retries on
  a fresh connection with exponential backoff, bounded by
  ``connect_retries``.  The first retry is immediate (the common
  server-closed-keep-alive case costs nothing extra); later ones back
  off ``backoff_base × 2ⁿ`` capped at ``backoff_max``.
* **Busy-level** — a 429 (ingest backpressure) or 503 (worker range
  down) response that carries ``retry_after`` is waited out and retried,
  bounded by ``busy_retries``; the server's hint is honored but clamped
  to ``backoff_max`` so a pathological hint cannot hang the caller.
  Responses *without* ``retry_after`` (e.g. 503 before any data is
  ingested) fail fast, unchanged.

``request_raw`` stays raw: it applies only connection-level retries and
returns error statuses without raising, which is what the error-path
tests (and the router's forwarding) want.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Optional, Sequence, Union
from urllib.parse import urlencode, urlsplit

from ..errors import ServeError

__all__ = ["ServeClient", "ServeRequestError"]


class ServeRequestError(ServeError):
    """A non-2xx response from the serve daemon."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServeClient:
    """Talk to one daemon at ``url`` (e.g. ``http://127.0.0.1:8642``)."""

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 10.0,
        connect_retries: int = 4,
        busy_retries: int = 5,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
    ) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ServeError(f"only http:// URLs are supported, got {url!r}")
        if not split.hostname:
            raise ServeError(f"cannot parse server URL {url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        self.connect_retries = max(0, connect_retries)
        self.busy_retries = max(0, busy_retries)
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing -------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request_raw(
        self, method: str, target: str, body: Optional[bytes] = None
    ) -> tuple[int, dict]:
        """One request; returns ``(status, decoded_json)`` without raising
        on error statuses (the error-path tests want the raw pair)."""
        headers = {}
        if body is not None:
            headers["Content-Type"] = "application/json"
        last_exc: Optional[BaseException] = None
        for attempt in range(self.connect_retries + 1):
            conn = self._connection()
            try:
                conn.request(method, target, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
            ) as exc:
                # A keep-alive the server already closed, a reset mid
                # flight, or a refused connect during a restart window:
                # retry on a fresh connection.  The first retry is free;
                # the rest back off so a restarting worker has time to
                # come back before we give up.
                self.close()
                last_exc = exc
                if attempt >= self.connect_retries:
                    raise
                if attempt:
                    delay = min(
                        self.backoff_base * (2 ** (attempt - 1)),
                        self.backoff_max,
                    )
                    time.sleep(delay)
        else:  # pragma: no cover - loop always breaks or raises
            raise last_exc  # type: ignore[misc]
        try:
            decoded = json.loads(payload) if payload else {}
        except ValueError:
            decoded = {"error": payload.decode("utf-8", errors="replace")}
        return response.status, decoded

    def _request(
        self, method: str, target: str, body: Optional[bytes] = None
    ) -> dict:
        for attempt in range(self.busy_retries + 1):
            status, payload = self.request_raw(method, target, body)
            if 200 <= status < 300:
                return payload
            retry_after = payload.get("retry_after")
            busy = status in (429, 503) and retry_after is not None
            if not busy or attempt >= self.busy_retries:
                raise ServeRequestError(
                    status,
                    payload.get("error", "unknown error"),
                    retry_after=retry_after if busy else None,
                )
            # Honor the server's hint, clamped so a bad hint can't hang us.
            time.sleep(min(max(float(retry_after), 0.0), self.backoff_max))
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _target(path: str, params: dict) -> str:
        query = urlencode(
            {k: v for k, v in params.items() if v is not None}
        )
        return f"{path}?{query}" if query else path

    # -- API ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def availability(
        self,
        machine: int,
        duration: float,
        *,
        day: Optional[int] = None,
        hour: Optional[float] = None,
    ) -> dict:
        return self._request(
            "GET",
            self._target(
                "/v1/availability",
                {"machine": machine, "duration": duration, "day": day, "hour": hour},
            ),
        )

    def capacity(
        self,
        duration: float,
        *,
        threshold: Optional[float] = None,
        day: Optional[int] = None,
        hour: Optional[float] = None,
    ) -> dict:
        return self._request(
            "GET",
            self._target(
                "/v1/capacity",
                {
                    "duration": duration,
                    "threshold": threshold,
                    "day": day,
                    "hour": hour,
                },
            ),
        )

    def rank(
        self,
        duration: float,
        *,
        k: Optional[int] = None,
        day: Optional[int] = None,
        hour: Optional[float] = None,
    ) -> dict:
        return self._request(
            "GET",
            self._target(
                "/v1/rank",
                {"duration": duration, "k": k, "day": day, "hour": hour},
            ),
        )

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def ingest(self, events: Sequence[Union[dict, list]]) -> dict:
        body = json.dumps(list(events)).encode("utf-8")
        return self._request("POST", "/v1/ingest", body)

    def flush(self) -> dict:
        return self._request("POST", "/v1/flush")

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")
