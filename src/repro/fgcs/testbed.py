"""The simulated iShare testbed driver (Section 5's data collection).

``run_testbed`` produces the three-month, 20-machine trace dataset and a
per-machine summary — the entry point every Section 5 analysis starts
from.  It delegates the heavy lifting to :mod:`repro.traces.generate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import ExecutionConfig, FgcsConfig
from ..core.states import AvailState
from ..traces.dataset import TraceDataset
from ..traces.generate import generate_dataset

__all__ = ["TestbedResult", "run_testbed"]


@dataclass(frozen=True)
class MachineSummary:
    """Per-machine unavailability totals (one column of Table 2)."""

    machine_id: int
    total: int
    cpu: int
    memory: int
    revocation: int
    reboots: int

    @property
    def failures(self) -> int:
        """URR events that were not reboots (hardware/software faults)."""
        return self.revocation - self.reboots


@dataclass(frozen=True)
class TestbedResult:
    """The generated dataset plus per-machine summaries."""

    #: Not a test class, despite the name (silences pytest collection).
    __test__ = False

    dataset: TraceDataset
    summaries: tuple[MachineSummary, ...]

    def count_range(self, attr: str) -> tuple[int, int]:
        """(min, max) of a summary field across machines — the ranges the
        paper reports in Table 2."""
        values = [getattr(s, attr) for s in self.summaries]
        return (min(values), max(values))

    def percentage_range(self, attr: str) -> tuple[float, float]:
        """(min, max) share of a cause in each machine's total."""
        shares = [
            getattr(s, attr) / s.total if s.total else 0.0 for s in self.summaries
        ]
        return (min(shares), max(shares))


def summarize_machines(dataset: TraceDataset) -> tuple[MachineSummary, ...]:
    """Per-machine Table 2 counts for an existing dataset.

    A single pass over the event list: the previous implementation filtered
    the full list once per machine and then scanned each machine's events
    four more times (O(machines x events)); one sweep accumulating per
    -machine counters produces identical summaries in O(events).
    """
    n = dataset.n_machines
    total = [0] * n
    cpu = [0] * n
    memory = [0] * n
    revocation = [0] * n
    reboots = [0] * n
    for e in dataset.events:
        mid = e.machine_id
        total[mid] += 1
        state = e.state
        if state is AvailState.S3:
            cpu[mid] += 1
        elif state is AvailState.S4:
            memory[mid] += 1
        else:
            revocation[mid] += 1
            if e.is_reboot:
                reboots[mid] += 1
    return tuple(
        MachineSummary(
            machine_id=mid,
            total=total[mid],
            cpu=cpu[mid],
            memory=memory[mid],
            revocation=revocation[mid],
            reboots=reboots[mid],
        )
        for mid in range(n)
    )


def run_testbed(
    config: Optional[FgcsConfig] = None,
    *,
    keep_hourly_load: bool = True,
    execution: Optional["ExecutionConfig"] = None,
) -> TestbedResult:
    """Run the whole simulated trace study.

    ``execution`` (default: ``config.execution``) selects the worker pool
    and dataset cache for generation; results are identical for any
    setting.

    Examples
    --------
    >>> import dataclasses
    >>> from repro.config import FgcsConfig, TestbedConfig
    >>> from repro.units import DAY
    >>> cfg = FgcsConfig(testbed=TestbedConfig(n_machines=2, duration=7 * DAY))
    >>> result = run_testbed(cfg)
    >>> len(result.summaries)
    2
    """
    config = config or FgcsConfig()
    dataset = generate_dataset(
        config, keep_hourly_load=keep_hourly_load, execution=execution
    )
    return TestbedResult(dataset=dataset, summaries=summarize_machines(dataset))
