"""The simulated iShare testbed driver (Section 5's data collection).

``run_testbed`` produces the three-month, 20-machine trace dataset and a
per-machine summary — the entry point every Section 5 analysis starts
from.  It delegates the heavy lifting to :mod:`repro.traces.generate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import FgcsConfig
from ..core.states import AvailState
from ..traces.dataset import TraceDataset
from ..traces.generate import generate_dataset

__all__ = ["TestbedResult", "run_testbed"]


@dataclass(frozen=True)
class MachineSummary:
    """Per-machine unavailability totals (one column of Table 2)."""

    machine_id: int
    total: int
    cpu: int
    memory: int
    revocation: int
    reboots: int

    @property
    def failures(self) -> int:
        """URR events that were not reboots (hardware/software faults)."""
        return self.revocation - self.reboots


@dataclass(frozen=True)
class TestbedResult:
    """The generated dataset plus per-machine summaries."""

    #: Not a test class, despite the name (silences pytest collection).
    __test__ = False

    dataset: TraceDataset
    summaries: tuple[MachineSummary, ...]

    def count_range(self, attr: str) -> tuple[int, int]:
        """(min, max) of a summary field across machines — the ranges the
        paper reports in Table 2."""
        values = [getattr(s, attr) for s in self.summaries]
        return (min(values), max(values))

    def percentage_range(self, attr: str) -> tuple[float, float]:
        """(min, max) share of a cause in each machine's total."""
        shares = [
            getattr(s, attr) / s.total if s.total else 0.0 for s in self.summaries
        ]
        return (min(shares), max(shares))


def summarize_machines(dataset: TraceDataset) -> tuple[MachineSummary, ...]:
    """Per-machine Table 2 counts for an existing dataset."""
    out = []
    for mid in range(dataset.n_machines):
        evs = dataset.events_for(mid)
        cpu = sum(1 for e in evs if e.state is AvailState.S3)
        mem = sum(1 for e in evs if e.state is AvailState.S4)
        urr = [e for e in evs if e.state is AvailState.S5]
        out.append(
            MachineSummary(
                machine_id=mid,
                total=len(evs),
                cpu=cpu,
                memory=mem,
                revocation=len(urr),
                reboots=sum(1 for e in urr if e.is_reboot),
            )
        )
    return tuple(out)


def run_testbed(
    config: Optional[FgcsConfig] = None,
    *,
    keep_hourly_load: bool = True,
) -> TestbedResult:
    """Run the whole simulated trace study.

    Examples
    --------
    >>> import dataclasses
    >>> from repro.config import FgcsConfig, TestbedConfig
    >>> from repro.units import DAY
    >>> cfg = FgcsConfig(testbed=TestbedConfig(n_machines=2, duration=7 * DAY))
    >>> result = run_testbed(cfg)
    >>> len(result.summaries)
    2
    """
    config = config or FgcsConfig()
    dataset = generate_dataset(config, keep_hourly_load=keep_hourly_load)
    return TestbedResult(dataset=dataset, summaries=summarize_machines(dataset))
