"""The resource monitor (Section 5).

On each published machine a monitor periodically measures the CPU and
memory usage of host processes with lightweight utilities (vmstat/prstat).
Here it samples a simulated :class:`~repro.oskernel.machine.Machine`: host
CPU usage over the last period from CPU-time deltas, free memory from the
resident-set total, liveness from a flag the testbed flips on revocation.

The monitor is *non-intrusive by construction*: it reads accounting state
only and never perturbs the scheduler.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import MonitorConfig
from ..core.model import DEFAULT_GUEST_WORKING_SET_MB
from ..core.samples import MonitorSample, SampleBatch
from ..errors import SimulationError
from ..oskernel.machine import CpuSnapshot, Machine

__all__ = ["ResourceMonitor"]


class ResourceMonitor:
    """Periodic sampler over a simulated machine.

    Drive it by calling :meth:`sample` every ``config.period`` seconds of
    machine time (the testbed's simulator does this via a periodic event).

    Examples
    --------
    >>> from repro.oskernel import Machine
    >>> from repro.workloads.synthetic import host_task
    >>> m = Machine()
    >>> m.spawn(host_task("h", 0.5))  # doctest: +ELLIPSIS
    <Task ...>
    >>> mon = ResourceMonitor(m)
    >>> m.run_for(10.0)
    >>> s = mon.sample()
    >>> 0.4 < s.host_load < 0.6
    True
    """

    def __init__(
        self,
        machine: Machine,
        config: Optional[MonitorConfig] = None,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.machine = machine
        self.config = config or MonitorConfig()
        self._rng = rng
        self._last: CpuSnapshot = machine.snapshot()
        self._samples: list[MonitorSample] = []
        #: Flipped by the testbed when the machine is revoked; the real
        #: monitor dies with the iShare service, which is exactly how URR
        #: becomes observable.
        self.service_up = True

    def sample(self) -> MonitorSample:
        """Take one reading (usage since the previous reading)."""
        snap = self.machine.snapshot()
        if snap.time <= self._last.time:
            raise SimulationError("monitor sampled twice at the same instant")
        host_load, _ = snap.usage_since(self._last)
        self._last = snap
        if self._rng is not None and self.config.noise_std > 0:
            host_load *= float(self._rng.normal(1.0, self.config.noise_std))
        host_load = min(max(host_load, 0.0), 1.0)
        free_mb = self.machine.memory.config.available_mb - self.machine.resident_mb()
        s = MonitorSample(
            time=snap.time,
            host_load=host_load,
            free_mb=free_mb,
            machine_up=self.service_up,
        )
        self._samples.append(s)
        return s

    def guest_fits(self, working_set_mb: float = DEFAULT_GUEST_WORKING_SET_MB) -> bool:
        """Would a guest with this working set fit in memory right now?"""
        return self.machine.memory.fits(
            self.machine.scheduler.tasks, working_set_mb
        )

    @property
    def samples(self) -> list[MonitorSample]:
        """All samples taken so far."""
        return list(self._samples)

    def batch(self) -> SampleBatch:
        """The samples as a columnar batch."""
        return SampleBatch.from_samples(self._samples)
