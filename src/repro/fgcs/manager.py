"""The guest manager: the paper's runtime policy, enforced per sample.

From Section 3.2: "The priority of a running guest process is minimized
(using renice) whenever it causes noticeable slowdown on the host
processes.  If this does not alleviate the resource contention, the
reniced guest process is suspended.  The guest process resumes if the
contention diminishes after a certain duration (1 minute in our
experiments), otherwise it is terminated."  Memory pressure terminates the
guest immediately (Section 4, S4); revocation loses it outright (S5).
"""

from __future__ import annotations

import enum
from typing import Optional

from ..core.model import MultiStateModel
from ..core.samples import MonitorSample
from ..core.states import AvailState
from ..errors import SimulationError
from ..oskernel.machine import Machine
from .guest_job import GuestJob, GuestJobState

__all__ = ["GuestManager", "ManagerAction"]


class ManagerAction(enum.Enum):
    """What the manager did in response to one monitor sample."""

    NONE = "none"
    RENICE_LOW = "renice_low"
    RENICE_DEFAULT = "renice_default"
    SUSPEND = "suspend"
    RESUME = "resume"
    TERMINATE_CPU = "terminate_cpu"
    TERMINATE_MEMORY = "terminate_memory"
    COMPLETED = "completed"


class GuestManager:
    """Applies the FGCS policy to at most one guest job on a machine.

    The paper's systems allow "no more than one guest process ... to run
    concurrently on the same machine"; the manager enforces that too.
    """

    def __init__(
        self,
        machine: Machine,
        model: Optional[MultiStateModel] = None,
    ) -> None:
        self.machine = machine
        self.model = model or MultiStateModel()
        self.job: Optional[GuestJob] = None
        self.history: list[tuple[float, ManagerAction]] = []

    # -- job control ---------------------------------------------------------

    def attach(self, job: GuestJob) -> None:
        """Start managing a guest job (it must already be spawned)."""
        if self.job is not None and self.job.state.alive:
            raise SimulationError("a guest job is already running on this machine")
        self.job = job

    def revoke(self, now: float) -> None:
        """Machine revoked: the guest is lost with no recoverable state."""
        if self.job is not None and self.job.state.alive:
            self.machine.kill(self.job.task)
            self.job.mark_finished(GuestJobState.KILLED_REVOKED, now)
            self._log(now, ManagerAction.NONE)

    # -- the per-sample policy ---------------------------------------------------

    def on_sample(self, sample: MonitorSample) -> ManagerAction:
        """React to one monitor reading; returns the action taken."""
        job = self.job
        if job is None or not job.state.alive:
            return self._log(sample.time, ManagerAction.NONE)

        # Completion is observed through the task exiting on its own.
        if not job.task.alive:
            job.mark_finished(GuestJobState.COMPLETED, sample.time)
            return self._log(sample.time, ManagerAction.COMPLETED)

        state = self.model.classify(sample)
        now = sample.time

        if state is AvailState.S5:
            self.revoke(now)
            return self._log(now, ManagerAction.NONE)

        if state is AvailState.S4:
            self.machine.kill(job.task)
            job.mark_finished(GuestJobState.KILLED_MEMORY, now)
            return self._log(now, ManagerAction.TERMINATE_MEMORY)

        if state is AvailState.S3:
            if job.state is GuestJobState.SUSPENDED:
                assert job.suspended_since is not None
                if now - job.suspended_since > self.model.thresholds.suspension_grace:
                    self.machine.kill(job.task)
                    job.mark_finished(GuestJobState.KILLED_CPU, now)
                    return self._log(now, ManagerAction.TERMINATE_CPU)
                return self._log(now, ManagerAction.NONE)
            # First reaction to overload: minimize priority, then suspend.
            if job.state is GuestJobState.RUNNING:
                self.machine.renice(job.task, 19)
            self.machine.suspend(job.task)
            job.state = GuestJobState.SUSPENDED
            job.suspended_since = now
            job.suspension_count += 1
            return self._log(now, ManagerAction.SUSPEND)

        if state is AvailState.S2:
            if job.state is GuestJobState.SUSPENDED:
                self._resume(job, now, nice=19)
                return self._log(now, ManagerAction.RESUME)
            if job.state is GuestJobState.RUNNING:
                self.machine.renice(job.task, 19)
                job.state = GuestJobState.RUNNING_LOW
                return self._log(now, ManagerAction.RENICE_LOW)
            return self._log(now, ManagerAction.NONE)

        # S1: full availability.
        if job.state is GuestJobState.SUSPENDED:
            self._resume(job, now, nice=0)
            return self._log(now, ManagerAction.RESUME)
        if job.state is GuestJobState.RUNNING_LOW:
            self.machine.renice(job.task, 0)
            job.state = GuestJobState.RUNNING
            return self._log(now, ManagerAction.RENICE_DEFAULT)
        return self._log(now, ManagerAction.NONE)

    # -- helpers --------------------------------------------------------------

    def _resume(self, job: GuestJob, now: float, *, nice: int) -> None:
        self.machine.renice(job.task, nice)
        self.machine.resume(job.task)
        assert job.suspended_since is not None
        job.suspended_total += now - job.suspended_since
        job.suspended_since = None
        job.state = (
            GuestJobState.RUNNING if nice == 0 else GuestJobState.RUNNING_LOW
        )

    def _log(self, now: float, action: ManagerAction) -> ManagerAction:
        if action is not ManagerAction.NONE:
            self.history.append((now, action))
        return action
