"""A minimal iShare-style sharing system (resource publication, guest-job
submission, revocation).

The paper's iShare uses a P2P network for publication and discovery; for
the availability study its only roles are (a) starting the resource
monitor with the shared machine, (b) accepting guest jobs, and (c) making
revocation observable through service termination.  This module provides
exactly that as an in-process registry of nodes, each wrapping a simulated
machine with a monitor and a guest manager.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

import numpy as np

from ..config import FgcsConfig
from ..core.detector import UnavailabilityDetector
from ..core.events import UnavailabilityEvent
from ..core.model import MultiStateModel
from ..errors import SimulationError
from ..oskernel.machine import Machine
from ..oskernel.tasks import Task
from ..simkernel import Simulator
from .guest_job import GuestJob
from .manager import GuestManager
from .monitor import ResourceMonitor

__all__ = ["IShareNode", "IShareRegistry"]


class IShareNode:
    """One published machine: monitor + guest manager + detection.

    Driven by a shared :class:`~repro.simkernel.Simulator`: the node
    schedules its own periodic monitor ticks, advances its machine lazily
    to the simulator clock, feeds the manager and an (optional) detector.
    """

    _ids = itertools.count()

    def __init__(
        self,
        sim: Simulator,
        config: Optional[FgcsConfig] = None,
        *,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
        detect: bool = True,
    ) -> None:
        self.node_id = next(self._ids)
        self.name = name or f"node{self.node_id}"
        self.sim = sim
        self.config = config or FgcsConfig()
        from ..config import MemoryConfig

        self.machine = Machine(
            self.config.scheduler,
            MemoryConfig(
                physical_mb=self.config.testbed.machine_memory_mb,
                kernel_mb=self.config.testbed.machine_kernel_mb,
            ),
            name=self.name,
        )
        self.model = MultiStateModel(thresholds=self.config.thresholds)
        self.monitor = ResourceMonitor(self.machine, self.config.monitor, rng=rng)
        self.manager = GuestManager(self.machine, self.model)
        self.detector = (
            UnavailabilityDetector(self.node_id, self.model) if detect else None
        )
        self.events: list[UnavailabilityEvent] = []
        self.published = False
        self._cancel_monitor: Optional[Callable[[], None]] = None

    # -- publication ------------------------------------------------------------

    def publish(self) -> None:
        """Start sharing: the monitor begins sampling with the service."""
        if self.published:
            raise SimulationError(f"{self.name} already published")
        self.published = True
        self.monitor.service_up = True
        self._cancel_monitor = self.sim.every(
            self.config.monitor.period, self._tick, name=f"{self.name}.monitor"
        )

    def revoke(self) -> None:
        """The owner withdraws the machine: service and guest die."""
        if not self.published:
            return
        self.published = False
        self.monitor.service_up = False
        if self._cancel_monitor is not None:
            self._cancel_monitor()
            self._cancel_monitor = None
        self._sync()
        self.manager.revoke(self.sim.now)

    # -- job submission ------------------------------------------------------------

    def submit(self, task: Task, *, job_id: Optional[str] = None) -> GuestJob:
        """Submit a guest job to this node (at most one runs at a time)."""
        if not self.published:
            raise SimulationError(f"{self.name} is not published")
        self._sync()
        job = GuestJob(
            job_id=job_id or f"{self.name}.job{len(self.manager.history)}",
            task=task,
            submit_time=self.sim.now,
        )
        self.machine.spawn(task)
        self.manager.attach(job)
        return job

    # -- host-side workload ----------------------------------------------------------

    def spawn_host(self, task: Task) -> Task:
        """Run a host (owner) process on the node's machine."""
        self._sync()
        return self.machine.spawn(task)

    # -- internals ------------------------------------------------------------------------

    def _sync(self) -> None:
        """Advance the machine to the simulator clock."""
        if self.sim.now > self.machine.now:
            self.machine.run_until(self.sim.now)

    def _tick(self, now: float) -> None:
        self._sync()
        sample = self.monitor.sample()
        self.manager.on_sample(sample)
        if self.detector is not None:
            self.events.extend(self.detector.feed(sample))

    def finish(self) -> None:
        """Flush the detector at the end of a run."""
        self._sync()
        if self.detector is not None:
            self.events.extend(self.detector.finalize(self.sim.now))
            self.detector = None


class IShareRegistry:
    """Publication and discovery: the P2P layer reduced to its API.

    Real iShare resolves resources over a structured P2P network; the
    registry preserves the interface (publish / unpublish / discover)
    against an in-process table, which is all the availability study needs.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, IShareNode] = {}

    def publish(self, node: IShareNode) -> None:
        """Add a node to the registry and start its service."""
        if node.name in self._nodes:
            raise SimulationError(f"node name {node.name!r} already published")
        self._nodes[node.name] = node
        node.publish()

    def unpublish(self, name: str) -> None:
        """Revoke a node (owner leaves)."""
        node = self._nodes.pop(name, None)
        if node is None:
            raise SimulationError(f"unknown node {name!r}")
        node.revoke()

    def discover(self) -> list[IShareNode]:
        """All currently published nodes."""
        return [n for n in self._nodes.values() if n.published]

    def get(self, name: str) -> IShareNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None
