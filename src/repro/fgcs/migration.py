"""Guest-job migration across iShare nodes (fine-simulation path).

The paper's failure semantics: when a machine enters S3/S4/S5, "the guest
process is already killed or migrated off and no state is left on the
host."  This module implements the *migrated off* branch: a supervisor
watches a guest job, and when its node kills it, resubmits the remainder
on another published node — optionally from a periodic checkpoint, so only
the work since the last checkpoint is lost.

This is the quantum-resolution counterpart of the trace-replay executor in
:mod:`repro.scheduling`: everything here runs on simulated machines with
the real guest-manager policy in the loop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError
from ..fgcs.guest_job import GuestJob, GuestJobState
from ..fgcs.ishare import IShareNode
from ..simkernel import Simulator
from ..workloads.synthetic import guest_task

__all__ = ["MigratingJob", "MigrationController"]

#: Picks the next node for a (re)submission; gets the live candidates.
NodePolicy = Callable[[list[IShareNode]], IShareNode]


def least_loaded_policy(candidates: list[IShareNode]) -> IShareNode:
    """Default policy: the published node with the lowest last-sample
    host load (what a live system can observe)."""
    def last_load(node: IShareNode) -> float:
        samples = node.monitor.samples
        return samples[-1].host_load if samples else 0.0

    return min(candidates, key=last_load)


@dataclass
class MigratingJob:
    """One logical guest job that may hop between nodes."""

    job_id: str
    total_cpu: float
    submit_time: float
    #: CPU seconds durably completed (checkpointed or carried over).
    completed_cpu: float = 0.0
    migrations: int = 0
    lost_cpu: float = 0.0
    finish_time: Optional[float] = None
    failed_permanently: bool = False
    #: Node names visited, in order.
    placements: list[str] = field(default_factory=list)
    _current: Optional[GuestJob] = None
    _current_node: Optional[IShareNode] = None

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def response_time(self) -> float:
        if self.finish_time is None:
            return float("inf")
        return self.finish_time - self.submit_time


class MigrationController:
    """Supervises guest jobs over a set of iShare nodes.

    Parameters
    ----------
    sim:
        The shared simulator driving the nodes.
    nodes:
        Candidate nodes (must be published before jobs are submitted).
    policy:
        Node-selection policy (default: least observed host load).
    checkpoint_period:
        CPU-seconds between checkpoints; ``None`` disables checkpointing
        (a migrated job restarts from zero, the paper's base semantics).
    supervision_period:
        How often the controller inspects its jobs, seconds.
    """

    _ids = itertools.count()

    def __init__(
        self,
        sim: Simulator,
        nodes: list[IShareNode],
        *,
        policy: NodePolicy = least_loaded_policy,
        checkpoint_period: Optional[float] = None,
        supervision_period: float = 10.0,
    ) -> None:
        if not nodes:
            raise SimulationError("MigrationController needs nodes")
        if checkpoint_period is not None and checkpoint_period <= 0:
            raise SimulationError("checkpoint_period must be positive")
        self.sim = sim
        self.nodes = nodes
        self.policy = policy
        self.checkpoint_period = checkpoint_period
        self.jobs: list[MigratingJob] = []
        sim.every(
            supervision_period, self._supervise, name="migration-controller"
        )

    # -- submission ----------------------------------------------------------

    def submit(self, total_cpu: float, *, job_id: Optional[str] = None) -> MigratingJob:
        """Submit a logical job; it is placed on the next supervision tick
        or immediately if a node is free."""
        if total_cpu <= 0:
            raise SimulationError("total_cpu must be positive")
        job = MigratingJob(
            job_id=job_id or f"mig{next(self._ids)}",
            total_cpu=total_cpu,
            submit_time=self.sim.now,
        )
        self.jobs.append(job)
        self._try_place(job)
        return job

    # -- internals -------------------------------------------------------------

    def _free_nodes(self) -> list[IShareNode]:
        out = []
        for node in self.nodes:
            if not node.published:
                continue
            current = node.manager.job
            if current is None or not current.state.alive:
                out.append(node)
        return out

    def _try_place(self, job: MigratingJob) -> bool:
        candidates = self._free_nodes()
        if not candidates:
            return False
        node = self.policy(candidates)
        remaining = job.total_cpu - job.completed_cpu
        task = guest_task(
            f"{job.job_id}.run{job.migrations}", total_cpu=remaining
        )
        guest = node.submit(task, job_id=f"{job.job_id}@{node.name}")
        job._current = guest
        job._current_node = node
        job.placements.append(node.name)
        return True

    def _checkpointed(self, progressed: float) -> float:
        """Durable progress given raw progress since the last placement."""
        if self.checkpoint_period is None:
            return 0.0
        return (progressed // self.checkpoint_period) * self.checkpoint_period

    def _supervise(self, now: float) -> None:
        for job in self.jobs:
            if job.done or job.failed_permanently:
                continue
            guest = job._current
            if guest is None:
                self._try_place(job)
                continue
            if guest.state is GuestJobState.COMPLETED:
                job.completed_cpu = job.total_cpu
                job.finish_time = (
                    guest.finish_time if guest.finish_time is not None else now
                )
                job._current = None
            elif guest.state.failed:
                progressed = guest.cpu_time
                durable = self._checkpointed(progressed)
                job.completed_cpu += durable
                job.lost_cpu += progressed - durable
                job.migrations += 1
                job._current = None
                self._try_place(job)
            # else: still running/suspended; leave it alone.

    # -- reporting --------------------------------------------------------------

    def summary(self) -> dict[str, float]:
        """Aggregate metrics over all submitted jobs."""
        done = [j for j in self.jobs if j.done]
        return {
            "jobs": float(len(self.jobs)),
            "completed": float(len(done)),
            "migrations": float(sum(j.migrations for j in self.jobs)),
            "lost_cpu": float(sum(j.lost_cpu for j in self.jobs)),
            "mean_response": (
                sum(j.response_time for j in done) / len(done)
                if done
                else float("inf")
            ),
        }
