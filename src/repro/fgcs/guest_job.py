"""Guest-job lifecycle records."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import SimulationError
from ..oskernel.tasks import Task

__all__ = ["GuestJob", "GuestJobState"]


class GuestJobState(enum.Enum):
    """Lifecycle of a guest job on one host machine."""

    #: Running at default priority (machine in S1).
    RUNNING = "running"
    #: Running reniced to the lowest priority (machine in S2).
    RUNNING_LOW = "running_low"
    #: SIGSTOPped during a transient Th2 excursion.
    SUSPENDED = "suspended"
    #: Finished its work.
    COMPLETED = "completed"
    #: Killed: sustained CPU contention (S3).
    KILLED_CPU = "killed_cpu"
    #: Killed: memory thrashing imminent (S4).
    KILLED_MEMORY = "killed_memory"
    #: Lost: machine revoked (S5).
    KILLED_REVOKED = "killed_revoked"

    @property
    def alive(self) -> bool:
        return self in (
            GuestJobState.RUNNING,
            GuestJobState.RUNNING_LOW,
            GuestJobState.SUSPENDED,
        )

    @property
    def failed(self) -> bool:
        return self in (
            GuestJobState.KILLED_CPU,
            GuestJobState.KILLED_MEMORY,
            GuestJobState.KILLED_REVOKED,
        )


@dataclass
class GuestJob:
    """A guest job bound to a task on a host machine."""

    job_id: str
    task: Task
    submit_time: float
    state: GuestJobState = GuestJobState.RUNNING
    #: When the current suspension began (while SUSPENDED).
    suspended_since: Optional[float] = None
    #: Cumulative seconds spent suspended.
    suspended_total: float = 0.0
    #: Number of times the job was suspended.
    suspension_count: int = 0
    finish_time: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.task.is_guest:
            raise SimulationError(f"task {self.task.name!r} is not a guest task")

    @property
    def cpu_time(self) -> float:
        """CPU seconds the guest has consumed so far."""
        return self.task.cpu_time

    def mark_finished(self, state: GuestJobState, now: float) -> None:
        """Transition to a terminal state."""
        if not self.state.alive:
            raise SimulationError(f"job {self.job_id} already terminal: {self.state}")
        if self.state is GuestJobState.SUSPENDED and self.suspended_since is not None:
            self.suspended_total += now - self.suspended_since
            self.suspended_since = None
        self.state = state
        self.finish_time = now
