"""The FGCS runtime: resource monitor, guest-job management, the
iShare-style sharing system, and the multi-machine testbed driver.

* :mod:`~repro.fgcs.monitor` — periodic, non-intrusive sampling of a
  simulated machine (the vmstat/prstat monitor of Section 5);
* :mod:`~repro.fgcs.guest_job` — guest-job lifecycle records;
* :mod:`~repro.fgcs.manager` — the guest manager enforcing the paper's
  policy: renice at Th1, suspend at Th2, resume or terminate after the
  1-minute grace, kill on memory pressure;
* :mod:`~repro.fgcs.ishare` — a minimal iShare node/registry (publication,
  job submission, revocation) sufficient to host the trace study;
* :mod:`~repro.fgcs.testbed` — generates the 20-machine, three-month trace
  dataset end-to-end.
"""

from .guest_job import GuestJob, GuestJobState
from .manager import GuestManager, ManagerAction
from .migration import MigratingJob, MigrationController
from .monitor import ResourceMonitor
from .testbed import TestbedResult, run_testbed

__all__ = [
    "GuestJob",
    "GuestJobState",
    "GuestManager",
    "ManagerAction",
    "MigratingJob",
    "MigrationController",
    "ResourceMonitor",
    "TestbedResult",
    "run_testbed",
]
