"""repro — reproduction of Ren & Eigenmann, "Empirical Studies on the
Behavior of Resource Availability in Fine-Grained Cycle Sharing Systems"
(ICPP 2006).

Quick tour
----------
>>> from repro import FgcsConfig, generate_dataset, cause_breakdown
>>> # (a small testbed for the doctest; the paper's is 20 machines x 92 days)
>>> import dataclasses
>>> from repro.config import TestbedConfig
>>> from repro.units import DAY
>>> cfg = FgcsConfig(testbed=TestbedConfig(n_machines=2, duration=3 * DAY))
>>> ds = generate_dataset(cfg)
>>> breakdown = cause_breakdown(ds)
>>> breakdown.totals.shape
(2,)

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from ._version import __version__
from .analysis import (
    cause_breakdown,
    check_paper_landmarks,
    daily_pattern,
    interval_distribution,
)
from .config import (
    DEFAULT_CONFIG,
    FgcsConfig,
    LabWorkloadConfig,
    MemoryConfig,
    MonitorConfig,
    SchedulerConfig,
    TestbedConfig,
    ThresholdConfig,
)
from .contention import calibrate_thresholds, measure_contention
from .core import (
    AvailState,
    AvailabilityInterval,
    BatchDetector,
    MonitorSample,
    MultiStateModel,
    SampleBatch,
    UnavailabilityDetector,
    UnavailabilityEvent,
    availability_intervals,
    detect_events,
)
from .fgcs import run_testbed
from .prediction import HistoryWindowPredictor, evaluate_predictors
from .scheduling import run_scheduling_experiment
from .traces import TraceDataset, generate_dataset, load_dataset, save_dataset

__all__ = [
    "AvailState",
    "AvailabilityInterval",
    "BatchDetector",
    "DEFAULT_CONFIG",
    "FgcsConfig",
    "HistoryWindowPredictor",
    "LabWorkloadConfig",
    "MemoryConfig",
    "MonitorConfig",
    "MonitorSample",
    "MultiStateModel",
    "SampleBatch",
    "SchedulerConfig",
    "TestbedConfig",
    "ThresholdConfig",
    "TraceDataset",
    "UnavailabilityDetector",
    "UnavailabilityEvent",
    "__version__",
    "availability_intervals",
    "calibrate_thresholds",
    "cause_breakdown",
    "check_paper_landmarks",
    "daily_pattern",
    "detect_events",
    "evaluate_predictors",
    "generate_dataset",
    "interval_distribution",
    "load_dataset",
    "measure_contention",
    "run_scheduling_experiment",
    "run_testbed",
    "save_dataset",
]
