"""Deterministic random-stream management.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` obtained through :class:`RngFactory`, which
spawns independent child streams from a single root :class:`~numpy.random.SeedSequence`.
Two runs with the same root seed therefore produce bit-identical results,
and components never share a stream (so adding a new component does not
perturb the draws of existing ones).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["CountingRng", "RngFactory", "generator_from"]


def _hash_key(key: str) -> int:
    """Stable 64-bit hash of a string key (Python's ``hash`` is salted)."""
    h = 14695981039346656037  # FNV-1a offset basis
    for byte in key.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h


class RngFactory:
    """Spawns named, independent random generators from one root seed.

    Examples
    --------
    >>> f = RngFactory(seed=42)
    >>> g1 = f.generator("machine", 0)
    >>> g2 = f.generator("machine", 1)
    >>> g1 is not g2
    True

    Asking twice for the same key returns a generator with the same stream
    (but a fresh state), which keeps component draws reproducible regardless
    of creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was constructed with."""
        return self._seed

    def generator(self, *key: object) -> np.random.Generator:
        """A fresh :class:`numpy.random.Generator` for the given key tuple.

        The key may mix strings and integers; e.g.
        ``factory.generator("labuser", machine_id, day)``.
        """
        entropy: list[int] = [self._seed]
        for part in key:
            if isinstance(part, str):
                entropy.append(_hash_key(part))
            elif isinstance(part, (int, np.integer)):
                entropy.append(int(part) & 0xFFFFFFFFFFFFFFFF)
            else:
                raise TypeError(f"rng key parts must be str or int, got {part!r}")
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def child(self, *key: object) -> "RngFactory":
        """A derived factory whose streams are independent of this one's."""
        entropy = [self._seed] + [
            _hash_key(p) if isinstance(p, str) else int(p) for p in key
        ]
        mixed = np.random.SeedSequence(entropy).generate_state(1)[0]
        return RngFactory(int(mixed))


class CountingRng:
    """A transparent proxy around a generator that counts variates drawn.

    Forwards every attribute to the wrapped :class:`numpy.random.Generator`
    unchanged — the stream of values is bit-identical with or without the
    proxy — and tallies how many variates each call produced (an array
    draw counts its size, a scalar draw counts one).  The trace pipeline
    wraps its per-machine streams with this when telemetry is enabled and
    reports the totals as ``rng.draws.<stream>`` counters.
    """

    __slots__ = ("_rng", "draws")

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self.draws = 0

    def __getattr__(self, name: str):
        attr = getattr(self._rng, name)
        if not callable(attr):
            return attr

        def counted(*args, **kwargs):
            out = attr(*args, **kwargs)
            size = getattr(out, "size", None)
            self.draws += int(size) if size is not None else 1
            return out

        return counted


def generator_from(
    seed_or_rng: int | np.random.Generator | None,
) -> np.random.Generator:
    """Coerce an int seed, an existing generator, or ``None`` to a generator."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_streams(seed: int, n: int) -> list[np.random.Generator]:
    """``n`` independent generators derived from ``seed`` (for worker pools)."""
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def interleave_choice(
    rng: np.random.Generator, options: Iterable[object], weights: Iterable[float]
) -> object:
    """Weighted choice over arbitrary Python objects.

    ``numpy.random.Generator.choice`` coerces object arrays awkwardly; this
    helper keeps the options untouched.
    """
    opts = list(options)
    w = np.asarray(list(weights), dtype=float)
    if len(opts) != w.size:
        raise ValueError("options and weights must have equal length")
    if not np.all(w >= 0) or w.sum() <= 0:
        raise ValueError("weights must be non-negative and sum to > 0")
    idx = rng.choice(len(opts), p=w / w.sum())
    return opts[idx]
