"""Declarative scenario registry + fleet-composition DSL.

Scenarios lift the hand-built experiment configs into data: a YAML/JSON
document describes a heterogeneous fleet (weighted machine classes over
the workload profiles), a regime-change schedule, correlated-outage
groups, and flash crowds — and compiles against a ``machines × days ×
seed`` frame into exactly the config/cache/shard machinery hand-built
configs use.  See ``docs/scenarios.md`` for the document schema and an
authoring walkthrough.

>>> from repro.scenarios import get_scenario, compile_scenario
>>> from repro.scenarios import generate_scenario_columns
>>> spec = get_scenario("student-lab-baseline")
>>> compiled = compile_scenario(spec, machines=4, days=7, seed=42)
>>> columns = generate_scenario_columns(compiled)
"""

from .compile import CompiledScenario, OverlayWindow, Segment, compile_scenario
from .diff import ScenarioAnalysis, diff_report
from .generate import (
    generate_scenario_columns,
    generate_scenario_shards,
    merge_overlay_rows,
    scenario_dataset_cache_key,
    scenario_metadata,
    scenario_shard_cache_key,
)
from .loader import (
    dump_scenario,
    load_scenario,
    load_scenario_file,
    parse_scenario,
)
from .registry import LIBRARY_DIR, get_scenario, scenario_names, scenario_path
from .spec import (
    SCENARIO_SCHEMA_VERSION,
    FlashCrowdSpec,
    MachineClassSpec,
    OutageSpec,
    RegimeSpec,
    ScenarioSpec,
)

__all__ = [
    "LIBRARY_DIR",
    "SCENARIO_SCHEMA_VERSION",
    "CompiledScenario",
    "FlashCrowdSpec",
    "MachineClassSpec",
    "OutageSpec",
    "OverlayWindow",
    "RegimeSpec",
    "ScenarioAnalysis",
    "ScenarioSpec",
    "Segment",
    "compile_scenario",
    "diff_report",
    "dump_scenario",
    "generate_scenario_columns",
    "generate_scenario_shards",
    "get_scenario",
    "load_scenario",
    "load_scenario_file",
    "merge_overlay_rows",
    "parse_scenario",
    "scenario_dataset_cache_key",
    "scenario_metadata",
    "scenario_names",
    "scenario_path",
    "scenario_shard_cache_key",
]
