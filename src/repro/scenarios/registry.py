"""The scenario registry: named scenario documents shipped as data files.

Scenarios live under ``src/repro/scenarios/library/*.yaml`` — one document
per file, the document's ``name`` equal to the file stem.  Adding a
scenario means adding a data file; no Python changes are required (the
registry globs the directory at call time).  Explicit paths are also
accepted everywhere a name is, so ad-hoc scenario files can be used
without installing them into the library.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..errors import ScenarioError
from .loader import load_scenario_file
from .spec import ScenarioSpec

__all__ = [
    "LIBRARY_DIR",
    "get_scenario",
    "scenario_names",
    "scenario_path",
]

#: Directory holding the shipped scenario documents.
LIBRARY_DIR = Path(__file__).resolve().parent / "library"


def scenario_names() -> tuple[str, ...]:
    """Sorted names of every scenario shipped in the library."""
    return tuple(sorted(p.stem for p in LIBRARY_DIR.glob("*.yaml")))


def scenario_path(name: str) -> Path:
    """Path of a library scenario document, by name."""
    path = LIBRARY_DIR / f"{name}.yaml"
    if not path.is_file():
        known = ", ".join(scenario_names()) or "<library empty>"
        raise ScenarioError(
            "", f"unknown scenario {name!r} (library has: {known})"
        )
    return path


def get_scenario(name_or_path: Union[str, Path]) -> ScenarioSpec:
    """Load a scenario by library name or explicit file path.

    Library documents must agree with their file name: a ``library/x.yaml``
    whose document says ``name: y`` is rejected, so ``scenario list`` names
    are always the names ``generate --scenario`` accepts.
    """
    text = str(name_or_path)
    looks_like_path = any(sep in text for sep in ("/", "\\")) or text.endswith(
        (".yaml", ".yml", ".json")
    )
    if looks_like_path:
        return load_scenario_file(Path(name_or_path))
    path = scenario_path(text)
    spec = load_scenario_file(path)
    if spec.name != text:
        raise ScenarioError(
            "name",
            f"library file {path.name} declares name {spec.name!r}; "
            f"it must match the file stem {text!r}",
        )
    return spec
