"""The scenario document model: frozen dataclasses mirroring the DSL.

A *scenario* is a declarative description of a fleet experiment — what
the hand-built benchmark scripts hard-coded, lifted into data.  The
document (YAML or JSON, see :mod:`repro.scenarios.loader`) describes:

* a **fleet composition**: one or more machine *classes*, each based on a
  workload profile (:data:`repro.workloads.profiles.PROFILES`) with
  per-class :class:`~repro.config.LabWorkloadConfig` /
  per-machine-memory overrides and a relative *weight* that apportions
  the fleet;
* **regime changes**: dated switches of the whole fleet's workload
  parameters (semester break, exam crunch) — the paper's single diurnal
  regime generalized to a schedule;
* **correlated outage groups**: building-wide power/network windows that
  take a machine group down *together*, deliberately breaking the
  paper's host-independence assumption;
* **flash crowds**: short fleet-wide interactive bursts hitting a
  random-but-deterministic fraction of machines.

Everything here is data: specs are frozen, picklable, and fingerprint
through :func:`repro.parallel.cache.config_fingerprint` exactly like the
hand-built config tree, so scenario-generated datasets cache, shard, and
fault-inject like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..errors import ScenarioError

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "FlashCrowdSpec",
    "MachineClassSpec",
    "OutageSpec",
    "RegimeSpec",
    "ScenarioSpec",
]

#: Version of the scenario *document* layout.  Bump when keys change
#: incompatibly; loaders reject documents with other versions.
SCENARIO_SCHEMA_VERSION = 1

#: ``testbed:`` override keys a class may set (per-machine hardware only —
#: fleet size and duration are resolved at compile time, and thresholds /
#: monitor settings must stay fleet-wide so dataset metadata is well
#: defined).
CLASS_TESTBED_FIELDS = ("machine_memory_mb", "machine_kernel_mb")


@dataclass(frozen=True)
class MachineClassSpec:
    """One machine class of a heterogeneous fleet."""

    name: str
    #: Base workload profile (a :data:`repro.workloads.profiles.PROFILES`
    #: key).
    profile: str = "student-lab"
    #: Relative share of the fleet this class receives (largest-remainder
    #: apportionment; every class keeps at least one machine).
    weight: float = 1.0
    #: :class:`~repro.config.LabWorkloadConfig` field overrides.
    lab: dict = field(default_factory=dict)
    #: Per-machine hardware overrides (:data:`CLASS_TESTBED_FIELDS` only).
    testbed: dict = field(default_factory=dict)


@dataclass(frozen=True)
class RegimeSpec:
    """A dated workload-regime switch for the whole fleet.

    From ``start_day`` (inclusive) until the next regime (or the end of
    the trace), every class's lab-workload config gains these overrides
    on top of its own.  Days before the first regime run the classes'
    base configs.
    """

    start_day: int
    name: str = ""
    lab: dict = field(default_factory=dict)


@dataclass(frozen=True)
class OutageSpec:
    """A correlated outage group: machines that go down *together*.

    Every occurrence inserts a revocation (S5) unavailability window for
    each selected machine at exactly the same wall-clock time — a
    building power/network event.  ``machines`` selects the group:
    ``"all"``, ``{"class": "<class name>"}``, or ``{"range": [lo, hi)}``
    (global machine ids).
    """

    name: str
    day: float
    duration_hours: float
    hour: float = 0.0
    machines: Union[str, dict] = "all"
    #: Repeat the outage every N days until the end of the trace
    #: (``None`` = a single occurrence).
    repeat_days: Optional[float] = None


@dataclass(frozen=True)
class FlashCrowdSpec:
    """A fleet-wide interactive burst (flash crowd).

    Each occurrence picks ``fraction`` of the fleet — deterministically
    from the scenario seed, a fresh draw per occurrence — and inserts a
    CPU-contention (S3) unavailability window on those machines.
    """

    name: str
    day: float
    duration_hours: float
    hour: float = 19.0
    #: Fraction of the fleet hit per occurrence.
    fraction: float = 1.0
    #: Mean host load recorded for the injected contention window.
    load: float = 0.95
    repeat_days: Optional[float] = None


@dataclass(frozen=True)
class ScenarioSpec:
    """A parsed, validated scenario document."""

    name: str
    description: str
    classes: tuple[MachineClassSpec, ...]
    regimes: tuple[RegimeSpec, ...] = ()
    outages: tuple[OutageSpec, ...] = ()
    flash_crowds: tuple[FlashCrowdSpec, ...] = ()
    #: Default fleet frame (``machines`` / ``days`` / ``seed``) applied
    #: when the caller does not pass explicit values at compile time.
    defaults: dict = field(default_factory=dict)
    schema: int = SCENARIO_SCHEMA_VERSION

    def class_named(self, name: str) -> MachineClassSpec:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise ScenarioError("classes", f"no class named {name!r}")

    @property
    def is_plain(self) -> bool:
        """True when the scenario is exactly one config — a single class
        with no regimes, outages, or flash crowds.  Plain scenarios
        delegate to the stock generation path byte-for-byte (and share
        its dataset-cache entries)."""
        return (
            len(self.classes) == 1
            and not self.regimes
            and not self.outages
            and not self.flash_crowds
        )
