"""Generate trace datasets from compiled scenarios.

Two paths:

* **Trivial scenarios** (one class, no regimes/outages/flash crowds)
  delegate wholesale to the stock generators —
  :func:`repro.traces.generate.generate_dataset_columns` and
  :func:`repro.traces.shards.generate_shards` — so their output is
  byte-identical to hand-building the same config, and they share the
  stock dataset-cache entries.

* **Everything else** runs the scenario worker: per machine, generate
  each regime segment under its own virtual testbed (event times shifted
  by the segment offset, per-segment seeds; segment 0 keeps the base
  seed), then merge the machine's deterministic overlay windows
  (correlated outages → S5, flash crowds → S3) into the event stream —
  base events are clipped around the injected windows, so the merged
  per-machine timeline keeps the detector's invariants.  Machines stay
  independent work units drawing only from per-machine streams, so
  ``jobs=N`` output is byte-identical to ``jobs=1``.

Scenario datasets cache under keys derived from the compiled scenario's
fingerprint (``scenario-dataset`` / ``scenario-shard`` extras), exactly
parallel to the config-keyed stock entries.
"""

from __future__ import annotations

import logging
import math
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from ..config import ExecutionConfig
from ..obs.metrics import get_registry
from ..units import HOUR
from .compile import CompiledScenario

__all__ = [
    "generate_scenario_columns",
    "generate_scenario_shards",
    "merge_overlay_rows",
    "scenario_dataset_cache_key",
    "scenario_metadata",
    "scenario_shard_cache_key",
]

logger = logging.getLogger(__name__)


def scenario_metadata(compiled: CompiledScenario) -> dict:
    """Dataset provenance metadata for a scenario-generated fleet.

    Same shape as :func:`repro.traces.generate.dataset_metadata` — the
    thresholds and monitor period are fleet-wide by construction (class
    overrides are restricted to lab-workload and per-machine-memory
    fields), and segment 0 carries the scenario seed.  The scenario
    *name* deliberately stays out of the dataset: it lands in the run
    manifest instead, so identical fleets from differently-named
    documents stay byte-identical.
    """
    from ..traces.generate import dataset_metadata

    return dataset_metadata(compiled.machine_config(0, compiled.segments()[0]))


def scenario_dataset_cache_key(
    compiled: CompiledScenario, *, keep_hourly_load: bool = True
) -> str:
    """Dataset-cache key for a monolithic scenario fleet."""
    from ..parallel.cache import config_fingerprint

    return config_fingerprint(
        compiled, extra=("scenario-dataset", keep_hourly_load)
    )


def scenario_shard_cache_key(
    compiled: CompiledScenario, lo: int, hi: int, *, keep_hourly_load: bool = True
) -> str:
    """Dataset-cache key for one generated scenario shard."""
    from ..parallel.cache import config_fingerprint

    return config_fingerprint(
        compiled, extra=("scenario-shard", lo, hi, keep_hourly_load)
    )


def merge_overlay_rows(base: np.ndarray, overlays: np.ndarray) -> np.ndarray:
    """Merge injected overlay rows into one machine's base event rows.

    ``base`` is the machine's detector output (sorted by start);
    ``overlays`` are its injected windows (sorted, mutually disjoint —
    :meth:`CompiledScenario.overlay_windows` guarantees both).  Base
    events are clipped around every overlay window (an event swallowed
    whole disappears; one straddling a window splits), the overlay rows
    are inserted, and the result is re-sorted by start, preserving the
    column invariants :func:`repro.traces.records.validate_columns`
    checks.
    """
    if not len(overlays):
        return base
    pieces: list[np.ndarray] = []
    bounds = [(float(w["start"]), float(w["end"])) for w in overlays]
    for row in base:
        spans = [(float(row["start"]), float(row["end"]))]
        for ws, we in bounds:
            clipped: list[tuple[float, float]] = []
            for s, e in spans:
                if we <= s or ws >= e:
                    clipped.append((s, e))
                    continue
                if s < ws:
                    clipped.append((s, ws))
                if we < e:
                    clipped.append((we, e))
            spans = clipped
            if not spans:
                break
        for s, e in spans:
            piece = row.copy()
            piece["start"] = s
            piece["end"] = e
            pieces.append(piece)
    merged = np.empty(len(pieces) + len(overlays), dtype=base.dtype)
    for i, piece in enumerate(pieces):
        merged[i] = piece
    merged[len(pieces):] = overlays
    return np.sort(merged, order=["start", "end", "state"], kind="stable")


def _fold_flash_into_hourly(hourly_row: np.ndarray, windows) -> None:
    """Blend flash-crowd load into the covered hourly-mean-load cells.

    Outage (S5) windows are skipped: the machine is down and the monitor
    silent, so the synthesized means stand.  NaN cells (quarantined or
    out-of-span) stay NaN.
    """
    for w in windows:
        if w.state != 3:
            continue
        h0 = max(int(w.start // HOUR), 0)
        h1 = min(int(math.ceil(w.end / HOUR)), len(hourly_row))
        for h in range(h0, h1):
            overlap = min(w.end, (h + 1) * HOUR) - max(w.start, h * HOUR)
            frac = overlap / HOUR
            if frac > 0 and not np.isnan(hourly_row[h]):
                hourly_row[h] = (
                    hourly_row[h] * (1.0 - frac) + w.mean_host_load * frac
                )


def _scenario_machine_columns(
    payload: tuple[CompiledScenario, int, int, bool, bool],
) -> tuple[np.ndarray, Optional[np.ndarray], Optional[dict], float, float]:
    """One machine's scenario event rows — the parallel work unit.

    Same return shape as the stock
    :func:`repro.traces.generate._generate_machine_columns`, so the
    assembly/telemetry plumbing is shared.  Pure function of
    ``(compiled, machine_id)``: segments, per-segment configs, and
    overlay windows are all recomputed locally, so the unit runs in any
    worker process without parent-side state.
    """
    from ..traces.generate import _generate_machine_columns
    from ..traces.records import EVENT_DTYPE

    compiled, machine_id, event_machine_id, keep_hourly_load, count_draws = payload
    blocks: list[np.ndarray] = []
    hourly_parts: list[np.ndarray] = []
    counters: Optional[dict] = None
    synth_seconds = 0.0
    detect_seconds = 0.0
    for segment in compiled.segments():
        config = compiled.machine_config(machine_id, segment)
        rows, hourly_row, seg_counters, synth, detect = (
            _generate_machine_columns(
                (config, machine_id, event_machine_id, keep_hourly_load,
                 count_draws)
            )
        )
        if segment.offset:
            rows["start"] += segment.offset
            rows["end"] += segment.offset
        blocks.append(rows)
        if keep_hourly_load and hourly_row is not None:
            hourly_parts.append(hourly_row)
        synth_seconds += synth
        detect_seconds += detect
        if seg_counters:
            if counters is None:
                counters = dict(seg_counters)
            else:
                for name, n in seg_counters.items():
                    counters[name] = counters.get(name, 0) + n
    base = (
        np.concatenate(blocks) if blocks else np.empty(0, dtype=EVENT_DTYPE)
    )
    windows = compiled.overlay_windows(machine_id)
    merged = merge_overlay_rows(
        base, compiled.overlay_rows(machine_id, event_machine_id)
    )
    hourly_full = np.concatenate(hourly_parts) if hourly_parts else None
    if hourly_full is not None and windows:
        _fold_flash_into_hourly(hourly_full, windows)
    return merged, hourly_full, counters, synth_seconds, detect_seconds


def generate_scenario_columns(
    compiled: CompiledScenario,
    *,
    keep_hourly_load: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    execution: Optional[ExecutionConfig] = None,
):
    """Generate a scenario fleet as an event-column unit.

    Mirrors :func:`repro.traces.generate.generate_dataset_columns`:
    machines fan out over the configured backend (byte-identical for any
    ``jobs``), machines whose retries are exhausted are quarantined into
    ``metadata["quarantined_machines"]``, and complete results cache
    under the compiled scenario's fingerprint.  Trivial scenarios
    delegate to the stock generator and share its cache entries.
    """
    from ..traces.generate import generate_dataset_columns

    execution = execution if execution is not None else ExecutionConfig()
    if compiled.is_trivial:
        return generate_dataset_columns(
            compiled.config,
            keep_hourly_load=keep_hourly_load,
            progress=progress,
            execution=execution,
        )

    registry = get_registry()
    cache = None
    key = None
    if execution.cache_enabled:
        from ..parallel.cache import DatasetCache

        cache = DatasetCache(execution.cache_dir, fault_plan=execution.fault_plan)
        key = scenario_dataset_cache_key(
            compiled, keep_hourly_load=keep_hourly_load
        )
        with registry.span("generate.cache_lookup"):
            cached = cache.get_columns(key)
        if cached is not None:
            logger.info(
                "scenario dataset cache hit (%s…): %d events",
                key[:12],
                len(cached),
            )
            return cached

    columns = _generate_scenario_fleet(
        compiled,
        keep_hourly_load=keep_hourly_load,
        progress=progress,
        execution=execution,
    )
    quarantined = columns.metadata.get("quarantined_machines")
    if cache is not None and key is not None:
        if quarantined:
            logger.warning(
                "not caching partial scenario dataset (%d quarantined "
                "machine(s))",
                len(quarantined),
            )
        else:
            with registry.span("generate.cache_write"):
                cache.put_columns(key, columns)
    return columns


def _generate_scenario_fleet(
    compiled: CompiledScenario,
    *,
    keep_hourly_load: bool,
    progress: Optional[Callable[[int, int], None]],
    execution: ExecutionConfig,
):
    from ..faults import QUARANTINED
    from ..parallel.backend import get_backend
    from ..traces.generate import _fold_machine_telemetry
    from ..traces.records import EVENT_DTYPE, EventColumns

    registry = get_registry()
    n = compiled.n_machines
    n_hours = compiled.days * 24
    hourly = np.full((n, n_hours), np.nan) if keep_hourly_load else None

    logger.info(
        "generating scenario %r: %d machines × %d days, %d class(es), "
        "%d segment(s) (seed %d, jobs=%d)",
        compiled.spec.name,
        n,
        compiled.days,
        len(compiled.spec.classes),
        len(compiled.segments()),
        compiled.seed,
        execution.jobs,
    )
    backend = get_backend(execution)
    fault_context = execution.fault_context("scenario.machine", quarantine=True)
    count_draws = registry.enabled
    with registry.span("generate.machines"):
        per_machine = backend.map(
            _scenario_machine_columns,
            [
                (compiled, mid, mid, keep_hourly_load, count_draws)
                for mid in range(n)
            ],
            progress=progress,
            faults=fault_context,
        )

    with registry.span("generate.assemble"):
        row_blocks: list[np.ndarray] = []
        quarantined: list[int] = []
        for mid, result in enumerate(per_machine):
            if result is QUARANTINED:
                quarantined.append(mid)
                continue
            rows, hourly_row, counters, synth_seconds, detect_seconds = result
            _fold_machine_telemetry(
                registry, counters, synth_seconds, detect_seconds
            )
            row_blocks.append(rows)
            if hourly is not None and hourly_row is not None:
                hourly[mid, :] = hourly_row

        events = (
            np.concatenate(row_blocks)
            if row_blocks
            else np.empty(0, dtype=EVENT_DTYPE)
        )
        metadata = scenario_metadata(compiled)
        if quarantined:
            metadata["quarantined_machines"] = quarantined
        columns = EventColumns(
            events=events,
            n_machines=n,
            span=compiled.span,
            start_weekday=compiled.machine_config(
                0, compiled.segments()[0]
            ).testbed.start_weekday,
            metadata=metadata,
            hourly_load=hourly,
        )
    if quarantined:
        logger.error(
            "partial scenario trace: %d/%d machine(s) quarantined (ids %s)",
            len(quarantined),
            n,
            quarantined,
        )
    logger.info(
        "scenario %r: %d events over %d machine-days",
        compiled.spec.name,
        len(columns),
        n * compiled.days,
    )
    return columns


# -- sharded scenario generation -------------------------------------------


def _generate_scenario_shard(
    payload: tuple[
        CompiledScenario, ExecutionConfig, int, int, int, str, bool, str
    ],
) -> tuple[int, str, Optional[str], Optional[dict]]:
    """Generate one scenario shard and write its file — the work unit.

    Mirrors :func:`repro.traces.shards._generate_shard`: runs wholly in
    the worker, writes shard-local machine ids directly, caches the
    shard columns under a per-range scenario key, and returns
    ``(n_events, sha256, cache_key, telemetry)``.
    """
    from ..traces.shards import (
        _atomic_save_columns,
        _shard_metadata,
        _shard_name,
        _sha256_file,
    )
    from ..traces.records import EVENT_DTYPE, EventColumns

    compiled, execution, index, lo, hi, out_dir, keep_hourly_load, fmt = payload
    registry = get_registry()
    cache = None
    key: Optional[str] = None
    columns = None
    telemetry: Optional[dict] = None
    if execution.cache_enabled:
        from ..parallel.cache import DatasetCache

        cache = DatasetCache(execution.cache_dir, fault_plan=execution.fault_plan)
        key = scenario_shard_cache_key(
            compiled, lo, hi, keep_hourly_load=keep_hourly_load
        )
        with registry.span("shard.cache_lookup"):
            columns = cache.get_columns(key)
    if columns is None:
        n_hours = compiled.days * 24
        row_blocks: list[np.ndarray] = []
        hourly = (
            np.full((hi - lo, n_hours), np.nan) if keep_hourly_load else None
        )
        telemetry = {
            "generate.synth_seconds": 0.0,
            "generate.detect_seconds": 0.0,
        }
        for mid in range(lo, hi):
            rows, hourly_row, counters, synth_seconds, detect_seconds = (
                _scenario_machine_columns(
                    (compiled, mid, mid - lo, keep_hourly_load, True)
                )
            )
            row_blocks.append(rows)
            telemetry["generate.synth_seconds"] += synth_seconds
            telemetry["generate.detect_seconds"] += detect_seconds
            for name, n in (counters or {}).items():
                telemetry[name] = telemetry.get(name, 0) + n
            if hourly is not None and hourly_row is not None:
                hourly[mid - lo, :] = hourly_row
        columns = EventColumns(
            events=(
                np.concatenate(row_blocks)
                if row_blocks
                else np.empty(0, dtype=EVENT_DTYPE)
            ),
            n_machines=hi - lo,
            span=compiled.span,
            start_weekday=compiled.machine_config(
                lo, compiled.segments()[0]
            ).testbed.start_weekday,
            metadata=_shard_metadata(
                scenario_metadata(compiled), index, lo, hi, compiled.n_machines
            ),
            hourly_load=hourly,
        )
        if cache is not None and key is not None:
            with registry.span("shard.cache_write"):
                cache.put_columns(key, columns)
    path = Path(out_dir) / _shard_name(index, fmt)
    with registry.span("shard.encode"):
        _atomic_save_columns(columns, path, fmt)
    return len(columns), _sha256_file(path), key, telemetry


def generate_scenario_shards(
    compiled: CompiledScenario,
    out_dir: Union[str, Path],
    n_shards: int,
    *,
    keep_hourly_load: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    execution: Optional[ExecutionConfig] = None,
    format: str = "jsonl",
):
    """Generate a scenario fleet directly into a shard directory.

    Trivial scenarios delegate to
    :func:`repro.traces.shards.generate_shards` (byte-identical stores,
    shared cache entries); otherwise each shard is one hardened work
    unit (unit keys ``scenario.shard:<index>``), quarantined ranges
    degrade to event-free placeholder shards, and the manifest's
    ``config_fingerprint`` records the compiled scenario's fingerprint.
    """
    from ..faults import QUARANTINED
    from ..parallel.backend import get_backend
    from ..traces.shards import (
        ShardInfo,
        ShardManifest,
        _atomic_save,
        _check_format,
        _placeholder_shard,
        _shard_name,
        _sha256_file,
        generate_shards,
        partition_machines,
    )

    execution = execution if execution is not None else ExecutionConfig()
    if compiled.is_trivial:
        return generate_shards(
            compiled.config,
            out_dir,
            n_shards,
            keep_hourly_load=keep_hourly_load,
            progress=progress,
            execution=execution,
            format=format,
        )

    _check_format(format)
    registry = get_registry()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    ranges = partition_machines(compiled.n_machines, n_shards)
    if len(ranges) != n_shards:
        logger.warning(
            "clamping n_shards from %d to %d (one machine per shard minimum)",
            n_shards,
            len(ranges),
        )
    backend = get_backend(execution)
    faults = execution.fault_context("scenario.shard", quarantine=True)
    payloads = [
        (compiled, execution, index, lo, hi, str(out_dir), keep_hourly_load,
         format)
        for index, (lo, hi) in enumerate(ranges)
    ]
    with registry.span("generate.shards"):
        results = backend.map(
            _generate_scenario_shard, payloads, progress=progress, faults=faults
        )

    # A placeholder needs a plain FgcsConfig frame; any machine's
    # segment-0 config carries the right span/weekday/metadata, with the
    # fleet-wide testbed frame restored.
    import dataclasses as _dc

    frame_config = compiled.machine_config(0, compiled.segments()[0])
    frame_config = _dc.replace(
        frame_config,
        testbed=_dc.replace(
            frame_config.testbed,
            n_machines=compiled.n_machines,
            duration=compiled.span,
        ),
    )
    infos: list[ShardInfo] = []
    quarantined: list[int] = []
    for index, ((lo, hi), result) in enumerate(zip(ranges, results)):
        if result is QUARANTINED:
            quarantined.extend(range(lo, hi))
            placeholder = _placeholder_shard(
                frame_config, index, lo, hi, keep_hourly_load
            )
            path = out_dir / _shard_name(index, format)
            _atomic_save(placeholder, path, format)
            n_events, digest, key = 0, _sha256_file(path), None
        else:
            n_events, digest, key, telemetry = result
            if telemetry and registry.enabled:
                for name, value in telemetry.items():
                    if name.startswith("generate."):
                        registry.observe(name, value)
                    else:
                        registry.inc(name, value)
        registry.inc("shards.written")
        registry.observe("shards.events", n_events)
        infos.append(
            ShardInfo(
                index=index,
                path=_shard_name(index, format),
                machine_lo=lo,
                machine_hi=hi,
                n_events=n_events,
                sha256=digest,
                cache_key=key,
                format=format,
            )
        )

    metadata = scenario_metadata(compiled)
    if quarantined:
        metadata["quarantined_machines"] = quarantined
        logger.error(
            "partial scenario fleet: %d machine(s) quarantined (ids %s)",
            len(quarantined),
            quarantined,
        )
    manifest = ShardManifest(
        n_machines=compiled.n_machines,
        span=compiled.span,
        start_weekday=frame_config.testbed.start_weekday,
        shards=tuple(infos),
        metadata=metadata,
        config_fingerprint=compiled.fingerprint,
        dataset_cache_key=scenario_dataset_cache_key(
            compiled, keep_hourly_load=keep_hourly_load
        ),
    )
    manifest.save(out_dir)
    registry.record(
        "shards",
        phase="generate",
        count=manifest.n_shards,
        machines=manifest.n_machines,
        events=manifest.n_events,
        quarantined=len(quarantined),
    )
    return manifest
