"""Compile a scenario document against a fleet frame.

A :class:`ScenarioSpec` says *what* the fleet looks like; compilation
binds it to a concrete frame — ``n_machines`` × ``days`` × ``seed`` — and
answers the questions generation asks:

* which machine-id block belongs to which class
  (largest-remainder apportionment of the class weights, contiguous ids,
  every class keeps at least one machine);
* which time *segments* the trace splits into (one per workload regime;
  segment 0 reuses the scenario seed so regime-free scenarios reproduce
  the stock generator's streams exactly);
* the full :class:`~repro.config.FgcsConfig` any ``(machine, segment)``
  pair runs under;
* the deterministic overlay windows (correlated outages → S5, flash
  crowds → S3) each machine receives — computable independently inside
  any worker process, no parent-side precomputation.

``CompiledScenario`` is a frozen dataclass of pure data, so it
fingerprints through :func:`repro.parallel.cache.config_fingerprint`
exactly like a hand-built config tree; scenario datasets cache and shard
under keys derived from that fingerprint.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import FgcsConfig
from ..errors import ScenarioError
from ..rng import RngFactory
from ..units import DAY, HOUR
from .spec import ScenarioSpec

__all__ = ["CompiledScenario", "OverlayWindow", "Segment", "compile_scenario"]

#: Frame defaults when neither the caller nor the document's ``defaults``
#: block pins a value — the paper's testbed frame.
FRAME_DEFAULTS = {"machines": 20, "days": 92, "seed": 2006}

#: Mixing constant for per-segment seeds (segment 0 keeps the base seed).
_SEGMENT_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class Segment:
    """One workload-regime span of the trace, in whole days."""

    index: int
    start_day: int
    n_days: int
    name: str = ""
    #: Regime lab-workload overrides layered over every class.
    lab: dict = dataclasses.field(default_factory=dict)

    @property
    def offset(self) -> float:
        """Trace-time second at which this segment starts."""
        return self.start_day * DAY


@dataclass(frozen=True)
class OverlayWindow:
    """One injected unavailability window on one machine."""

    start: float
    end: float
    #: EVENT_DTYPE state code: 3 (flash crowd → CPU contention) or
    #: 5 (correlated outage → revocation).
    state: int
    mean_host_load: float
    mean_free_mb: float


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario bound to a concrete ``machines × days × seed`` frame."""

    spec: ScenarioSpec
    n_machines: int
    days: int
    seed: int

    def __post_init__(self) -> None:
        if self.n_machines < len(self.spec.classes):
            raise ScenarioError(
                "fleet.classes",
                f"{len(self.spec.classes)} classes cannot share "
                f"{self.n_machines} machine(s) — every class keeps at "
                "least one",
            )
        if self.days < 1:
            raise ScenarioError("defaults.days", "needs at least one day")

    # -- fleet frame -------------------------------------------------------

    @property
    def span(self) -> float:
        """Trace duration in seconds."""
        return self.days * DAY

    @property
    def fingerprint(self) -> str:
        """Canonical fingerprint — the scenario analogue of a config
        fingerprint; scenario dataset/shard cache keys derive from it."""
        from ..parallel.cache import config_fingerprint

        return config_fingerprint(self)

    def class_counts(self) -> tuple[int, ...]:
        """Machines per class (largest-remainder over weights, min 1)."""
        classes = self.spec.classes
        counts = [1] * len(classes)
        remaining = self.n_machines - len(classes)
        if remaining:
            total = sum(c.weight for c in classes)
            quotas = [remaining * c.weight / total for c in classes]
            floors = [math.floor(q) for q in quotas]
            for i, f in enumerate(floors):
                counts[i] += f
            leftover = remaining - sum(floors)
            order = sorted(
                range(len(classes)), key=lambda i: (floors[i] - quotas[i], i)
            )
            for i in order[:leftover]:
                counts[i] += 1
        return tuple(counts)

    def class_ranges(self) -> tuple[tuple[int, int], ...]:
        """Contiguous ``[lo, hi)`` machine-id block per class, in order."""
        ranges = []
        lo = 0
        for count in self.class_counts():
            ranges.append((lo, lo + count))
            lo += count
        return tuple(ranges)

    def class_of(self, machine_id: int) -> int:
        """Index of the class owning a global machine id."""
        for i, (lo, hi) in enumerate(self.class_ranges()):
            if lo <= machine_id < hi:
                return i
        raise ScenarioError(
            "", f"machine id {machine_id} outside fleet of {self.n_machines}"
        )

    # -- regime segments ---------------------------------------------------

    def segments(self) -> tuple[Segment, ...]:
        """The trace's regime segments, covering ``[0, days)`` exactly.

        Regimes starting at or past the end of the (possibly reduced)
        frame are dropped, so the same scenario compiles cleanly at any
        duration.
        """
        regimes = [r for r in self.spec.regimes if r.start_day < self.days]
        boundaries = [0] + [r.start_day for r in regimes] + [self.days]
        segments = []
        for i in range(len(boundaries) - 1):
            start, end = boundaries[i], boundaries[i + 1]
            if end <= start:  # regime at day 0 replaces the base segment
                continue
            regime = regimes[i - 1] if i > 0 else None
            segments.append(
                Segment(
                    index=len(segments),
                    start_day=start,
                    n_days=end - start,
                    name=regime.name if regime else "",
                    lab=dict(regime.lab) if regime else {},
                )
            )
        return tuple(segments)

    # -- per-(machine, segment) config ------------------------------------

    def machine_config(self, machine_id: int, segment: Segment) -> FgcsConfig:
        """The config one machine runs under during one segment.

        The virtual testbed covers only the segment (duration =
        ``segment.n_days``, weekday shifted by the segment's start day);
        generation shifts the resulting event times by
        ``segment.offset``.  Segment 0 keeps the scenario seed — a
        single-class, single-segment scenario therefore draws from
        exactly the stock generator's streams.
        """
        from ..workloads.profiles import PROFILES

        cls = self.spec.classes[self.class_of(machine_id)]
        seed = self.seed + _SEGMENT_SEED_STRIDE * segment.index
        config = PROFILES[cls.profile](
            n_machines=self.n_machines, days=segment.n_days, seed=seed
        )
        lab = {**cls.lab, **segment.lab}
        if lab:
            config = dataclasses.replace(
                config, lab=dataclasses.replace(config.lab, **lab)
            )
        testbed = dict(cls.testbed)
        testbed["start_weekday"] = (
            config.testbed.start_weekday + segment.start_day
        ) % 7
        config = dataclasses.replace(
            config, testbed=dataclasses.replace(config.testbed, **testbed)
        )
        return config

    # -- overlays ----------------------------------------------------------

    def _selected(self, selector, machine_id: int) -> bool:
        if selector == "all":
            return True
        if "class" in selector:
            lo, hi = self.class_ranges()[
                next(
                    i
                    for i, c in enumerate(self.spec.classes)
                    if c.name == selector["class"]
                )
            ]
        else:
            lo, hi = selector["range"]
        return lo <= machine_id < hi

    def _occurrence_days(self, day: float, repeat: Optional[float]):
        yield day
        if repeat is not None:
            k = 1
            while day + k * repeat < self.days:
                yield day + k * repeat
                k += 1

    def overlay_windows(self, machine_id: int) -> tuple[OverlayWindow, ...]:
        """All injected windows for one machine, sorted, non-overlapping.

        Pure function of ``(spec, frame, machine_id)`` — flash-crowd
        membership draws from a dedicated ``("flash", crowd, occurrence)``
        stream of the scenario seed, so any worker process computes the
        same windows without coordination.  Windows are clipped to the
        trace span; where two overlap, the earlier one wins and the later
        is clipped to start at its end.
        """
        raw: list[OverlayWindow] = []
        for outage in self.spec.outages:
            if not self._selected(outage.machines, machine_id):
                continue
            for day in self._occurrence_days(outage.day, outage.repeat_days):
                raw.append(
                    OverlayWindow(
                        start=day * DAY + outage.hour * HOUR,
                        end=day * DAY
                        + outage.hour * HOUR
                        + outage.duration_hours * HOUR,
                        state=5,
                        mean_host_load=float("nan"),
                        mean_free_mb=float("nan"),
                    )
                )
        factory = RngFactory(self.seed)
        for ci, crowd in enumerate(self.spec.flash_crowds):
            for oi, day in enumerate(
                self._occurrence_days(crowd.day, crowd.repeat_days)
            ):
                hit = (
                    factory.generator("flash", ci, oi).random(self.n_machines)
                    < crowd.fraction
                )
                if not bool(hit[machine_id]):
                    continue
                raw.append(
                    OverlayWindow(
                        start=day * DAY + crowd.hour * HOUR,
                        end=day * DAY
                        + crowd.hour * HOUR
                        + crowd.duration_hours * HOUR,
                        state=3,
                        mean_host_load=crowd.load,
                        mean_free_mb=float("nan"),
                    )
                )
        span = self.span
        clipped: list[OverlayWindow] = []
        cursor = 0.0
        for w in sorted(raw, key=lambda w: (w.start, w.end, w.state)):
            start = max(w.start, cursor, 0.0)
            end = min(w.end, span)
            if end > start:
                clipped.append(dataclasses.replace(w, start=start, end=end))
                cursor = end
        return tuple(clipped)

    def overlay_rows(self, machine_id: int, event_machine_id: int) -> np.ndarray:
        """The machine's overlay windows as packed ``EVENT_DTYPE`` rows."""
        from ..traces.records import EVENT_DTYPE

        windows = self.overlay_windows(machine_id)
        rows = np.empty(len(windows), dtype=EVENT_DTYPE)
        for i, w in enumerate(windows):
            rows[i] = (
                event_machine_id,
                w.start,
                w.end,
                w.state,
                w.mean_host_load,
                w.mean_free_mb,
            )
        return rows

    # -- the trivial fast path ---------------------------------------------

    @property
    def is_trivial(self) -> bool:
        """True when the whole scenario is one stock config — delegate to
        the standard generation path (and share its cache entries)."""
        return self.spec.is_plain

    @property
    def config(self) -> FgcsConfig:
        """The single config of a trivial scenario."""
        if not self.is_trivial:
            raise ScenarioError(
                "", f"scenario {self.spec.name!r} is not a single-config fleet"
            )
        segment = self.segments()[0]
        return self.machine_config(0, segment)


def compile_scenario(
    spec: ScenarioSpec,
    *,
    machines: Optional[int] = None,
    days: Optional[int] = None,
    seed: Optional[int] = None,
) -> CompiledScenario:
    """Bind a scenario to a frame.

    Explicit arguments win; the document's ``defaults`` block is next;
    the paper's frame (20 × 92 × seed 2006) backstops both.
    """

    def _pick(explicit, key):
        if explicit is not None:
            return explicit
        return spec.defaults.get(key, FRAME_DEFAULTS[key])

    return CompiledScenario(
        spec=spec,
        n_machines=_pick(machines, "machines"),
        days=_pick(days, "days"),
        seed=_pick(seed, "seed"),
    )
