"""Parse, validate, and dump scenario documents (YAML or JSON).

The loader is strict and path-precise: every rejection raises a typed
:class:`~repro.errors.ScenarioError` carrying the dotted/indexed key path
of the offending value (``fleet.classes[1].weight``), so CLI consumers
print one actionable line instead of a traceback.  Parsing is a pure
function of the document: ``load → dump → load`` is the identity, and
equal documents always produce equal :class:`ScenarioSpec` values (and
therefore equal config fingerprints and dataset-cache keys — numeric
values are canonicalized to float so ``weight: 1`` and ``weight: 1.0``
cannot fingerprint apart).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Optional, Union

from ..config import LabWorkloadConfig
from ..errors import ScenarioError
from .spec import (
    CLASS_TESTBED_FIELDS,
    SCENARIO_SCHEMA_VERSION,
    FlashCrowdSpec,
    MachineClassSpec,
    OutageSpec,
    RegimeSpec,
    ScenarioSpec,
)

__all__ = [
    "dump_scenario",
    "load_scenario",
    "load_scenario_file",
    "parse_scenario",
]

#: Fields a ``lab:`` override block may set — exactly the
#: :class:`~repro.config.LabWorkloadConfig` fields (all floats).
_LAB_FIELDS = tuple(f.name for f in dataclasses.fields(LabWorkloadConfig))

_SELECTOR_KEYS = ("class", "range")


def _err(path: str, message: str) -> ScenarioError:
    return ScenarioError(path, message)


def _require_mapping(value: object, path: str) -> dict:
    if not isinstance(value, dict):
        raise _err(path, f"expected a mapping, got {type(value).__name__}")
    return value


def _require_list(value: object, path: str) -> list:
    if not isinstance(value, list):
        raise _err(path, f"expected a list, got {type(value).__name__}")
    return value


def _require_str(value: object, path: str) -> str:
    if not isinstance(value, str) or not value:
        raise _err(path, "expected a non-empty string")
    return value


def _require_float(
    value: object,
    path: str,
    *,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    lo_open: bool = False,
) -> float:
    # bool is an int subclass; a scenario saying ``weight: true`` is a
    # mistake, not a number.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _err(path, f"expected a number, got {value!r}")
    x = float(value)
    if x != x:
        raise _err(path, "must not be NaN")
    if lo is not None and (x < lo or (lo_open and x == lo)):
        raise _err(path, f"must be {'>' if lo_open else '>='} {lo}, got {x}")
    if hi is not None and x > hi:
        raise _err(path, f"must be <= {hi}, got {x}")
    return x


def _require_int(value: object, path: str, *, lo: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _err(path, f"expected an integer, got {value!r}")
    if lo is not None and value < lo:
        raise _err(path, f"must be >= {lo}, got {value}")
    return value


def _reject_unknown(doc: dict, known: tuple, path: str) -> None:
    for key in doc:
        if key not in known:
            where = f"{path}.{key}" if path else str(key)
            raise _err(where, f"unknown key (expected one of {sorted(known)})")


def _parse_overrides(
    value: object, path: str, allowed: tuple, what: str
) -> dict:
    block = _require_mapping(value, path)
    out = {}
    for key, raw in block.items():
        if key not in allowed:
            raise _err(f"{path}.{key}", f"not a {what} field")
        out[str(key)] = _require_float(raw, f"{path}.{key}")
    return out


def _parse_class(doc: object, path: str) -> MachineClassSpec:
    from ..workloads.profiles import PROFILES

    block = _require_mapping(doc, path)
    _reject_unknown(block, ("name", "profile", "weight", "lab", "testbed"), path)
    if "name" not in block:
        raise _err(f"{path}.name", "required key is missing")
    profile = block.get("profile", "student-lab")
    if profile not in PROFILES:
        raise _err(
            f"{path}.profile",
            f"unknown profile {profile!r} (expected one of {sorted(PROFILES)})",
        )
    return MachineClassSpec(
        name=_require_str(block["name"], f"{path}.name"),
        profile=str(profile),
        weight=_require_float(
            block.get("weight", 1.0), f"{path}.weight", lo=0.0, lo_open=True
        ),
        lab=_parse_overrides(
            block.get("lab", {}), f"{path}.lab", _LAB_FIELDS, "lab workload"
        ),
        testbed=_parse_overrides(
            block.get("testbed", {}),
            f"{path}.testbed",
            CLASS_TESTBED_FIELDS,
            "per-class testbed",
        ),
    )


def _parse_regime(doc: object, path: str) -> RegimeSpec:
    block = _require_mapping(doc, path)
    _reject_unknown(block, ("start_day", "name", "lab"), path)
    if "start_day" not in block:
        raise _err(f"{path}.start_day", "required key is missing")
    return RegimeSpec(
        start_day=_require_int(block["start_day"], f"{path}.start_day", lo=1),
        name=str(block.get("name", "")),
        lab=_parse_overrides(
            block.get("lab", {}), f"{path}.lab", _LAB_FIELDS, "lab workload"
        ),
    )


def _parse_selector(value: object, path: str) -> Union[str, dict]:
    if value == "all":
        return "all"
    block = _require_mapping(value, path)
    _reject_unknown(block, _SELECTOR_KEYS, path)
    if len(block) != 1:
        raise _err(
            path, 'expected "all", {"class": NAME}, or {"range": [lo, hi]}'
        )
    if "class" in block:
        return {"class": _require_str(block["class"], f"{path}.class")}
    pair = _require_list(block["range"], f"{path}.range")
    if len(pair) != 2:
        raise _err(f"{path}.range", "expected [lo, hi] (two integers)")
    lo = _require_int(pair[0], f"{path}.range[0]", lo=0)
    hi = _require_int(pair[1], f"{path}.range[1]", lo=1)
    if hi <= lo:
        raise _err(f"{path}.range", f"needs hi > lo, got [{lo}, {hi})")
    return {"range": [lo, hi]}


def _parse_repeat(block: dict, path: str) -> Optional[float]:
    if block.get("repeat_days") is None:
        return None
    return _require_float(
        block["repeat_days"], f"{path}.repeat_days", lo=0.0, lo_open=True
    )


def _parse_outage(doc: object, path: str) -> OutageSpec:
    block = _require_mapping(doc, path)
    _reject_unknown(
        block,
        ("name", "day", "hour", "duration_hours", "machines", "repeat_days"),
        path,
    )
    for key in ("name", "day", "duration_hours"):
        if key not in block:
            raise _err(f"{path}.{key}", "required key is missing")
    return OutageSpec(
        name=_require_str(block["name"], f"{path}.name"),
        day=_require_float(block["day"], f"{path}.day", lo=0.0),
        hour=_require_float(
            block.get("hour", 0.0), f"{path}.hour", lo=0.0, hi=24.0
        ),
        duration_hours=_require_float(
            block["duration_hours"],
            f"{path}.duration_hours",
            lo=0.0,
            lo_open=True,
        ),
        machines=_parse_selector(block.get("machines", "all"), f"{path}.machines"),
        repeat_days=_parse_repeat(block, path),
    )


def _parse_flash_crowd(doc: object, path: str) -> FlashCrowdSpec:
    block = _require_mapping(doc, path)
    _reject_unknown(
        block,
        ("name", "day", "hour", "duration_hours", "fraction", "load", "repeat_days"),
        path,
    )
    for key in ("name", "day", "duration_hours"):
        if key not in block:
            raise _err(f"{path}.{key}", "required key is missing")
    return FlashCrowdSpec(
        name=_require_str(block["name"], f"{path}.name"),
        day=_require_float(block["day"], f"{path}.day", lo=0.0),
        hour=_require_float(
            block.get("hour", 19.0), f"{path}.hour", lo=0.0, hi=24.0
        ),
        duration_hours=_require_float(
            block["duration_hours"],
            f"{path}.duration_hours",
            lo=0.0,
            lo_open=True,
        ),
        fraction=_require_float(
            block.get("fraction", 1.0),
            f"{path}.fraction",
            lo=0.0,
            hi=1.0,
            lo_open=True,
        ),
        load=_require_float(
            block.get("load", 0.95), f"{path}.load", lo=0.0, hi=1.0, lo_open=True
        ),
        repeat_days=_parse_repeat(block, path),
    )


def _parse_defaults(value: object, path: str) -> dict:
    block = _require_mapping(value, path)
    _reject_unknown(block, ("machines", "days", "seed"), path)
    out = {}
    for key, lo in (("machines", 1), ("days", 1), ("seed", None)):
        if key in block:
            out[key] = _require_int(block[key], f"{path}.{key}", lo=lo)
    return out


def parse_scenario(doc: object) -> ScenarioSpec:
    """Validate a decoded scenario document into a :class:`ScenarioSpec`.

    Raises :class:`~repro.errors.ScenarioError` (with the offending key
    path) on the first problem found.
    """
    block = _require_mapping(doc, "")
    _reject_unknown(
        block,
        (
            "scenario",
            "name",
            "description",
            "fleet",
            "regimes",
            "outages",
            "flash_crowds",
            "defaults",
        ),
        "",
    )
    for key in ("scenario", "name", "description", "fleet"):
        if key not in block:
            raise _err(key, "required key is missing")
    schema = _require_int(block["scenario"], "scenario")
    if schema != SCENARIO_SCHEMA_VERSION:
        raise _err(
            "scenario",
            f"unsupported document schema {schema} "
            f"(this library reads version {SCENARIO_SCHEMA_VERSION})",
        )
    fleet = _require_mapping(block["fleet"], "fleet")
    _reject_unknown(fleet, ("classes",), "fleet")
    if "classes" not in fleet:
        raise _err("fleet.classes", "required key is missing")
    raw_classes = _require_list(fleet["classes"], "fleet.classes")
    if not raw_classes:
        raise _err("fleet.classes", "needs at least one machine class")
    classes = tuple(
        _parse_class(c, f"fleet.classes[{i}]") for i, c in enumerate(raw_classes)
    )
    seen: set[str] = set()
    for i, cls in enumerate(classes):
        if cls.name in seen:
            raise _err(
                f"fleet.classes[{i}].name", f"duplicate class name {cls.name!r}"
            )
        seen.add(cls.name)

    regimes = tuple(
        _parse_regime(r, f"regimes[{i}]")
        for i, r in enumerate(_require_list(block.get("regimes", []), "regimes"))
    )
    for i in range(1, len(regimes)):
        if regimes[i].start_day <= regimes[i - 1].start_day:
            raise _err(
                f"regimes[{i}].start_day",
                "regime start days must be strictly increasing",
            )
    outages = tuple(
        _parse_outage(o, f"outages[{i}]")
        for i, o in enumerate(_require_list(block.get("outages", []), "outages"))
    )
    flash_crowds = tuple(
        _parse_flash_crowd(f, f"flash_crowds[{i}]")
        for i, f in enumerate(
            _require_list(block.get("flash_crowds", []), "flash_crowds")
        )
    )
    spec = ScenarioSpec(
        name=_require_str(block["name"], "name"),
        description=_require_str(block["description"], "description"),
        classes=classes,
        regimes=regimes,
        outages=outages,
        flash_crowds=flash_crowds,
        defaults=_parse_defaults(block.get("defaults", {}), "defaults"),
        schema=schema,
    )
    # Selectors naming a class must name one that exists.
    for i, outage in enumerate(spec.outages):
        if isinstance(outage.machines, dict) and "class" in outage.machines:
            name = outage.machines["class"]
            if name not in seen:
                raise _err(
                    f"outages[{i}].machines.class", f"unknown class {name!r}"
                )
    return spec


def load_scenario(text: str, *, source: str = "<string>") -> ScenarioSpec:
    """Parse a YAML/JSON scenario document from text."""
    try:
        import yaml

        doc = yaml.safe_load(text)
    except ImportError:  # pragma: no cover - yaml ships in the toolchain
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise _err("", f"{source}: not valid JSON ({exc})") from exc
    except Exception as exc:  # yaml.YAMLError
        raise _err("", f"{source}: not valid YAML ({exc})") from exc
    return parse_scenario(doc)


def load_scenario_file(path: Union[str, Path]) -> ScenarioSpec:
    """Load and validate a scenario document from a file path."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise _err("", f"cannot read scenario file {path}: {exc}") from exc
    return load_scenario(text, source=str(path))


def dump_scenario(spec: ScenarioSpec) -> dict:
    """The canonical document form of a spec (``parse_scenario`` inverse).

    ``parse_scenario(dump_scenario(spec)) == spec`` for every valid spec;
    optional sections that hold their defaults are omitted so dumped
    documents stay minimal.
    """

    def _class(cls: MachineClassSpec) -> dict:
        out: dict = {"name": cls.name}
        if cls.profile != "student-lab":
            out["profile"] = cls.profile
        if cls.weight != 1.0:
            out["weight"] = cls.weight
        if cls.lab:
            out["lab"] = dict(cls.lab)
        if cls.testbed:
            out["testbed"] = dict(cls.testbed)
        return out

    def _regime(r: RegimeSpec) -> dict:
        out: dict = {"start_day": r.start_day}
        if r.name:
            out["name"] = r.name
        if r.lab:
            out["lab"] = dict(r.lab)
        return out

    def _outage(o: OutageSpec) -> dict:
        out: dict = {
            "name": o.name,
            "day": o.day,
            "duration_hours": o.duration_hours,
        }
        if o.hour != 0.0:
            out["hour"] = o.hour
        if o.machines != "all":
            out["machines"] = {
                k: list(v) if isinstance(v, list) else v
                for k, v in o.machines.items()
            }
        if o.repeat_days is not None:
            out["repeat_days"] = o.repeat_days
        return out

    def _flash(f: FlashCrowdSpec) -> dict:
        out: dict = {
            "name": f.name,
            "day": f.day,
            "duration_hours": f.duration_hours,
        }
        if f.hour != 19.0:
            out["hour"] = f.hour
        if f.fraction != 1.0:
            out["fraction"] = f.fraction
        if f.load != 0.95:
            out["load"] = f.load
        if f.repeat_days is not None:
            out["repeat_days"] = f.repeat_days
        return out

    doc: dict = {
        "scenario": spec.schema,
        "name": spec.name,
        "description": spec.description,
        "fleet": {"classes": [_class(c) for c in spec.classes]},
    }
    if spec.regimes:
        doc["regimes"] = [_regime(r) for r in spec.regimes]
    if spec.outages:
        doc["outages"] = [_outage(o) for o in spec.outages]
    if spec.flash_crowds:
        doc["flash_crowds"] = [_flash(f) for f in spec.flash_crowds]
    if spec.defaults:
        doc["defaults"] = dict(spec.defaults)
    return doc
