"""The scenario differential report: paper artifacts, side by side.

``repro-fgcs scenario diff A B …`` analyzes each scenario at a common
frame and renders Table 2 / Figure 6 / Figure 7 as side-by-side columns
— one per scenario — with per-cell deltas against the first (baseline)
scenario.  Output is deterministic text (fixed formats, no timestamps),
so a committed golden pins it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..analysis.causes import CauseBreakdown, cause_breakdown
from ..analysis.daily import DailyPattern, daily_pattern
from ..analysis.intervals import IntervalDistribution, interval_distribution
from ..analysis.report import render_table

__all__ = ["ScenarioAnalysis", "diff_report"]


@dataclass(frozen=True)
class ScenarioAnalysis:
    """One scenario's analysis artifacts plus its fleet frame."""

    name: str
    n_machines: int
    days: int
    n_events: int
    breakdown: CauseBreakdown
    intervals: IntervalDistribution
    daily: DailyPattern

    @classmethod
    def from_dataset(cls, name: str, dataset) -> "ScenarioAnalysis":
        # Accept columnar carriers too: the analyses walk object events.
        if isinstance(getattr(dataset, "events", None), np.ndarray):
            dataset = dataset.to_dataset()
        return cls(
            name=name,
            n_machines=dataset.n_machines,
            days=dataset.n_days,
            n_events=len(dataset.events),
            breakdown=cause_breakdown(dataset),
            intervals=interval_distribution(dataset),
            daily=daily_pattern(dataset),
        )

    def _has_days(self, *, weekend: bool) -> bool:
        return bool((self.daily.is_weekend_day == weekend).any())


def _is_missing(v: Optional[float]) -> bool:
    return v is None or (isinstance(v, float) and math.isnan(v))


def _fmt(v: float, kind: str) -> str:
    if kind == "int":
        return f"{v:.0f}"
    if kind == "pct":
        return f"{100 * v:.1f}%"
    if kind == "frac":
        return f"{v:.3f}"
    return f"{v:.2f}"  # "float"


def _fmt_delta(d: float, kind: str) -> str:
    if kind == "int":
        return f"{d:+.0f}"
    if kind == "pct":
        return f"{100 * d:+.1f}pp"
    if kind == "frac":
        return f"{d:+.3f}"
    return f"{d:+.2f}"


def _cell(v: Optional[float], base: Optional[float], kind: str) -> str:
    if _is_missing(v):
        return "n/a"
    if base is None:  # the baseline column itself
        return _fmt(v, kind)
    if _is_missing(base):
        return _fmt(v, kind)
    return f"{_fmt(v, kind)} ({_fmt_delta(v - base, kind)})"


Metric = tuple[str, Callable[[ScenarioAnalysis], Optional[float]], str]


def _section(
    title: str, metrics: Sequence[Metric], analyses: Sequence[ScenarioAnalysis]
) -> str:
    headers = [""] + [a.name for a in analyses]
    rows = []
    for label, fn, kind in metrics:
        base_val = fn(analyses[0])
        row = [label]
        for i, a in enumerate(analyses):
            row.append(_cell(fn(a), None if i == 0 else base_val, kind))
        rows.append(row)
    return render_table(headers, rows, title=title)


def _table2_metrics() -> list[Metric]:
    def share(part: str) -> Callable[[ScenarioAnalysis], Optional[float]]:
        def fn(a: ScenarioAnalysis) -> Optional[float]:
            total = int(a.breakdown.totals.sum())
            if not total:
                return None
            return float(getattr(a.breakdown, part).sum()) / total

        return fn

    return [
        ("events total", lambda a: float(a.breakdown.totals.sum()), "int"),
        ("  cpu (S3)", lambda a: float(a.breakdown.cpu.sum()), "int"),
        ("  memory (S4)", lambda a: float(a.breakdown.memory.sum()), "int"),
        ("  revocation (S5)", lambda a: float(a.breakdown.revocation.sum()), "int"),
        ("cpu share", share("cpu"), "pct"),
        ("memory share", share("memory"), "pct"),
        ("revocation share", share("revocation"), "pct"),
        ("uec share", lambda a: a.breakdown.uec_share, "pct"),
        ("reboot share of urr", lambda a: a.breakdown.reboot_share_of_urr, "pct"),
        (
            "events/machine (mean)",
            lambda a: float(a.breakdown.totals.mean()),
            "float",
        ),
    ]


def _fig6_metrics() -> list[Metric]:
    def mean_h(attr: str) -> Callable[[ScenarioAnalysis], Optional[float]]:
        def fn(a: ScenarioAnalysis) -> Optional[float]:
            arr = getattr(a.intervals, attr)
            return float(arr.mean()) if arr.size else None

        return fn

    def cdf_at(attr: str, hours: float) -> Callable[[ScenarioAnalysis], Optional[float]]:
        def fn(a: ScenarioAnalysis) -> Optional[float]:
            if not getattr(a.intervals, f"{attr}_hours").size:
                return None
            cdf = getattr(a.intervals, f"{attr}_cdf")
            return float(cdf.at(np.array([hours]))[0])

        return fn

    def below_5min(a: ScenarioAnalysis) -> Optional[float]:
        wk, we = a.intervals.weekday_hours, a.intervals.weekend_hours
        if not wk.size and not we.size:
            return None
        return a.intervals.landmarks()["frac_below_5min"]

    metrics: list[Metric] = [
        ("weekday mean (h)", mean_h("weekday_hours"), "float"),
        ("weekend mean (h)", mean_h("weekend_hours"), "float"),
        ("frac below 5 min", below_5min, "pct"),
    ]
    for hours in (1.0, 2.0, 4.0, 8.0):
        metrics.append(
            (f"weekday CDF @ {hours:.0f}h", cdf_at("weekday", hours), "frac")
        )
    for hours in (1.0, 2.0, 4.0, 8.0):
        metrics.append(
            (f"weekend CDF @ {hours:.0f}h", cdf_at("weekend", hours), "frac")
        )
    return metrics


def _fig7_metrics() -> list[Metric]:
    def per_hour(weekend: bool) -> Callable[[ScenarioAnalysis], Optional[float]]:
        def fn(a: ScenarioAnalysis) -> Optional[float]:
            if not a._has_days(weekend=weekend):
                return None
            return float(a.daily.mean_profile(weekend=weekend).mean())

        return fn

    def peak_hour(weekend: bool) -> Callable[[ScenarioAnalysis], Optional[float]]:
        def fn(a: ScenarioAnalysis) -> Optional[float]:
            if not a._has_days(weekend=weekend):
                return None
            return float(np.argmax(a.daily.mean_profile(weekend=weekend)))

        return fn

    def cv(weekend: bool) -> Callable[[ScenarioAnalysis], Optional[float]]:
        def fn(a: ScenarioAnalysis) -> Optional[float]:
            sel = a.daily.counts[a.daily.is_weekend_day == weekend]
            if sel.shape[0] < 2:  # std needs two days of the same type
                return None
            return a.daily.deviation_summary(weekend=weekend)["mean_cv"]

        return fn

    def spike(a: ScenarioAnalysis) -> Optional[float]:
        if not a._has_days(weekend=False):
            return None
        return a.daily.updatedb_spike()["weekday"]

    return [
        ("weekday events/hour", per_hour(False), "float"),
        ("weekend events/hour", per_hour(True), "float"),
        ("weekday peak hour", peak_hour(False), "int"),
        ("weekend peak hour", peak_hour(True), "int"),
        ("weekday cross-day CV", cv(False), "float"),
        ("weekend cross-day CV", cv(True), "float"),
        ("updatedb spike (wkday @4h)", spike, "float"),
    ]


def diff_report(analyses: Sequence[ScenarioAnalysis]) -> str:
    """Render the full differential report for two or more scenarios.

    The first entry is the baseline; every other column annotates each
    cell with its delta against the baseline.  Cells that are undefined
    for a frame (no weekend days, no intervals) render ``n/a``.
    """
    if len(analyses) < 2:
        raise ValueError("diff_report needs at least two scenarios")
    base = analyses[0]
    lines = [
        "Scenario differential report",
        f"baseline: {base.name}  "
        f"(deltas are <scenario> - <baseline>)",
        "frames: "
        + "; ".join(
            f"{a.name}: {a.n_machines}m x {a.days}d, {a.n_events} events"
            for a in analyses
        ),
        "",
        _section(
            "Table 2: unavailability by cause", _table2_metrics(), analyses
        ),
        "",
        _section(
            "Figure 6: availability-interval lengths", _fig6_metrics(), analyses
        ),
        "",
        _section(
            "Figure 7: daily unavailability pattern", _fig7_metrics(), analyses
        ),
    ]
    return "\n".join(lines)
