"""Deterministic, seedable fault plans.

A :class:`FaultPlan` decides, for every *injection site* the pipeline
consults, whether a fault fires there.  The decision is a pure function
of ``(plan seed, spec index, site, unit key, attempt)`` — computed by
hashing, never by drawing from shared RNG state — so the injection
schedule is identical regardless of execution order, worker count, or
which process asks.  That is the property the chaos harness relies on:
``jobs=N`` and ``jobs=1`` see the same faults at the same units.

Sites
-----
``worker.crash``
    The work unit dies as if its worker process crashed.  In a process
    pool the injected :class:`~repro.faults.retry.WorkerCrashFault`
    surfaces exactly like a unit whose worker was lost; the backend also
    survives *real* worker deaths (``BrokenProcessPool``) through the
    same retry path.
``unit.exception``
    The work unit raises :class:`~repro.faults.retry.InjectedFault`
    instead of computing.
``unit.slow``
    The work unit sleeps ``delay`` seconds before computing, tripping a
    configured per-unit timeout.
``cache.read_corrupt``
    A dataset cache read treats the stored entry as corrupt, forcing
    the eviction/regeneration path.
``cache.write_fail``
    A dataset cache write fails as if the disk were full; the pipeline
    must continue without caching.

Plan files are JSON::

    {"seed": 7,
     "faults": [
       {"site": "unit.exception", "probability": 0.25},
       {"site": "worker.crash", "match": ["generate.machine:0"]},
       {"site": "unit.slow", "delay": 0.2, "max_attempt": 0}
     ]}

``probability`` defaults to 1.0; ``match`` restricts a spec to specific
unit keys (``<label>:<index>`` for backend units, the cache key for
cache sites); ``max_attempt`` bounds the *attempts* a spec fires on —
the default 0 injects only on the first try, so a bounded retry always
clears the fault, while ``-1`` injects on every attempt (a poisoned
unit that ends in quarantine).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..errors import FaultError

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "SITE_CACHE_READ_CORRUPT",
    "SITE_CACHE_WRITE_FAIL",
    "SITE_UNIT_EXCEPTION",
    "SITE_UNIT_SLOW",
    "SITE_WORKER_CRASH",
    "load_fault_plan",
]

SITE_WORKER_CRASH = "worker.crash"
SITE_UNIT_EXCEPTION = "unit.exception"
SITE_UNIT_SLOW = "unit.slow"
SITE_CACHE_READ_CORRUPT = "cache.read_corrupt"
SITE_CACHE_WRITE_FAIL = "cache.write_fail"

#: Every injection site the pipeline consults.
FAULT_SITES = frozenset(
    {
        SITE_WORKER_CRASH,
        SITE_UNIT_EXCEPTION,
        SITE_UNIT_SLOW,
        SITE_CACHE_READ_CORRUPT,
        SITE_CACHE_WRITE_FAIL,
    }
)

_SPEC_KEYS = frozenset({"site", "probability", "match", "max_attempt", "delay"})


def _decision(seed: int, index: int, site: str, key: str, attempt: int) -> float:
    """Uniform [0, 1) value for one (spec, site, key, attempt) cell.

    FNV-1a over the textual cell identity: stable across processes and
    platforms (no salted ``hash()``), independent of query order, and
    distinct per spec index so two specs at one site fire independently.
    """
    text = f"{seed}|{index}|{site}|{key}|{attempt}"
    h = 14695981039346656037  # FNV-1a offset basis
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h / 2**64


@dataclass(frozen=True)
class FaultSpec:
    """One fault source: a site, how often it fires, and on which units."""

    site: str
    #: Chance the fault fires at an eligible (key, attempt) cell.
    probability: float = 1.0
    #: Restrict to these unit keys; ``None`` means every key is eligible.
    match: Optional[tuple[str, ...]] = None
    #: Last attempt number the spec fires on (0 = first try only,
    #: ``-1`` = every attempt).
    max_attempt: int = 0
    #: Sleep injected by ``unit.slow``, seconds.
    delay: float = 0.05

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise FaultError(
                f"unknown fault site {self.site!r}; "
                f"expected one of {sorted(FAULT_SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError("fault probability must be in [0, 1]")
        if self.max_attempt < -1:
            raise FaultError("max_attempt must be >= -1 (-1 = every attempt)")
        if self.delay < 0:
            raise FaultError("delay must be non-negative")
        if self.match is not None:
            object.__setattr__(self, "match", tuple(str(m) for m in self.match))

    def applies(self, key: str, attempt: int) -> bool:
        """Is this (key, attempt) cell eligible for the spec at all?"""
        if self.max_attempt >= 0 and attempt > self.max_attempt:
            return False
        return self.match is None or key in self.match


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus fault specs: the complete, deterministic fault schedule.

    Frozen and picklable, so it rides inside worker payloads; decisions
    are pure functions, so parent and workers agree without coordination.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def should_inject(
        self, site: str, key: str, attempt: int = 0
    ) -> Optional[FaultSpec]:
        """The first spec firing at this (site, key, attempt), or ``None``."""
        for index, spec in enumerate(self.specs):
            if spec.site != site or not spec.applies(key, attempt):
                continue
            if _decision(self.seed, index, site, key, attempt) < spec.probability:
                return spec
        return None

    def sites(self) -> frozenset[str]:
        """Sites this plan can fire at (for cheap call-site short-circuits)."""
        return frozenset(spec.site for spec in self.specs)

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [
                {
                    "site": s.site,
                    "probability": s.probability,
                    "match": list(s.match) if s.match is not None else None,
                    "max_attempt": s.max_attempt,
                    "delay": s.delay,
                }
                for s in self.specs
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultError("fault plan must be a JSON object")
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise FaultError(f"unknown fault plan keys: {sorted(unknown)}")
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise FaultError("fault plan 'seed' must be an integer")
        raw_specs = data.get("faults", [])
        if not isinstance(raw_specs, list):
            raise FaultError("fault plan 'faults' must be a list")
        specs = []
        for i, raw in enumerate(raw_specs):
            if not isinstance(raw, dict):
                raise FaultError(f"fault spec #{i} must be a JSON object")
            unknown = set(raw) - _SPEC_KEYS
            if unknown:
                raise FaultError(
                    f"fault spec #{i} has unknown keys: {sorted(unknown)}"
                )
            if "site" not in raw:
                raise FaultError(f"fault spec #{i} is missing 'site'")
            kwargs = dict(raw)
            if kwargs.get("match") is not None:
                kwargs["match"] = tuple(kwargs["match"])
            specs.append(FaultSpec(**kwargs))
        return cls(seed=seed, specs=tuple(specs))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Parse a JSON fault plan file; every failure mode is a FaultError."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise FaultError(f"cannot read fault plan {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise FaultError(f"fault plan {path} is not valid JSON: {exc}") from exc
    return FaultPlan.from_dict(data)
