"""repro.faults — deterministic fault injection and retry/degradation.

The paper's premise is that FGCS resources fail unpredictably; this
package gives the *execution pipeline itself* the same treatment.  It
provides:

* :class:`FaultPlan` / :class:`FaultSpec` — a seedable, fully
  deterministic schedule of injected faults (worker crashes, unit
  exceptions, slowdowns, cache read corruption, cache write failures)
  consulted by the parallel backends and the dataset cache;
* :class:`RetryPolicy` — bounded per-unit retry with exponential
  backoff, cooperative per-unit timeouts, and quarantine-and-continue
  for poisoned units;
* :class:`FaultContext` — the per-batch bundle the backends accept,
  collecting a :class:`MapReport` of retries and
  :class:`QuarantineRecord` entries;
* :func:`load_fault_plan` — the CLI's ``--fault-plan FILE`` loader.

Injection decisions are pure hashes of ``(seed, site, unit key,
attempt)``: the same plan produces the same faults under ``jobs=1`` and
``jobs=N``, so a run whose retries all succeed is byte-identical to a
fault-free run (proved by ``tests/test_chaos.py``).  See
``docs/robustness.md`` for the full fault model.
"""

from .plan import (
    FAULT_SITES,
    SITE_CACHE_READ_CORRUPT,
    SITE_CACHE_WRITE_FAIL,
    SITE_UNIT_EXCEPTION,
    SITE_UNIT_SLOW,
    SITE_WORKER_CRASH,
    FaultPlan,
    FaultSpec,
    load_fault_plan,
)
from .retry import (
    QUARANTINED,
    FaultContext,
    InjectedFault,
    MapReport,
    QuarantineRecord,
    RetryPolicy,
    UnitTimeoutError,
    WorkerCrashFault,
)

__all__ = [
    "FAULT_SITES",
    "FaultContext",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "MapReport",
    "QUARANTINED",
    "QuarantineRecord",
    "RetryPolicy",
    "SITE_CACHE_READ_CORRUPT",
    "SITE_CACHE_WRITE_FAIL",
    "SITE_UNIT_EXCEPTION",
    "SITE_UNIT_SLOW",
    "SITE_WORKER_CRASH",
    "UnitTimeoutError",
    "WorkerCrashFault",
    "load_fault_plan",
]
