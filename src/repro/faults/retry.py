"""Retry policy, quarantine records, and the fault-aware work-unit wrapper.

The execution backends (``repro.parallel.backend``) stay byte-identical
to their plain paths: the wrapper runs the unit function unchanged and
returns its result untouched, adding only a worker-measured duration and
the list of injected sites so the parent can account for them.  All
*decisions* — retry, backoff, post-hoc timeout, quarantine — live in the
parent process.

Timeout semantics are **post hoc** (cooperative): a unit is never
preempted mid-flight; instead its worker-measured duration is checked
against ``RetryPolicy.unit_timeout`` after it returns, and an overrun
counts as a failure that is retried like any other.  This keeps the
pipeline deterministic (no kill races) while still bounding how long a
pathological unit can keep soaking up retries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ConfigError, FaultError
from .plan import (
    SITE_UNIT_EXCEPTION,
    SITE_UNIT_SLOW,
    SITE_WORKER_CRASH,
    FaultPlan,
)

__all__ = [
    "QUARANTINED",
    "FaultContext",
    "InjectedFault",
    "MapReport",
    "QuarantineRecord",
    "RetryPolicy",
    "UnitTimeoutError",
    "WorkerCrashFault",
    "run_unit",
]


class InjectedFault(FaultError):
    """An injected ``unit.exception`` fault (raised inside the work unit)."""


class WorkerCrashFault(InjectedFault):
    """An injected ``worker.crash`` fault: the unit dies as if its worker
    process had been lost mid-task."""


class UnitTimeoutError(FaultError):
    """A unit exceeded the per-unit timeout (detected post hoc)."""


#: Result placeholder for a unit whose retries were exhausted under a
#: quarantining policy.  Identity-compared by callers (parent-side only).
QUARANTINED = object()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-unit retry with exponential backoff and timeouts."""

    #: Re-executions allowed per unit after its first failure.
    max_retries: int = 2
    #: Parent-side sleep before the first retry, seconds.
    backoff_base: float = 0.05
    #: Multiplier applied per further retry.
    backoff_factor: float = 2.0
    #: Ceiling on a single backoff sleep, seconds.
    backoff_max: float = 1.0
    #: Per-unit wall-clock budget (worker-measured, enforced post hoc);
    #: ``None`` disables timeout checking.
    unit_timeout: Optional[float] = None
    #: When retries are exhausted: ``True`` quarantines the unit and
    #: continues the batch; ``False`` re-raises the last error.
    quarantine: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ConfigError("unit_timeout must be positive")

    def backoff(self, retry_number: int) -> float:
        """Sleep before the ``retry_number``-th retry (0-based)."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor**retry_number,
        )


@dataclass(frozen=True)
class QuarantineRecord:
    """One unit whose retries were exhausted; the batch continued without it."""

    unit: str
    attempts: int
    error: str


@dataclass
class MapReport:
    """Parent-side tally of what one ``map`` call survived."""

    retries: int = 0
    quarantined: list[QuarantineRecord] = field(default_factory=list)


class FaultContext:
    """Everything a backend needs to run one batch fault-aware.

    Bundles the (optional) injection plan with the retry policy and the
    unit-key label, and collects a :class:`MapReport` the caller can
    inspect afterwards.  Parent-side only — the picklable pieces (plan,
    unit key) ship to workers inside each payload.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        policy: Optional[RetryPolicy] = None,
        label: str = "unit",
    ) -> None:
        self.plan = plan
        self.policy = policy if policy is not None else RetryPolicy()
        self.label = label
        self.report = MapReport()

    def key(self, index: int) -> str:
        """Stable unit key: identical under any backend or worker count."""
        return f"{self.label}:{index}"


def run_unit(payload: tuple) -> tuple:
    """Execute one work unit under the fault plan (worker side).

    ``payload = (fn, item, plan, key, attempt[, capture])``.  Returns
    ``(result, duration_s, injected_sites, telemetry)`` with ``result``
    exactly what ``fn(item)`` returned — byte-identical assembly is the
    parent's job and this wrapper never touches the value.  Injected
    exception faults raise; the injected slowdown sleeps *before* the
    unit runs so the measured duration reflects it.

    With ``capture`` true (the pool backends pass it when the parent's
    registry is enabled), the unit runs under
    :func:`repro.obs.worker.capture_unit` and ``telemetry`` carries the
    worker-process spans/counters/resource peaks back for the parent to
    merge; otherwise ``telemetry`` is ``None``.  A failing attempt
    raises before returning, so its telemetry is never delivered — the
    parent merges exactly one capture per settled unit.
    """
    fn, item, plan, key, attempt, *rest = payload
    capture = bool(rest[0]) if rest else False
    injected: list[str] = []
    delay = 0.0
    if plan is not None:
        if plan.should_inject(SITE_WORKER_CRASH, key, attempt):
            raise WorkerCrashFault(f"injected worker crash at {key}")
        if plan.should_inject(SITE_UNIT_EXCEPTION, key, attempt):
            raise InjectedFault(f"injected unit exception at {key}")
        slow = plan.should_inject(SITE_UNIT_SLOW, key, attempt)
        if slow is not None:
            injected.append(SITE_UNIT_SLOW)
            delay = slow.delay
    telemetry = None
    t0 = time.perf_counter()
    if delay:
        time.sleep(delay)
    if capture:
        from ..obs.worker import capture_unit, unit_label

        result, telemetry = capture_unit(fn, item, unit_label(fn))
    else:
        result = fn(item)
    return result, time.perf_counter() - t0, tuple(injected), telemetry


def classify_failure(exc: BaseException) -> str:
    """Metric-suffix classification of a unit failure, by exception type.

    Real worker-process deaths (``BrokenExecutor`` from a pool) classify
    like injected crashes, so both recover through the same retry path.
    """
    from concurrent.futures import BrokenExecutor

    if isinstance(exc, (WorkerCrashFault, BrokenExecutor)):
        return "worker_crash"
    if isinstance(exc, UnitTimeoutError):
        return "timeout"
    return "unit_error"


#: Parent-side sleep hook (monkeypatchable in tests; wall-clock only,
#: never affects results).
sleep: Callable[[float], None] = time.sleep
