"""Figure 7: occurrences of unavailability during each hour of a day.

For every (day, hour-of-day) cell, count the unavailability events across
all machines that overlap that one-hour interval — events spanning
multiple hours are counted in each interval they overlap, as the paper
specifies.  Per day type (weekday/weekend) report the mean and range over
days for each hour.

The headline observation lives in :meth:`DailyPattern.deviation_summary`:
the deviation of the per-hour counts across days of the same type is
small, which is what makes history-based prediction feasible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.dataset import TraceDataset
from ..units import HOUR

__all__ = ["DailyPattern", "daily_pattern"]


@dataclass(frozen=True)
class DailyPattern:
    """Hour-of-day unavailability occurrence statistics.

    ``counts`` is a ``(n_days, 24)`` matrix of event-overlap counts summed
    over all machines; ``day_type`` flags each day as weekend or not.
    """

    counts: np.ndarray
    is_weekend_day: np.ndarray

    def _select(self, weekend: bool) -> np.ndarray:
        return self.counts[self.is_weekend_day == weekend]

    def mean_profile(self, *, weekend: bool) -> np.ndarray:
        """Mean occurrences per hour of day (the Figure 7 bars)."""
        return self._select(weekend).mean(axis=0)

    def range_profile(self, *, weekend: bool) -> tuple[np.ndarray, np.ndarray]:
        """(min, max) occurrences per hour over days (the range whiskers)."""
        sel = self._select(weekend)
        return sel.min(axis=0), sel.max(axis=0)

    def std_profile(self, *, weekend: bool) -> np.ndarray:
        """Per-hour standard deviation across days of the same type."""
        return self._select(weekend).std(axis=0, ddof=1)

    def deviation_summary(self, *, weekend: bool) -> dict[str, float]:
        """How repeatable the daily pattern is — the predictability claim.

        ``mean_cv`` is the count-weighted coefficient of variation across
        days: small values mean a given hour looks like the same hour on
        other days of the same type.
        """
        sel = self._select(weekend)
        mean = sel.mean(axis=0)
        std = sel.std(axis=0, ddof=1)
        weights = mean / mean.sum() if mean.sum() > 0 else np.full(24, 1 / 24)
        with np.errstate(invalid="ignore", divide="ignore"):
            cv = np.where(mean > 0, std / mean, 0.0)
        return {
            "mean_cv": float((cv * weights).sum()),
            "max_std": float(std.max()),
            "mean_std": float(std.mean()),
        }

    def updatedb_spike(self, hour: int = 4) -> dict[str, float]:
        """The 4–5 AM anomaly: mean count in that hour per day type.

        The paper finds it equals the number of machines (20) on both
        weekdays and weekends, because the cron job hits every machine
        every day.
        """
        return {
            "weekday": float(self.mean_profile(weekend=False)[hour]),
            "weekend": float(self.mean_profile(weekend=True)[hour]),
        }


def daily_pattern(dataset: TraceDataset) -> DailyPattern:
    """Compute the Figure 7 matrix for a trace dataset."""
    n_days = dataset.n_days
    counts = np.zeros((n_days, 24), dtype=np.int64)
    for e in dataset.events:
        h_first = int(e.start // HOUR)
        h_last = int((min(e.end, dataset.span) - 1e-9) // HOUR)
        for h_abs in range(h_first, h_last + 1):
            day, hour = divmod(h_abs, 24)
            if day < n_days:
                counts[day, hour] += 1
    weekend = np.array(
        [(d + dataset.start_weekday) % 7 >= 5 for d in range(n_days)], dtype=bool
    )
    return DailyPattern(counts=counts, is_weekend_day=weekend)
