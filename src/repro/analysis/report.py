"""Plain-text rendering of the reproduced tables and figures.

The benchmarks print these renderings so every paper artifact has a
regenerable textual counterpart (no plotting stack is assumed).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..contention.sweeps import (
    Figure1Result,
    Figure2Result,
    Figure3Result,
    Figure4Result,
)
from ..units import fmt_duration
from .causes import CauseBreakdown
from .daily import DailyPattern
from .intervals import IntervalDistribution

__all__ = [
    "render_table",
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_table2",
    "render_figure6",
    "render_figure7",
]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _pct(x: float) -> str:
    return f"{100 * x:.1f}%"


def render_figure1(result: Figure1Result) -> str:
    """Figure 1 as a table: reduction rate per (L_H, M)."""
    headers = ["L_H"] + [f"M={m}" for m in result.group_sizes]
    rows = []
    for i, lh in enumerate(result.lh_grid):
        row = [f"{lh:.1f}"]
        for j in range(len(result.group_sizes)):
            r = result.reduction[i, j]
            row.append("-" if np.isnan(r) else _pct(float(r)))
        rows.append(row)
    th = result.threshold()
    title = (
        f"Figure 1({'a' if result.guest_nice == 0 else 'b'}): host CPU usage "
        f"reduction, guest nice {result.guest_nice} "
        f"(5% crossing at L_H={th if th is not None else '>1.0'})"
    )
    return render_table(headers, rows, title=title)


def render_figure2(result: Figure2Result) -> str:
    headers = ["L_H"] + [f"nice {p}" for p in result.priorities]
    rows = [
        [f"{lh:.1f}"] + [_pct(float(r)) for r in result.reduction[i]]
        for i, lh in enumerate(result.lh_grid)
    ]
    return render_table(
        headers, rows, title="Figure 2: reduction rate vs guest priority"
    )


def render_figure3(result: Figure3Result) -> str:
    headers = ["host+guest", "guest usage (nice 0)", "guest usage (nice 19)", "gap"]
    rows = []
    for k, label in enumerate(result.labels):
        u0 = float(result.guest_usage_nice0[k])
        u19 = float(result.guest_usage_nice19[k])
        rows.append([label, f"{u0:.3f}", f"{u19:.3f}", f"{u0 - u19:+.3f}"])
    title = (
        "Figure 3: guest CPU usage at equal vs lowest priority "
        f"(mean gap {result.mean_gap * 100:.1f} pp)"
    )
    return render_table(headers, rows, title=title)


def render_figure4(result: Figure4Result) -> str:
    guests = sorted({c.guest for c in result.cells})
    hosts = sorted({c.host for c in result.cells})
    blocks = []
    for nice in sorted({c.guest_nice for c in result.cells}):
        headers = ["host"] + guests
        rows = []
        for h in hosts:
            row = [h]
            for g in guests:
                cell = result.cell(g, h, nice)
                star = "*" if cell.thrashing else ""
                row.append(f"{_pct(cell.reduction)}{star}")
            rows.append(row)
        blocks.append(
            render_table(
                headers,
                rows,
                title=f"Figure 4({'a' if nice == 0 else 'b'}): guest priority "
                f"{nice} (* = memory thrashing)",
            )
        )
    return "\n\n".join(blocks)


def render_table2(b: CauseBreakdown) -> str:
    freq = b.frequency_ranges()
    pct = b.percentage_ranges()
    headers = ["Categories", "Total", "CPU contention", "Memory contention", "URR"]
    rows = [
        [
            "Frequency",
            _fmt_range(freq["total"]),
            _fmt_range(freq["cpu"]),
            _fmt_range(freq["memory"]),
            _fmt_range(freq["revocation"]),
        ],
        [
            "Percentage",
            "100%",
            _fmt_pct_range(pct["cpu"]),
            _fmt_pct_range(pct["memory"]),
            _fmt_pct_range(pct["revocation"]),
        ],
    ]
    extra = (
        f"reboot share of URR: {b.reboot_share_of_urr * 100:.0f}% "
        f"(paper: ~90%); UEC share overall: {b.uec_share * 100:.0f}%"
    )
    return (
        render_table(headers, rows, title="Table 2: unavailability by cause")
        + "\n"
        + extra
    )


def render_figure6(dist: IntervalDistribution) -> str:
    grid, wk, we = dist.cdf_series()
    headers = ["length", "weekday CDF", "weekend CDF"]
    rows = [
        [fmt_duration(h * 3600), f"{wk[i]:.3f}", f"{we[i]:.3f}"]
        for i, h in enumerate(grid)
        if i % 2 == 0
    ]
    lm = dist.landmarks()
    title = (
        "Figure 6: availability-interval length CDF "
        f"(weekday mean {lm['weekday_mean_h']:.2f}h, "
        f"weekend mean {lm['weekend_mean_h']:.2f}h, "
        f"{lm['frac_below_5min'] * 100:.1f}% below 5min)"
    )
    return render_table(headers, rows, title=title)


def render_figure7(pattern: DailyPattern) -> str:
    blocks = []
    for weekend, label in ((False, "Weekdays"), (True, "Weekends")):
        mean = pattern.mean_profile(weekend=weekend)
        lo, hi = pattern.range_profile(weekend=weekend)
        headers = ["hour", "mean", "min", "max"]
        rows = [
            [f"{h + 1:d}", f"{mean[h]:.1f}", f"{lo[h]:d}", f"{hi[h]:d}"]
            for h in range(24)
        ]
        dev = pattern.deviation_summary(weekend=weekend)
        blocks.append(
            render_table(
                headers,
                rows,
                title=f"Figure 7 ({label}): unavailability per hour "
                f"(cross-day CV {dev['mean_cv']:.2f})",
            )
        )
    return "\n\n".join(blocks)


def _fmt_range(r: tuple[int, int]) -> str:
    return f"{r[0]}-{r[1]}"


def _fmt_pct_range(r: tuple[float, float]) -> str:
    return f"{100 * r[0]:.0f}-{100 * r[1]:.0f}%"
