"""Programmatic comparison against the paper's published landmarks.

``check_paper_landmarks`` evaluates a generated trace dataset against every
quantitative claim of Section 5 and returns pass/fail per landmark with the
measured value.  The integration tests and EXPERIMENTS.md are built on it,
so drift in the generator or detector is caught immediately.

Landmarks use the paper's own tolerance: ranges are the printed Table 2
ranges; figure-derived numbers ("about 60%", "close to 3 hours") get
explicitly documented slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..traces.dataset import TraceDataset
from .causes import cause_breakdown
from .daily import daily_pattern
from .intervals import interval_distribution

__all__ = ["LandmarkCheck", "check_paper_landmarks", "evaluate_landmarks"]


@dataclass(frozen=True)
class LandmarkCheck:
    """One paper claim vs our measurement."""

    name: str
    paper: str
    measured: float
    lo: float
    hi: float

    @property
    def ok(self) -> bool:
        return self.lo <= self.measured <= self.hi

    def __str__(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        return (
            f"[{mark}] {self.name}: measured {self.measured:.3f} "
            f"(accept [{self.lo:.3f}, {self.hi:.3f}]; paper: {self.paper})"
        )


def check_paper_landmarks(
    dataset: TraceDataset, *, n_machines: Optional[int] = None
) -> list[LandmarkCheck]:
    """Evaluate every Section 5 landmark on a dataset.

    Acceptance bands embed the reproduction tolerance: hard Table 2 ranges
    are used as-is (with a small slack for seed-to-seed variation); CDF
    landmarks read off figures get a wider band.
    """
    return evaluate_landmarks(
        cause_breakdown(dataset),
        interval_distribution(dataset),
        daily_pattern(dataset),
        span=dataset.span,
        n_machines=n_machines or dataset.n_machines,
    )


def evaluate_landmarks(
    breakdown, dist, pattern, *, span: float, n_machines: int
) -> list[LandmarkCheck]:
    """Evaluate the landmarks on already-computed analysis objects.

    ``breakdown``/``dist``/``pattern`` may be the monolithic results or
    the streaming accumulators' finalized counterparts — only the Table 2
    summaries, ``dist.landmarks()``, and the Figure 7 profile methods are
    touched, which both variants provide.
    """
    checks: list[LandmarkCheck] = []

    b = breakdown
    freq = b.frequency_ranges()
    pct = b.percentage_ranges()
    scale = span / (92 * 24 * 3600.0)  # tolerate shorter test traces

    def add(name: str, paper: str, measured: float, lo: float, hi: float) -> None:
        checks.append(LandmarkCheck(name, paper, float(measured), lo, hi))

    add(
        "table2.total_per_machine_mean",
        "405-453 per machine over 3 months",
        b.totals.mean() / scale,
        395.0,
        465.0,
    )
    add("table2.cpu_share_min", "69-79%", pct["cpu"][0], 0.64, 0.82)
    add("table2.cpu_share_max", "69-79%", pct["cpu"][1], 0.66, 0.84)
    add("table2.memory_share_min", "19-30%", pct["memory"][0], 0.15, 0.33)
    add("table2.memory_share_max", "19-30%", pct["memory"][1], 0.17, 0.35)
    add("table2.urr_share_max", "0-3%", pct["revocation"][1], 0.0, 0.04)
    add("table2.reboot_share_of_urr", "~90%", b.reboot_share_of_urr, 0.75, 1.0)

    lm = dist.landmarks()
    add(
        "fig6.weekday_mean_h",
        "close to 3 hours",
        lm["weekday_mean_h"],
        2.5,
        4.3,
    )
    add("fig6.weekend_mean_h", "above 5 hours", lm["weekend_mean_h"], 4.5, 7.0)
    add(
        "fig6.weekday_mass_2_4h",
        "about 60% between 2 and 4 hours",
        lm["weekday_frac_2_4h"],
        0.40,
        0.75,
    )
    add(
        "fig6.weekend_mass_4_6h",
        "about 60% between 4 and 6 hours",
        lm["weekend_frac_4_6h"],
        0.35,
        0.75,
    )
    add(
        "fig6.below_5min",
        "about 5% shorter than 5 minutes",
        lm["frac_below_5min"],
        0.02,
        0.09,
    )
    add(
        "fig6.weekday_flat_5min_2h",
        "curves relatively flat between 5 minutes and 2 hours",
        lm["weekday_frac_5min_2h"],
        0.0,
        0.15,
    )

    spike = pattern.updatedb_spike()
    add(
        "fig7.updatedb_spike_weekday",
        "20 (= all machines) between 4 and 5 AM",
        spike["weekday"],
        0.9 * n_machines,
        1.05 * n_machines,
    )
    add(
        "fig7.updatedb_spike_weekend",
        "20 (= all machines) between 4 and 5 AM",
        spike["weekend"],
        0.9 * n_machines,
        1.05 * n_machines,
    )
    dev_wd = pattern.deviation_summary(weekend=False)
    add(
        "fig7.weekday_cross_day_cv",
        "deviations over the same window across weekdays are small",
        dev_wd["mean_cv"],
        0.0,
        0.45,
    )
    # Daytime counts dominate night counts (host-workload correlation).
    mean_wd = pattern.mean_profile(weekend=False)
    day_mean = float(mean_wd[10:22].mean())
    night_mean = float(mean_wd[[0, 1, 2, 3, 5, 6, 7]].mean())
    add(
        "fig7.day_night_contrast",
        "unavailability happens more frequently during the day after 10 AM",
        day_mean / max(night_mean, 1e-9),
        1.5,
        50.0,
    )
    # Weekday daytime exceeds weekend daytime.
    mean_we = pattern.mean_profile(weekend=True)
    add(
        "fig7.weekday_vs_weekend_daytime",
        "for the same window, more unavailability on weekdays than weekends",
        day_mean / max(float(mean_we[10:22].mean()), 1e-9),
        1.1,
        5.0,
    )
    return checks
