"""Statistical helpers shared by the trace analyses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import ReproError

__all__ = ["Ecdf", "ecdf", "bootstrap_ci", "summarize", "SummaryStats"]


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF: sorted values and cumulative probabilities."""

    values: np.ndarray
    probs: np.ndarray

    def at(self, x: float | np.ndarray) -> np.ndarray:
        """P(X <= x), evaluated by step interpolation."""
        return np.searchsorted(self.values, np.asarray(x), side="right") / len(
            self.values
        )

    def quantile(self, q: float | np.ndarray) -> np.ndarray:
        """Inverse CDF (empirical quantile)."""
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ReproError("quantiles must be in [0, 1]")
        idx = np.clip(
            np.ceil(q * len(self.values)).astype(int) - 1, 0, len(self.values) - 1
        )
        return self.values[idx]

    def mass_between(self, lo: float, hi: float) -> float:
        """P(lo <= X <= hi)."""
        return float(self.at(hi) - self.at(np.nextafter(lo, -np.inf)))


def ecdf(data: Sequence[float] | np.ndarray) -> Ecdf:
    """Build an empirical CDF from observations."""
    arr = np.sort(np.asarray(data, dtype=float))
    if arr.size == 0:
        raise ReproError("ecdf needs at least one observation")
    if np.any(~np.isfinite(arr)):
        raise ReproError("ecdf data must be finite")
    return Ecdf(values=arr, probs=np.arange(1, arr.size + 1) / arr.size)


def bootstrap_ci(
    data: Sequence[float] | np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    n_boot: int = 2000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> tuple[float, float, float]:
    """(point estimate, ci_low, ci_high) via the percentile bootstrap."""
    arr = np.asarray(data, dtype=float)
    if arr.size == 0:
        raise ReproError("bootstrap_ci needs data")
    if not 0 < confidence < 1:
        raise ReproError("confidence must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    point = float(statistic(arr))
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    stats = np.array([statistic(arr[row]) for row in idx])
    alpha = (1 - confidence) / 2
    lo, hi = np.quantile(stats, [alpha, 1 - alpha])
    return point, float(lo), float(hi)


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(data: Sequence[float] | np.ndarray) -> SummaryStats:
    """Basic summary statistics of a sample."""
    arr = np.asarray(data, dtype=float)
    if arr.size == 0:
        raise ReproError("summarize needs data")
    return SummaryStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )
