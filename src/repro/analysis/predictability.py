"""Direct quantification of the paper's predictability observation.

Section 5.3's key sentence: "the daily patterns of resource availability
are comparable to those in the recent history."  Figure 7 shows it as
small range bars; this module measures it:

* **profile similarity** — correlation/distance between the hourly
  unavailability profiles of pairs of days, split by whether the days
  share a type (weekday/weekend).  Predictability requires same-type
  similarity to be high and markedly above cross-type similarity.
* **history horizon** — how similarity decays with the number of days
  separating the pair: flat decay means "recent history" can be several
  weeks old, justifying multi-day averaging windows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..traces.dataset import TraceDataset
from .daily import daily_pattern

__all__ = ["PredictabilityReport", "predictability_report"]


@dataclass(frozen=True)
class PredictabilityReport:
    """Pairwise day-profile similarity statistics."""

    #: Mean Pearson correlation between hourly profiles of day pairs.
    same_type_correlation: float
    cross_type_correlation: float
    #: Mean L1 distance between profiles, normalized by the mean profile
    #: mass (0 = identical days).
    same_type_distance: float
    cross_type_distance: float
    #: Mean same-type correlation bucketed by pair separation (weeks).
    correlation_by_week_lag: tuple[float, ...]

    @property
    def separability(self) -> float:
        """Same-type minus cross-type correlation: > 0 means day type is
        a real conditioning variable, the premise of the paper's
        weekday/weekend split."""
        return self.same_type_correlation - self.cross_type_correlation

    def summary(self) -> str:
        lags = ", ".join(f"{c:.2f}" for c in self.correlation_by_week_lag)
        return (
            f"same-type day-profile correlation {self.same_type_correlation:.2f} "
            f"(cross-type {self.cross_type_correlation:.2f}); "
            f"normalized L1 distance {self.same_type_distance:.2f} vs "
            f"{self.cross_type_distance:.2f}; "
            f"same-type correlation by week lag: [{lags}]"
        )


def predictability_report(
    dataset: TraceDataset, *, max_week_lag: int = 4
) -> PredictabilityReport:
    """Compute day-profile similarity statistics for a trace."""
    if dataset.n_days < 14:
        raise ReproError("predictability analysis needs at least two weeks")
    pattern = daily_pattern(dataset)
    profiles = pattern.counts.astype(float)  # (days, 24)
    weekend = pattern.is_weekend_day
    n_days = profiles.shape[0]

    same_corr, cross_corr = [], []
    same_dist, cross_dist = [], []
    lag_corr: dict[int, list[float]] = {k: [] for k in range(1, max_week_lag + 1)}
    mean_mass = profiles.sum(axis=1).mean()
    if mean_mass <= 0:
        raise ReproError("trace contains no events")

    for i in range(n_days):
        for j in range(i + 1, n_days):
            c = _safe_corr(profiles[i], profiles[j])
            d = float(np.abs(profiles[i] - profiles[j]).sum()) / mean_mass
            if weekend[i] == weekend[j]:
                same_corr.append(c)
                same_dist.append(d)
                week_lag = round((j - i) / 7)
                if 1 <= week_lag <= max_week_lag and (j - i) % 7 == 0:
                    lag_corr[week_lag].append(c)
            else:
                cross_corr.append(c)
                cross_dist.append(d)

    return PredictabilityReport(
        same_type_correlation=float(np.mean(same_corr)),
        cross_type_correlation=float(np.mean(cross_corr)),
        same_type_distance=float(np.mean(same_dist)),
        cross_type_distance=float(np.mean(cross_dist)),
        correlation_by_week_lag=tuple(
            float(np.mean(lag_corr[k])) if lag_corr[k] else float("nan")
            for k in range(1, max_week_lag + 1)
        ),
    )


def _safe_corr(a: np.ndarray, b: np.ndarray) -> float:
    sa, sb = a.std(), b.std()
    if sa == 0 or sb == 0:
        return 1.0 if np.array_equal(a, b) else 0.0
    return float(np.corrcoef(a, b)[0, 1])
