"""Mergeable streaming accumulators for the paper's fleet analyses.

Every Section 5 artifact — Table 2 cause counts, the Figure 6
interval-length CDFs, the Figure 7 hourly occurrence histogram, and the
interval summary statistics — can be computed shard-by-shard: each
accumulator supports

* ``update(shard_dataset, ...)`` — fold one shard's events in;
* ``merge(other)`` — combine two partial accumulators;
* ``finalize()`` — produce the analysis result object.

so a fleet far too large to hold in memory is analyzed one shard at a
time (constant memory) or reduced across workers.

Exactness contract
------------------
The streaming results are *numerically identical* to the monolithic
single-pass analyses, with one documented exception:

* **exact (bit-identical):** every integer-counted statistic — the
  per-machine Table 2 arrays, the Figure 7 ``(n_days, 24)`` count
  matrix, every CDF value on the fixed grid (an integer count divided
  once by ``n``), and every landmark *fraction* (``frac_below_5min``,
  the 2–4 h / 4–6 h masses, …).  Integer addition commutes, so any
  shard partition and any merge order gives the same counts, hence the
  same quotients.
* **float-tolerance:** interval-length *means* (``weekday_mean_h``,
  ``weekend_mean_h``) and the summary mean/std.  These are float sums
  whose grouping differs between the monolithic ``np.mean`` (pairwise
  summation over one array) and the streamed per-shard partial sums, so
  they agree only to relative tolerance :data:`MEAN_RTOL` (~1e-9 —
  far below the 2-decimal rendering the reports use).  The property
  suite (``tests/test_accumulators_property.py``) pins both behaviors.

The Figure 6 CDF is kept as cumulative counts on :data:`FIG6_GRID`, the
union of the two grids the renderers evaluate (the 49-point table grid
of :func:`repro.analysis.report.render_figure6` and the 64-point chart
grid of :func:`repro.analysis.ascii.render_figure6_chart`); evaluating a
streamed CDF anywhere else raises, rather than silently interpolating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ReproError
from ..traces.dataset import TraceDataset
from ..traces.records import EventColumns
from ..units import DAY, HOUR, MINUTE
from .causes import CauseBreakdown
from .daily import DailyPattern, daily_pattern

__all__ = [
    "FIG6_GRID",
    "MEAN_RTOL",
    "CauseAccumulator",
    "DailyPatternAccumulator",
    "FleetAccumulator",
    "FleetAnalysis",
    "IntervalCdfAccumulator",
    "StreamingIntervalDistribution",
    "StreamingSummary",
    "SummaryAccumulator",
    "interval_columns",
    "merge_reduce",
]

#: Documented relative tolerance for float-summed statistics (means,
#: std); integer-counted statistics are exact.  See the module docstring.
MEAN_RTOL = 1e-9

#: The fixed evaluation grid (hours) for streamed Figure 6 CDFs: the
#: union of the 49-point table grid and the 64-point chart grid, so both
#: renderers read exact integer-count values.
FIG6_GRID: np.ndarray = np.union1d(
    np.linspace(0.0, 12.0, 49), np.linspace(0.0, 12.0, 64)
)
FIG6_GRID.setflags(write=False)

_FIVE_MIN_H = 5 * MINUTE / HOUR


def merge_reduce(accumulators: Sequence["_MergeableT"]) -> "_MergeableT":
    """Tree-reduce a sequence of accumulators with pairwise ``merge``.

    Associativity is the whole point of the accumulator design, so the
    reduction shape is free to be a balanced tree (what a parallel
    reduction over workers produces) rather than a left fold.  Raises on
    an empty sequence.
    """
    accs = list(accumulators)
    if not accs:
        raise ReproError("merge_reduce needs at least one accumulator")
    while len(accs) > 1:
        nxt = []
        for i in range(0, len(accs) - 1, 2):
            accs[i].merge(accs[i + 1])
            nxt.append(accs[i])
        if len(accs) % 2:
            nxt.append(accs[-1])
        accs = nxt
    return accs[0]


class CauseAccumulator:
    """Streams :func:`repro.analysis.causes.cause_breakdown` (Table 2).

    Holds the four per-machine ``int64`` count arrays for the *whole*
    fleet (a few bytes per machine); each shard fills its machine range.
    Integer-exact under any partition and merge order.
    """

    def __init__(self, n_machines: int) -> None:
        if n_machines <= 0:
            raise ReproError("CauseAccumulator needs n_machines > 0")
        self.n_machines = n_machines
        self.cpu = np.zeros(n_machines, dtype=np.int64)
        self.memory = np.zeros(n_machines, dtype=np.int64)
        self.revocation = np.zeros(n_machines, dtype=np.int64)
        self.reboots = np.zeros(n_machines, dtype=np.int64)

    def update(self, dataset: TraceDataset, machine_lo: int = 0) -> None:
        """Fold in one shard whose machine 0 is fleet machine ``machine_lo``."""
        from ..core.states import AvailState

        if machine_lo < 0 or machine_lo + dataset.n_machines > self.n_machines:
            raise ReproError(
                f"shard range [{machine_lo}, "
                f"{machine_lo + dataset.n_machines}) outside fleet "
                f"[0, {self.n_machines})"
            )
        for e in dataset.events:
            mid = e.machine_id + machine_lo
            if e.state is AvailState.S3:
                self.cpu[mid] += 1
            elif e.state is AvailState.S4:
                self.memory[mid] += 1
            else:
                self.revocation[mid] += 1
                if e.is_reboot:
                    self.reboots[mid] += 1

    def update_columns(self, cols: EventColumns, machine_lo: int = 0) -> None:
        """Column-native :meth:`update`: bincounts over the state codes.

        Bit-identical to the event-object fold — every statistic here is
        an integer count and integer addition commutes.
        """
        from ..core.events import REBOOT_MAX_DURATION

        if machine_lo < 0 or machine_lo + cols.n_machines > self.n_machines:
            raise ReproError(
                f"shard range [{machine_lo}, "
                f"{machine_lo + cols.n_machines}) outside fleet "
                f"[0, {self.n_machines})"
            )
        ev = cols.events
        mid = ev["machine_id"].astype(np.int64) + machine_lo
        state = ev["state"]

        def counts(mask: np.ndarray) -> np.ndarray:
            return np.bincount(mid[mask], minlength=self.n_machines)

        self.cpu += counts(state == 3)
        self.memory += counts(state == 4)
        urr = state == 5
        self.revocation += counts(urr)
        self.reboots += counts(urr & (ev["end"] - ev["start"] < REBOOT_MAX_DURATION))

    def merge(self, other: "CauseAccumulator") -> "CauseAccumulator":
        if other.n_machines != self.n_machines:
            raise ReproError("cannot merge accumulators of different fleets")
        self.cpu += other.cpu
        self.memory += other.memory
        self.revocation += other.revocation
        self.reboots += other.reboots
        return self

    def finalize(self) -> CauseBreakdown:
        return CauseBreakdown(
            totals=self.cpu + self.memory + self.revocation,
            cpu=self.cpu.copy(),
            memory=self.memory.copy(),
            revocation=self.revocation.copy(),
            reboots=self.reboots.copy(),
        )


class _SideCounts:
    """One day type's streamed interval statistics (weekday or weekend)."""

    __slots__ = ("n", "total_h", "cum", "c_2_4", "c_4_6", "c_lt_5min", "c_5min_2")

    def __init__(self, grid_size: int) -> None:
        self.n = 0
        self.total_h = 0.0
        self.cum = np.zeros(grid_size, dtype=np.int64)
        self.c_2_4 = 0
        self.c_4_6 = 0
        self.c_lt_5min = 0
        self.c_5min_2 = 0

    def add(self, hours: np.ndarray, grid: np.ndarray) -> None:
        if hours.size == 0:
            return
        self.n += int(hours.size)
        self.total_h += float(hours.sum())
        # count(v <= x) per grid point — the same comparison Ecdf.at
        # makes, so summed counts reproduce the monolithic CDF exactly.
        self.cum += np.searchsorted(np.sort(hours), grid, side="right")
        self.c_2_4 += int(np.count_nonzero((hours >= 2) & (hours <= 4)))
        self.c_4_6 += int(np.count_nonzero((hours >= 4) & (hours <= 6)))
        self.c_lt_5min += int(np.count_nonzero(hours < _FIVE_MIN_H))
        self.c_5min_2 += int(
            np.count_nonzero((hours >= _FIVE_MIN_H) & (hours < 2))
        )

    def merge(self, other: "_SideCounts") -> None:
        self.n += other.n
        self.total_h += other.total_h
        self.cum += other.cum
        self.c_2_4 += other.c_2_4
        self.c_4_6 += other.c_4_6
        self.c_lt_5min += other.c_lt_5min
        self.c_5min_2 += other.c_5min_2


@dataclass(frozen=True)
class StreamingIntervalDistribution:
    """Figure 6 distributions reconstructed from streamed counts.

    Duck-type compatible with
    :class:`repro.analysis.intervals.IntervalDistribution` where the
    renderers and landmark checks need it (``cdf_series``,
    ``landmarks``, the side counts) — but CDFs exist only on the fixed
    :data:`FIG6_GRID` and raw interval arrays are gone.
    """

    grid: np.ndarray
    weekday_cum: np.ndarray
    weekend_cum: np.ndarray
    weekday_n: int
    weekend_n: int
    weekday_total_h: float
    weekend_total_h: float
    weekday_brackets: dict
    weekend_brackets: dict

    @property
    def weekday_count(self) -> int:
        return self.weekday_n

    @property
    def weekend_count(self) -> int:
        return self.weekend_n

    def landmarks(self) -> dict[str, float]:
        """The Figure 6 landmark dict (same keys as the monolithic one).

        Fractions are exact integer-count quotients; the two means are
        float sums (tolerance :data:`MEAN_RTOL` vs monolithic).  Empty
        sides yield NaN, matching ``np.mean`` of an empty array.
        """
        wk_n, we_n = self.weekday_n, self.weekend_n
        both_n = wk_n + we_n
        nan = float("nan")
        below = self.weekday_brackets["lt_5min"] + self.weekend_brackets["lt_5min"]
        return {
            "weekday_mean_h": self.weekday_total_h / wk_n if wk_n else nan,
            "weekend_mean_h": self.weekend_total_h / we_n if we_n else nan,
            "weekday_frac_2_4h": self.weekday_brackets["2_4"] / wk_n
            if wk_n
            else nan,
            "weekend_frac_4_6h": self.weekend_brackets["4_6"] / we_n
            if we_n
            else nan,
            "frac_below_5min": below / both_n if both_n else nan,
            "weekday_frac_5min_2h": self.weekday_brackets["5min_2"] / wk_n
            if wk_n
            else nan,
            "weekend_frac_5min_2h": self.weekend_brackets["5min_2"] / we_n
            if we_n
            else nan,
        }

    def cdf_series(
        self, grid_hours: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(grid, weekday CDF, weekend CDF) on (a subset of) the fixed grid.

        Every requested point must lie exactly on :data:`FIG6_GRID` —
        the streamed CDF holds counts only there, and interpolating
        would silently break the exactness contract.
        """
        if self.weekday_n == 0 or self.weekend_n == 0:
            raise ReproError("streamed CDF needs observations on both sides")
        if grid_hours is None:
            grid_hours = np.linspace(0.0, 12.0, 49)
        grid_hours = np.asarray(grid_hours, dtype=float)
        idx = np.searchsorted(self.grid, grid_hours)
        ok = (idx < self.grid.size) & (
            self.grid[np.minimum(idx, self.grid.size - 1)] == grid_hours
        )
        if not bool(np.all(ok)):
            raise ReproError(
                "streamed Figure 6 CDF evaluated off its fixed grid; "
                "use points of repro.analysis.accumulators.FIG6_GRID"
            )
        return (
            grid_hours,
            self.weekday_cum[idx] / self.weekday_n,
            self.weekend_cum[idx] / self.weekend_n,
        )


class IntervalCdfAccumulator:
    """Streams :func:`repro.analysis.intervals.interval_distribution`.

    Per day type it keeps the interval count, the float sum of lengths,
    cumulative counts on :data:`FIG6_GRID`, and the landmark bracket
    counts — constant memory regardless of fleet size.
    """

    def __init__(self, grid: Optional[np.ndarray] = None) -> None:
        self.grid = FIG6_GRID if grid is None else np.asarray(grid, dtype=float)
        self._weekday = _SideCounts(self.grid.size)
        self._weekend = _SideCounts(self.grid.size)

    def update(self, dataset: TraceDataset) -> None:
        """Fold in one shard's availability intervals (censored excluded)."""
        weekday, weekend = [], []
        for iv in dataset.all_intervals(include_censored=False):
            hours = iv.length / HOUR
            if dataset.is_weekend_time(iv.start):
                weekend.append(hours)
            else:
                weekday.append(hours)
        self._weekday.add(np.asarray(weekday, dtype=float), self.grid)
        self._weekend.add(np.asarray(weekend, dtype=float), self.grid)

    def update_hours(self, hours: np.ndarray, weekend: np.ndarray) -> None:
        """Fold in precomputed interval lengths (see :func:`interval_columns`).

        ``hours`` must be in the :meth:`update` emission order (machines
        ascending, intervals time-ordered within a machine) so the
        float-summed side totals reproduce the object fold bit-for-bit.
        """
        self._weekday.add(hours[~weekend], self.grid)
        self._weekend.add(hours[weekend], self.grid)

    def merge(self, other: "IntervalCdfAccumulator") -> "IntervalCdfAccumulator":
        if other.grid.size != self.grid.size or not np.array_equal(
            other.grid, self.grid
        ):
            raise ReproError("cannot merge accumulators with different grids")
        self._weekday.merge(other._weekday)
        self._weekend.merge(other._weekend)
        return self

    def finalize(self) -> StreamingIntervalDistribution:
        def brackets(s: _SideCounts) -> dict:
            return {
                "2_4": s.c_2_4,
                "4_6": s.c_4_6,
                "lt_5min": s.c_lt_5min,
                "5min_2": s.c_5min_2,
            }

        return StreamingIntervalDistribution(
            grid=self.grid,
            weekday_cum=self._weekday.cum.copy(),
            weekend_cum=self._weekend.cum.copy(),
            weekday_n=self._weekday.n,
            weekend_n=self._weekend.n,
            weekday_total_h=self._weekday.total_h,
            weekend_total_h=self._weekend.total_h,
            weekday_brackets=brackets(self._weekday),
            weekend_brackets=brackets(self._weekend),
        )


class DailyPatternAccumulator:
    """Streams :func:`repro.analysis.daily.daily_pattern` (Figure 7).

    The ``(n_days, 24)`` count matrix is integer-additive across shards
    (events are partitioned by machine), so the streamed pattern is
    bit-identical to the monolithic one.
    """

    def __init__(self, n_days: int, start_weekday: int) -> None:
        # n_days == 0 is legal: a sub-day trace has an empty (0, 24)
        # matrix, exactly like the monolithic daily_pattern.
        if n_days < 0:
            raise ReproError("DailyPatternAccumulator needs n_days >= 0")
        self.n_days = n_days
        self.start_weekday = start_weekday
        self.counts = np.zeros((n_days, 24), dtype=np.int64)

    def update(self, dataset: TraceDataset) -> None:
        if (
            dataset.n_days != self.n_days
            or dataset.start_weekday != self.start_weekday
        ):
            raise ReproError(
                "shard span/start_weekday disagrees with the accumulator"
            )
        self.counts += daily_pattern(dataset).counts

    def update_columns(self, cols: EventColumns) -> None:
        """Column-native :meth:`update` via a difference-array sweep.

        An event overlapping wall-clock hours ``[first, last]`` adds one
        to each cell — contiguous on the flattened ``(day, hour)`` grid,
        so all events become +1/-1 boundary marks and one ``cumsum``.
        The hour indices use the same float arithmetic as
        :func:`repro.analysis.daily.daily_pattern`, and the counts are
        integers, so the result is bit-identical to the event fold.
        """
        if cols.n_days != self.n_days or cols.start_weekday != self.start_weekday:
            raise ReproError(
                "shard span/start_weekday disagrees with the accumulator"
            )
        n_hours = self.n_days * 24
        if n_hours == 0 or len(cols) == 0:
            return
        ev = cols.events
        h_first = (ev["start"] // HOUR).astype(np.int64)
        h_last = ((np.minimum(ev["end"], cols.span) - 1e-9) // HOUR).astype(
            np.int64
        )
        keep = (h_last >= h_first) & (h_first < n_hours)
        lo = h_first[keep]
        hi = np.minimum(h_last[keep], n_hours - 1)
        marks = np.zeros(n_hours + 1, dtype=np.int64)
        np.add.at(marks, lo, 1)
        np.add.at(marks, hi + 1, -1)
        self.counts += np.cumsum(marks[:-1]).reshape(self.n_days, 24)

    def merge(self, other: "DailyPatternAccumulator") -> "DailyPatternAccumulator":
        if (
            other.n_days != self.n_days
            or other.start_weekday != self.start_weekday
        ):
            raise ReproError("cannot merge accumulators of different spans")
        self.counts += other.counts
        return self

    def finalize(self) -> DailyPattern:
        weekend = np.array(
            [(d + self.start_weekday) % 7 >= 5 for d in range(self.n_days)],
            dtype=bool,
        )
        return DailyPattern(counts=self.counts.copy(), is_weekend_day=weekend)


@dataclass(frozen=True)
class StreamingSummary:
    """Mergeable summary of availability-interval lengths (hours).

    The median of :class:`repro.analysis.stats.SummaryStats` is absent —
    an exact median cannot be merged in constant memory; quantiles are
    available to grid resolution via the streamed CDF instead.
    """

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float


class SummaryAccumulator:
    """Chan-style mergeable mean/variance/min/max of interval lengths."""

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def update(self, dataset: TraceDataset) -> None:
        values = np.asarray(
            [
                iv.length / HOUR
                for iv in dataset.all_intervals(include_censored=False)
            ],
            dtype=float,
        )
        if values.size == 0:
            return
        other = SummaryAccumulator()
        other.n = int(values.size)
        other.mean = float(values.mean())
        other.m2 = float(((values - other.mean) ** 2).sum())
        other.minimum = float(values.min())
        other.maximum = float(values.max())
        self.merge(other)

    def update_hours(self, hours: np.ndarray) -> None:
        """Fold in precomputed interval lengths (see :func:`interval_columns`).

        ``hours`` must be in :meth:`update`'s emission order — the
        per-shard mean/M2 are float reductions over the same array, so
        the Chan merge sees identical partials.
        """
        if hours.size == 0:
            return
        other = SummaryAccumulator()
        other.n = int(hours.size)
        other.mean = float(hours.mean())
        other.m2 = float(((hours - other.mean) ** 2).sum())
        other.minimum = float(hours.min())
        other.maximum = float(hours.max())
        self.merge(other)

    def merge(self, other: "SummaryAccumulator") -> "SummaryAccumulator":
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        # Chan et al. parallel update of (n, mean, M2).
        n = self.n + other.n
        delta = other.mean - self.mean
        self.mean += delta * other.n / n
        self.m2 += other.m2 + delta * delta * self.n * other.n / n
        self.n = n
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def finalize(self) -> StreamingSummary:
        if self.n == 0:
            nan = float("nan")
            return StreamingSummary(n=0, mean=nan, std=nan, minimum=nan, maximum=nan)
        std = (self.m2 / (self.n - 1)) ** 0.5 if self.n > 1 else 0.0
        return StreamingSummary(
            n=self.n,
            mean=self.mean,
            std=std,
            minimum=self.minimum,
            maximum=self.maximum,
        )


def interval_columns(cols: EventColumns) -> tuple[np.ndarray, np.ndarray]:
    """Non-censored availability intervals of a shard, from its columns.

    Returns ``(hours, is_weekend)`` in exactly the order
    ``TraceDataset.all_intervals(include_censored=False)`` yields —
    machines ascending, intervals time-ordered within each machine — and
    with the identical float arithmetic, so the interval accumulators'
    float sums are bit-identical to the event-object fold.

    Mirrors :func:`repro.core.intervals.availability_intervals` per
    machine: an interval opens at the running maximum of clipped event
    ends (the cursor) and closes at the next event's start; the
    leading and trailing boundary intervals are censored and dropped.
    """
    ev = cols.events
    span = cols.span
    bounds = cols.machine_bounds()
    hours_parts: list[np.ndarray] = []
    weekend_parts: list[np.ndarray] = []
    for m in range(cols.n_machines):
        a, b = int(bounds[m]), int(bounds[m + 1])
        if a == b:
            continue  # no events: the single [0, span] interval is censored
        starts = ev["start"][a:b]
        ends = ev["end"][a:b]
        overlap = starts[1:] < ends[:-1] - 1e-9
        if overlap.any():
            i = int(np.argmax(overlap))
            from ..errors import TraceError

            raise TraceError(
                f"overlapping events: [{starts[i]},{ends[i]}] and "
                f"[{starts[i + 1]},{ends[i + 1]}]"
            )
        clipped = np.minimum(ends, span)
        cursor = np.empty_like(clipped)
        cursor[0] = 0.0
        np.maximum.accumulate(clipped[:-1], out=cursor[1:])
        lo = np.maximum(starts, 0.0)
        emit = (lo > cursor + 1e-9) & (cursor < span)
        emit[0] = False  # the interval before the first event is censored
        if not emit.any():
            continue
        iv_start = cursor[emit]
        iv_len = np.minimum(lo[emit], span) - iv_start
        hours_parts.append(iv_len / HOUR)
        day = (iv_start // DAY).astype(np.int64)
        weekend_parts.append((day + cols.start_weekday) % 7 >= 5)
    if not hours_parts:
        empty = np.empty(0, dtype=float)
        return empty, np.empty(0, dtype=bool)
    return np.concatenate(hours_parts), np.concatenate(weekend_parts)


@dataclass(frozen=True)
class FleetAnalysis:
    """Everything the streaming analysis produces for a fleet."""

    breakdown: CauseBreakdown
    intervals: StreamingIntervalDistribution
    pattern: DailyPattern
    summary: StreamingSummary
    n_machines: int
    span: float
    start_weekday: int


class FleetAccumulator:
    """All four Section 5 accumulators folded together per shard."""

    def __init__(self, n_machines: int, span: float, start_weekday: int) -> None:
        from ..units import DAY

        self.n_machines = n_machines
        self.span = span
        self.start_weekday = start_weekday
        self.causes = CauseAccumulator(n_machines)
        self.intervals = IntervalCdfAccumulator()
        self.daily = DailyPatternAccumulator(int(span // DAY), start_weekday)
        self.summary = SummaryAccumulator()

    @classmethod
    def for_fleet(cls, fleet) -> "FleetAccumulator":
        """Sized for any object with n_machines/span/start_weekday."""
        return cls(fleet.n_machines, fleet.span, fleet.start_weekday)

    def update(self, dataset: TraceDataset, machine_lo: int = 0) -> None:
        """Fold in one shard (local machine ids; fleet offset given)."""
        if dataset.span != self.span:
            raise ReproError("shard span disagrees with the fleet accumulator")
        self.causes.update(dataset, machine_lo)
        self.intervals.update(dataset)
        self.daily.update(dataset)
        self.summary.update(dataset)

    def update_columns(self, cols: EventColumns, machine_lo: int = 0) -> None:
        """Column-native :meth:`update`: fold a shard straight from its
        (possibly memory-mapped) event columns.

        No per-event objects are materialized; results are bit-identical
        to :meth:`update` on the same shard (integer statistics exactly,
        float sums by identical arithmetic and order).  The availability
        intervals are derived once and shared by the CDF and summary
        accumulators.
        """
        if cols.span != self.span:
            raise ReproError("shard span disagrees with the fleet accumulator")
        self.causes.update_columns(cols, machine_lo)
        hours, weekend = interval_columns(cols)
        self.intervals.update_hours(hours, weekend)
        self.daily.update_columns(cols)
        self.summary.update_hours(hours)

    def merge(self, other: "FleetAccumulator") -> "FleetAccumulator":
        if (
            other.n_machines != self.n_machines
            or other.span != self.span
            or other.start_weekday != self.start_weekday
        ):
            raise ReproError("cannot merge accumulators of different fleets")
        self.causes.merge(other.causes)
        self.intervals.merge(other.intervals)
        self.daily.merge(other.daily)
        self.summary.merge(other.summary)
        return self

    def finalize(self) -> FleetAnalysis:
        return FleetAnalysis(
            breakdown=self.causes.finalize(),
            intervals=self.intervals.finalize(),
            pattern=self.daily.finalize(),
            summary=self.summary.finalize(),
            n_machines=self.n_machines,
            span=self.span,
            start_weekday=self.start_weekday,
        )


_MergeableT = object  # documentation alias: anything with .merge(other)
