"""Empirical state-transition structure (the edges of Figure 5).

Classifies a monitor-sample stream into the five states and counts the
sample-to-sample transitions and per-state dwell times.  Used to check
that generated traces respect the model's structure (e.g. availability
dominates; failure states are entered from availability far more often
than from each other) and as descriptive output for Figure 5's bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.model import MultiStateModel
from ..core.samples import SampleBatch
from ..errors import ReproError

__all__ = ["TransitionStats", "state_transitions"]

_STATES = ("S1", "S2", "S3", "S4", "S5")


@dataclass(frozen=True)
class TransitionStats:
    """Sample-level transition counts and state occupancy."""

    #: counts[i, j] = transitions from state i+1 to state j+1.
    counts: np.ndarray
    #: Fraction of samples spent in each state (S1..S5).
    occupancy: np.ndarray
    #: Mean dwell time per visit, seconds, per state (NaN if never seen).
    mean_dwell: np.ndarray

    def probability_matrix(self) -> np.ndarray:
        """Row-normalized transition probabilities (rows with no
        observations become uniform-NaN rows)."""
        totals = self.counts.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(totals > 0, self.counts / totals, np.nan)

    def rate_between(self, src: str, dst: str) -> float:
        """Transition probability from ``src`` to ``dst`` (e.g. 'S1','S2')."""
        i, j = _STATES.index(src), _STATES.index(dst)
        p = self.probability_matrix()
        return float(p[i, j])

    def render(self) -> str:
        from .report import render_table

        p = self.probability_matrix()
        rows = []
        for i, s in enumerate(_STATES):
            rows.append(
                [s]
                + [f"{p[i, j]:.4f}" if p[i, j] == p[i, j] else "-" for j in range(5)]
                + [f"{self.occupancy[i]:.1%}"]
            )
        return render_table(
            ["from\\to"] + list(_STATES) + ["occupancy"],
            rows,
            title="Empirical state-transition probabilities (per sample)",
        )


def state_transitions(
    batch: SampleBatch,
    model: MultiStateModel | None = None,
    *,
    period: float | None = None,
) -> TransitionStats:
    """Compute transition statistics for one machine's sample stream."""
    if len(batch) < 2:
        raise ReproError("need at least two samples")
    model = model or MultiStateModel()
    codes = model.classify_batch(batch)  # 1..5
    counts = np.zeros((5, 5), dtype=np.int64)
    np.add.at(counts, (codes[:-1] - 1, codes[1:] - 1), 1)

    occupancy = np.bincount(codes - 1, minlength=5) / len(codes)

    if period is None:
        period = float(np.median(np.diff(batch.times)))
    mean_dwell = np.full(5, np.nan)
    change = np.flatnonzero(np.diff(codes) != 0)
    starts = np.concatenate(([0], change + 1))
    ends = np.concatenate((change + 1, [len(codes)]))
    for s in range(1, 6):
        lengths = [
            (e - b) * period for b, e in zip(starts, ends) if codes[b] == s
        ]
        if lengths:
            mean_dwell[s - 1] = float(np.mean(lengths))
    return TransitionStats(
        counts=counts, occupancy=occupancy, mean_dwell=mean_dwell
    )
