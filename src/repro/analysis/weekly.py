"""Day-of-week structure of unavailability.

The paper splits days only into weekday/weekend; this utility resolves the
full Monday..Sunday profile — useful both to verify the binary split is
the right granularity (are Mondays like Thursdays?) and to expose effects
the binary view hides (e.g. Friday evenings emptying out).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..traces.dataset import TraceDataset
from .daily import daily_pattern

__all__ = ["WeekdayProfile", "weekday_profile"]

_DAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


@dataclass(frozen=True)
class WeekdayProfile:
    """Per-day-of-week unavailability statistics."""

    #: Mean daily event-hour count per day of week (Mon..Sun).
    daily_mean: np.ndarray
    #: Std across weeks per day of week.
    daily_std: np.ndarray
    #: Number of days observed per day of week.
    n_days: np.ndarray
    #: 7x7 correlation matrix between mean hourly profiles of the days.
    profile_correlation: np.ndarray

    def render(self) -> str:
        from .report import render_table

        rows = [
            [
                _DAY_NAMES[d],
                f"{self.daily_mean[d]:.1f}",
                f"{self.daily_std[d]:.1f}",
                str(int(self.n_days[d])),
            ]
            for d in range(7)
        ]
        return render_table(
            ["day", "mean events", "std", "days observed"],
            rows,
            title="Day-of-week unavailability profile",
        )

    def within_weekday_similarity(self) -> float:
        """Mean correlation among the Mon..Fri hourly profiles."""
        c = self.profile_correlation
        vals = [c[i, j] for i in range(5) for j in range(i + 1, 5)]
        return float(np.mean(vals))

    def weekday_weekend_similarity(self) -> float:
        """Mean correlation between weekday and weekend profiles."""
        c = self.profile_correlation
        vals = [c[i, j] for i in range(5) for j in (5, 6)]
        return float(np.mean(vals))

    def split_is_sufficient(self, margin: float = 0.0) -> bool:
        """Is the paper's binary weekday/weekend split justified — days
        within a class more alike than across classes?"""
        return (
            self.within_weekday_similarity()
            > self.weekday_weekend_similarity() + margin
        )


def weekday_profile(dataset: TraceDataset) -> WeekdayProfile:
    """Compute day-of-week statistics for a trace."""
    if dataset.n_days < 14:
        raise ReproError("need at least two weeks of trace")
    pattern = daily_pattern(dataset)
    counts = pattern.counts  # (days, 24)
    dows = np.array(
        [(d + dataset.start_weekday) % 7 for d in range(dataset.n_days)]
    )
    daily_totals = counts.sum(axis=1).astype(float)

    daily_mean = np.zeros(7)
    daily_std = np.zeros(7)
    n_days = np.zeros(7)
    mean_profiles = np.zeros((7, 24))
    for d in range(7):
        sel = dows == d
        n_days[d] = int(sel.sum())
        if n_days[d] == 0:
            continue
        daily_mean[d] = daily_totals[sel].mean()
        daily_std[d] = daily_totals[sel].std(ddof=1) if n_days[d] > 1 else 0.0
        mean_profiles[d] = counts[sel].mean(axis=0)

    corr = np.ones((7, 7))
    for i in range(7):
        for j in range(7):
            si, sj = mean_profiles[i].std(), mean_profiles[j].std()
            if si == 0 or sj == 0:
                corr[i, j] = 1.0 if np.array_equal(
                    mean_profiles[i], mean_profiles[j]
                ) else 0.0
            else:
                corr[i, j] = float(
                    np.corrcoef(mean_profiles[i], mean_profiles[j])[0, 1]
                )
    return WeekdayProfile(
        daily_mean=daily_mean,
        daily_std=daily_std,
        n_days=n_days,
        profile_correlation=corr,
    )
