"""Trace analyses reproducing Section 5's tables and figures.

* :mod:`~repro.analysis.stats` — ECDF, histogram and bootstrap helpers;
* :mod:`~repro.analysis.causes` — Table 2 (unavailability by cause);
* :mod:`~repro.analysis.intervals` — Figure 6 (interval-length CDFs);
* :mod:`~repro.analysis.daily` — Figure 7 (hour-of-day occurrence profile
  and its cross-day deviation, the paper's predictability evidence);
* :mod:`~repro.analysis.report` — plain-text rendering of all results;
* :mod:`~repro.analysis.compare` — programmatic checks of our measurements
  against the paper's published landmarks.
"""

from .accumulators import (
    FleetAccumulator,
    FleetAnalysis,
    StreamingIntervalDistribution,
    merge_reduce,
)
from .capacity import CapacityReport, capacity_report
from .causes import CauseBreakdown, cause_breakdown
from .compare import LandmarkCheck, check_paper_landmarks, evaluate_landmarks
from .daily import DailyPattern, daily_pattern
from .hazard import HazardCurve, hazard_curve
from .intervals import IntervalDistribution, interval_distribution
from .predictability import PredictabilityReport, predictability_report
from .stats import bootstrap_ci, ecdf, summarize
from .streaming import analyze_dataset_streaming, analyze_shards
from .transitions import TransitionStats, state_transitions
from .weekly import WeekdayProfile, weekday_profile

__all__ = [
    "CapacityReport",
    "CauseBreakdown",
    "DailyPattern",
    "FleetAccumulator",
    "FleetAnalysis",
    "HazardCurve",
    "IntervalDistribution",
    "LandmarkCheck",
    "PredictabilityReport",
    "StreamingIntervalDistribution",
    "TransitionStats",
    "WeekdayProfile",
    "analyze_dataset_streaming",
    "analyze_shards",
    "bootstrap_ci",
    "capacity_report",
    "cause_breakdown",
    "check_paper_landmarks",
    "daily_pattern",
    "ecdf",
    "evaluate_landmarks",
    "hazard_curve",
    "interval_distribution",
    "merge_reduce",
    "predictability_report",
    "state_transitions",
    "summarize",
    "weekday_profile",
]
