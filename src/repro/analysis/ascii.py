"""Plotting-free figure rendering: ASCII line charts and bar charts.

No plotting stack is available offline, so the reproduced figures are
rendered as terminal graphics: Figure 6's CDF curves as an overlaid line
chart, Figure 7's hourly occurrence profile as a bar chart with range
whiskers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ReproError

__all__ = ["line_chart", "bar_chart", "render_figure6_chart", "render_figure7_chart"]


def line_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    height: int = 16,
    width: int = 64,
    title: str = "",
    y_range: tuple[float, float] | None = None,
) -> str:
    """Overlay one or more series as an ASCII line chart.

    Each series gets its own glyph (``*``, ``o``, ``+`` ...); collisions
    render as ``#``.
    """
    if not series:
        raise ReproError("line_chart needs at least one series")
    x = np.asarray(x, dtype=float)
    glyphs = "*o+x@%"
    ys = {k: np.asarray(v, dtype=float) for k, v in series.items()}
    for k, v in ys.items():
        if v.shape != x.shape:
            raise ReproError(f"series {k!r} length mismatch")
    lo, hi = y_range if y_range else (
        min(float(v.min()) for v in ys.values()),
        max(float(v.max()) for v in ys.values()),
    )
    if hi <= lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    xi = np.clip(
        ((x - x[0]) / (x[-1] - x[0] or 1.0) * (width - 1)).astype(int), 0, width - 1
    )
    for gi, (name, v) in enumerate(ys.items()):
        glyph = glyphs[gi % len(glyphs)]
        yi = np.clip(
            ((v - lo) / (hi - lo) * (height - 1)).astype(int), 0, height - 1
        )
        for cx, cy in zip(xi, yi):
            row = height - 1 - cy
            grid[row][cx] = "#" if grid[row][cx] not in (" ", glyph) else glyph

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        label = hi - (hi - lo) * r / (height - 1)
        lines.append(f"{label:7.2f} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(
        " " * 9 + f"{x[0]:<10.3g}" + " " * (width - 22) + f"{x[-1]:>10.3g}"
    )
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(ys)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    lo: Sequence[float] | None = None,
    hi: Sequence[float] | None = None,
    width: int = 48,
    title: str = "",
) -> str:
    """Horizontal bar chart with optional [lo, hi] range whiskers."""
    values = np.asarray(values, dtype=float)
    if len(labels) != values.size:
        raise ReproError("labels/values length mismatch")
    vmax = float(values.max()) if values.size else 1.0
    if hi is not None:
        vmax = max(vmax, float(np.max(hi)))
    vmax = vmax or 1.0
    lines = [title] if title else []
    for i, (label, v) in enumerate(zip(labels, values)):
        n = int(round(v / vmax * width))
        bar = "#" * n
        if lo is not None and hi is not None:
            li = int(round(lo[i] / vmax * width))
            hj = int(round(hi[i] / vmax * width))
            tail = list(" " * max(hj - len(bar), 0))
            for p in range(li, hj):
                idx = p - len(bar)
                if 0 <= idx < len(tail):
                    tail[idx] = "-"
            bar = bar + "".join(tail) + "|" if hj > n else bar
        lines.append(f"{label:>6s} |{bar} {v:.1f}")
    return "\n".join(lines)


def render_figure6_chart(dist) -> str:
    """Figure 6 as an ASCII chart (weekday vs weekend CDFs)."""
    grid, wk, we = dist.cdf_series(np.linspace(0.0, 12.0, 64))
    return line_chart(
        grid,
        {"weekday": wk, "weekend": we},
        title="Figure 6: CDF of availability-interval lengths (x: hours)",
        y_range=(0.0, 1.0),
    )


def render_figure7_chart(pattern, *, weekend: bool) -> str:
    """Figure 7 as an ASCII bar chart with min/max whiskers."""
    mean = pattern.mean_profile(weekend=weekend)
    lo, hi = pattern.range_profile(weekend=weekend)
    labels = [f"{h + 1:d}" for h in range(24)]
    label = "Weekends" if weekend else "Weekdays"
    return bar_chart(
        labels,
        mean,
        lo=lo,
        hi=hi,
        title=f"Figure 7 ({label}): unavailability occurrences per hour "
        "(# mean, - range)",
    )
