"""Empirical hazard rate of availability intervals.

The hazard ``h(t)`` — the instantaneous probability that an availability
interval ends at age ``t`` given it has lasted that long — is the direct
"is this machine due?" curve.  Figure 6's flat region below 2 hours means
near-zero hazard there; the 2–4 h weekday band is where the hazard peaks.
This is the statistical fact that makes the renewal-age scheduling policy
work, and the quantitative refutation of a memoryless model (whose hazard
would be constant).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..traces.dataset import TraceDataset
from ..units import HOUR

__all__ = ["HazardCurve", "hazard_curve"]


@dataclass(frozen=True)
class HazardCurve:
    """Binned empirical hazard of interval ages."""

    #: Bin edges, hours.
    edges: np.ndarray
    #: Hazard per hour within each bin: (# ending in bin) / (# at risk x width).
    hazard: np.ndarray
    #: Intervals still at risk entering each bin.
    at_risk: np.ndarray

    def peak_age(self) -> float:
        """Age (bin midpoint, hours) of maximum hazard."""
        i = int(np.nanargmax(self.hazard))
        return float((self.edges[i] + self.edges[i + 1]) / 2)

    def hazard_at(self, age_h: float) -> float:
        """Hazard of the bin containing ``age_h`` (NaN outside the range)."""
        i = int(np.searchsorted(self.edges, age_h, side="right")) - 1
        if not 0 <= i < self.hazard.size:
            return float("nan")
        return float(self.hazard[i])

    def memorylessness_ratio(self) -> float:
        """max(hazard) / mean(hazard): 1 for an exponential, large for
        strongly aged intervals."""
        valid = self.hazard[~np.isnan(self.hazard)]
        if valid.size == 0 or valid.mean() <= 0:
            return float("nan")
        return float(valid.max() / valid.mean())

    def render(self, *, width: int = 48) -> str:
        lines = ["Empirical hazard of availability intervals (per hour)"]
        hmax = np.nanmax(self.hazard) or 1.0
        for i in range(self.hazard.size):
            h = self.hazard[i]
            bar = "" if h != h else "#" * int(round(h / hmax * width))
            label = f"{self.edges[i]:4.1f}-{self.edges[i + 1]:4.1f}h"
            value = "  n/a" if h != h else f"{h:5.2f}"
            lines.append(f"{label} |{bar:<{width}s} {value}  (n={self.at_risk[i]})")
        return "\n".join(lines)


def hazard_curve(
    dataset: TraceDataset,
    *,
    weekend: bool | None = False,
    bin_hours: float = 0.5,
    max_age_hours: float = 10.0,
    min_at_risk: int = 20,
) -> HazardCurve:
    """Estimate the interval-age hazard from a trace.

    Parameters
    ----------
    weekend:
        Restrict to intervals starting on weekends (True), weekdays
        (False, the default), or both (None).
    bin_hours, max_age_hours:
        Binning of the age axis.
    min_at_risk:
        Bins with fewer surviving intervals report NaN (too noisy).
    """
    if bin_hours <= 0 or max_age_hours <= bin_hours:
        raise ReproError("need 0 < bin_hours < max_age_hours")
    lengths = []
    for iv in dataset.all_intervals(include_censored=False):
        if weekend is not None and dataset.is_weekend_time(iv.start) != weekend:
            continue
        lengths.append(iv.length / HOUR)
    if len(lengths) < min_at_risk:
        raise ReproError("too few intervals for a hazard estimate")
    lengths_arr = np.sort(np.asarray(lengths))

    edges = np.arange(0.0, max_age_hours + bin_hours, bin_hours)
    n_bins = edges.size - 1
    hazard = np.full(n_bins, np.nan)
    at_risk = np.zeros(n_bins, dtype=np.int64)
    n = lengths_arr.size
    for i in range(n_bins):
        lo, hi = edges[i], edges[i + 1]
        surviving = n - int(np.searchsorted(lengths_arr, lo, side="left"))
        ending = int(np.searchsorted(lengths_arr, hi, side="left")) - int(
            np.searchsorted(lengths_arr, lo, side="left")
        )
        at_risk[i] = surviving
        if surviving >= min_at_risk:
            hazard[i] = ending / (surviving * bin_hours)
    return HazardCurve(edges=edges, hazard=hazard, at_risk=at_risk)
