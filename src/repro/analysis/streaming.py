"""Drivers that run the mergeable accumulators over sharded fleets.

Two entry points:

* :func:`analyze_shards` — stream an on-disk
  :class:`~repro.traces.shards.ShardedTraceDataset` one shard at a time.
  With ``jobs=1`` this is a serial fold holding a single shard in memory
  (the constant-memory path the fleet-scaling bench asserts); with
  ``jobs>1`` each worker accumulates one shard and the parent merges the
  partial accumulators **in shard order**, so the result is identical
  for every ``jobs`` value (each shard receives exactly one ``update``,
  and an in-order merge replays the serial fold's float-addition order).
  Binary shards fold straight from their memory-mapped column arrays
  (:meth:`~repro.traces.shards.ShardedTraceDataset.shard_columns` +
  :meth:`~repro.analysis.accumulators.FleetAccumulator.update_columns`)
  without materializing a single event object; results are bit-identical
  to the JSONL object path.
* :func:`analyze_dataset_streaming` — the same fold over *virtual*
  shards of an in-memory dataset.  Memory is already bounded by the
  loaded dataset; the value is differential testing — the fold walks the
  exact accumulator code path the sharded analysis uses, over the same
  machine partition :func:`repro.traces.shards.partition_machines`
  produces.

Both return a :class:`~repro.analysis.accumulators.FleetAnalysis`; see
:mod:`repro.analysis.accumulators` for the exactness contract vs the
monolithic single-pass analyses.
"""

from __future__ import annotations

import logging
from typing import Callable, Iterator, Optional, Union

import numpy as np

from ..config import ExecutionConfig
from ..core.events import UnavailabilityEvent
from ..obs.metrics import get_registry
from ..traces.dataset import TraceDataset
from ..traces.shards import (
    ShardedTraceDataset,
    open_shards,
    partition_machines,
)

from .accumulators import FleetAccumulator, FleetAnalysis

__all__ = ["analyze_dataset_streaming", "analyze_shards", "iter_virtual_shards"]

logger = logging.getLogger(__name__)

ProgressFn = Callable[[int, int], None]


def iter_virtual_shards(
    dataset: TraceDataset, n_shards: Optional[int] = None
) -> Iterator[tuple[int, TraceDataset]]:
    """Yield ``(machine_lo, shard)`` views partitioning an in-memory fleet.

    The partition is the on-disk one
    (:func:`repro.traces.shards.partition_machines`); ``n_shards``
    defaults to one shard per machine.  Events are sorted by
    ``(machine_id, start)``, so each shard is a contiguous slice located
    with two binary searches — O(events) total across all shards.
    """
    n = dataset.n_machines
    k = n if n_shards is None else n_shards
    mids = np.fromiter(
        (e.machine_id for e in dataset.events),
        dtype=np.int64,
        count=len(dataset.events),
    )
    for lo, hi in partition_machines(n, k):
        a = int(np.searchsorted(mids, lo, side="left"))
        b = int(np.searchsorted(mids, hi, side="left"))
        events = [
            UnavailabilityEvent(
                machine_id=e.machine_id - lo,
                start=e.start,
                end=e.end,
                state=e.state,
                mean_host_load=e.mean_host_load,
                mean_free_mb=e.mean_free_mb,
            )
            for e in dataset.events[a:b]
        ]
        hourly = None
        if dataset.hourly_load is not None:
            hourly = dataset.hourly_load[lo:hi]
        yield lo, TraceDataset(
            events=events,
            n_machines=hi - lo,
            span=dataset.span,
            start_weekday=dataset.start_weekday,
            hourly_load=hourly,
            metadata=dict(dataset.metadata),
        )


def analyze_dataset_streaming(
    dataset: TraceDataset, n_shards: Optional[int] = None
) -> FleetAnalysis:
    """Run the accumulator fold over virtual shards of a loaded dataset."""
    acc = FleetAccumulator.for_fleet(dataset)
    count = 0
    for lo, shard in iter_virtual_shards(dataset, n_shards):
        acc.update(shard, lo)
        count += 1
    logger.info(
        "streamed %d machine(s) through %d virtual shard(s)",
        dataset.n_machines,
        count,
    )
    return acc.finalize()


def _fold_shard(
    acc: FleetAccumulator, sharded: ShardedTraceDataset, index: int
) -> None:
    """Fold shard ``index`` into ``acc`` via its format's natural path.

    Binary shards go through the zero-copy column fold; JSONL shards
    through the event-object fold.  Both produce bit-identical
    accumulator state (the :mod:`.accumulators` exactness contract).
    """
    info = sharded.manifest.shards[index]
    if info.format == "binary":
        acc.update_columns(sharded.shard_columns(index), info.machine_lo)
    else:
        acc.update(sharded.shard_dataset(index), info.machine_lo)


def _accumulate_shard(payload: tuple[str, int, bool]) -> FleetAccumulator:
    """One shard folded into a fresh fleet accumulator — the work unit."""
    root, index, verify = payload
    sharded = open_shards(root, verify=verify)
    acc = FleetAccumulator.for_fleet(sharded)
    _fold_shard(acc, sharded, index)
    return acc


def analyze_shards(
    sharded: Union[ShardedTraceDataset, str],
    *,
    execution: Optional[ExecutionConfig] = None,
    progress: Optional[ProgressFn] = None,
) -> FleetAnalysis:
    """Stream a sharded fleet through the Section 5 accumulators.

    ``jobs=1`` (default): a serial fold — one shard resident at a time,
    per-shard spans (``analyze.shard[k]``) and an ``analyze.shard_seconds``
    histogram on the ambient registry.  ``jobs>1``: workers accumulate
    shards independently and the parent merges in shard order; results
    are identical either way.
    """
    if not isinstance(sharded, ShardedTraceDataset):
        sharded = open_shards(sharded)
    execution = execution or ExecutionConfig()
    registry = get_registry()
    n = sharded.n_shards

    from ..parallel.backend import get_backend, resolve_jobs

    jobs = resolve_jobs(execution.jobs)
    with registry.span("analyze.stream") as stream_span:
        if stream_span is not None:
            stream_span["shards"] = n
        if jobs == 1 or n <= 1:
            acc = FleetAccumulator.for_fleet(sharded)
            for i in range(n):
                if progress is not None:
                    progress(i, n)
                info = sharded.manifest.shards[i]
                with registry.timer("analyze.shard_seconds"):
                    with registry.span(f"analyze.shard[{i}]") as rec:
                        _fold_shard(acc, sharded, i)
                        if rec is not None:
                            rec["n_events"] = info.n_events
        else:
            backend = get_backend(execution)
            root = str(sharded.root)
            partials = backend.map(
                _accumulate_shard,
                [(root, i, sharded.verify) for i in range(n)],
                progress=progress,
            )
            acc = partials[0]
            for part in partials[1:]:
                acc.merge(part)
    registry.record(
        "shards",
        phase="analyze",
        count=n,
        machines=sharded.n_machines,
        events=sharded.n_events,
    )
    logger.info(
        "streamed %d shard(s) (%d machines, %d events) with jobs=%d",
        n,
        sharded.n_machines,
        sharded.n_events,
        jobs,
    )
    return acc.finalize()
