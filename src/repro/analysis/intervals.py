"""Figure 6: cumulative distribution of availability-interval lengths.

Intervals are split by the day type (weekday/weekend) of their *start*;
censored boundary intervals are excluded.  The paper's landmarks: weekday
mean close to 3 hours vs above 5 on weekends; about 60% of mass in 2–4 h
(weekday) / 4–6 h (weekend); roughly 5% of intervals shorter than 5
minutes; and nearly flat CDFs between 5 minutes and 2 hours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import HOUR, MINUTE
from ..traces.dataset import TraceDataset
from .stats import Ecdf, ecdf

__all__ = ["IntervalDistribution", "interval_distribution"]


@dataclass(frozen=True)
class IntervalDistribution:
    """Weekday and weekend interval-length distributions (hours)."""

    weekday_hours: np.ndarray
    weekend_hours: np.ndarray

    @property
    def weekday_count(self) -> int:
        """Number of weekday intervals (shared gate with the streaming
        distribution, which has counts but no raw arrays)."""
        return int(self.weekday_hours.size)

    @property
    def weekend_count(self) -> int:
        return int(self.weekend_hours.size)

    @property
    def weekday_cdf(self) -> Ecdf:
        return ecdf(self.weekday_hours)

    @property
    def weekend_cdf(self) -> Ecdf:
        return ecdf(self.weekend_hours)

    def landmarks(self) -> dict[str, float]:
        """The quantities the paper reads off Figure 6."""
        wk, we = self.weekday_hours, self.weekend_hours
        five_min = 5 * MINUTE / HOUR
        both = np.concatenate([wk, we])
        return {
            "weekday_mean_h": float(wk.mean()),
            "weekend_mean_h": float(we.mean()),
            "weekday_frac_2_4h": float(np.mean((wk >= 2) & (wk <= 4))),
            "weekend_frac_4_6h": float(np.mean((we >= 4) & (we <= 6))),
            "frac_below_5min": float(np.mean(both < five_min)),
            "weekday_frac_5min_2h": float(np.mean((wk >= five_min) & (wk < 2))),
            "weekend_frac_5min_2h": float(np.mean((we >= five_min) & (we < 2))),
        }

    def cdf_series(
        self, grid_hours: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(grid, weekday CDF, weekend CDF) — the two curves of Figure 6."""
        if grid_hours is None:
            grid_hours = np.linspace(0.0, 12.0, 49)
        return (
            grid_hours,
            self.weekday_cdf.at(grid_hours),
            self.weekend_cdf.at(grid_hours),
        )


def interval_distribution(dataset: TraceDataset) -> IntervalDistribution:
    """Extract the Figure 6 distributions from a trace dataset."""
    weekday, weekend = [], []
    for iv in dataset.all_intervals(include_censored=False):
        hours = iv.length / HOUR
        if dataset.is_weekend_time(iv.start):
            weekend.append(hours)
        else:
            weekday.append(hours)
    return IntervalDistribution(
        weekday_hours=np.asarray(weekday, dtype=float),
        weekend_hours=np.asarray(weekend, dtype=float),
    )
