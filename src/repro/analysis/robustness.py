"""Seed-robustness of the reproduction.

The landmark checks pass on the default seed; this harness reruns the
whole generate→detect→analyze pipeline over many seeds and reports, per
landmark, how often it holds — distinguishing a calibrated model from one
tuned to a lucky random stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import FgcsConfig
from ..errors import ReproError
from ..faults import FaultContext
from ..parallel.backend import get_backend
from ..traces.generate import generate_dataset
from .compare import LandmarkCheck, check_paper_landmarks

__all__ = ["RobustnessReport", "seed_sweep"]


@dataclass(frozen=True)
class RobustnessReport:
    """Per-landmark pass rates over a seed sweep."""

    seeds: tuple[int, ...]
    #: landmark name -> (passes, total, worst measured value).
    results: dict[str, tuple[int, int, float]]

    def pass_rate(self, name: str) -> float:
        passes, total, _ = self.results[name]
        return passes / total

    def fragile_landmarks(self, threshold: float = 1.0) -> list[str]:
        """Landmarks passing on fewer than ``threshold`` of the seeds."""
        return [
            name
            for name in self.results
            if self.pass_rate(name) < threshold
        ]

    def render(self) -> str:
        from .report import render_table

        rows = []
        for name, (passes, total, worst) in sorted(self.results.items()):
            rows.append([name, f"{passes}/{total}", f"{worst:.3f}"])
        return render_table(
            ["landmark", "passes", "worst measured"],
            rows,
            title=f"Seed robustness over {len(self.seeds)} seeds",
        )


def _seed_landmarks(
    payload: tuple[FgcsConfig, int],
) -> list[LandmarkCheck]:
    """One seed's full generate→detect→check run (the parallel work unit).

    Generation inside the worker is forced serial — the sweep is the
    parallel axis here, and pools must not nest — while any configured
    dataset cache is still honored.
    """
    import dataclasses

    base, seed = payload
    cfg = base.with_seed(seed)
    dataset = generate_dataset(
        cfg,
        keep_hourly_load=False,
        execution=dataclasses.replace(cfg.execution, jobs=1),
    )
    return check_paper_landmarks(dataset)


def seed_sweep(
    seeds: Sequence[int],
    *,
    base_config: FgcsConfig | None = None,
    jobs: int = 1,
    faults: FaultContext | None = None,
) -> RobustnessReport:
    """Run the full pipeline per seed and tally landmark outcomes.

    Seeds are independent reruns of the whole pipeline, so ``jobs > 1``
    fans them out over worker processes; tallies are merged in seed order
    and are identical for every ``jobs`` value.
    """
    seeds = tuple(seeds)
    if not seeds:
        raise ReproError("need at least one seed")
    base = base_config or FgcsConfig()
    results: dict[str, tuple[int, int, float]] = {}
    per_seed = get_backend(jobs).map(
        _seed_landmarks, [(base, seed) for seed in seeds], faults=faults
    )
    for checks in per_seed:
        for check in checks:
            passes, total, worst = results.get(
                check.name, (0, 0, check.measured)
            )
            # "Worst" = farthest outside (or closest to) the band.
            mid = (check.lo + check.hi) / 2
            if abs(check.measured - mid) > abs(worst - mid):
                worst = check.measured
            results[check.name] = (
                passes + (1 if check.ok else 0),
                total + 1,
                worst,
            )
    return RobustnessReport(seeds=seeds, results=results)
