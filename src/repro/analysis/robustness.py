"""Seed-robustness of the reproduction.

The landmark checks pass on the default seed; this harness reruns the
whole generate→detect→analyze pipeline over many seeds and reports, per
landmark, how often it holds — distinguishing a calibrated model from one
tuned to a lucky random stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import FgcsConfig
from ..errors import ReproError
from ..traces.generate import generate_dataset
from .compare import check_paper_landmarks

__all__ = ["RobustnessReport", "seed_sweep"]


@dataclass(frozen=True)
class RobustnessReport:
    """Per-landmark pass rates over a seed sweep."""

    seeds: tuple[int, ...]
    #: landmark name -> (passes, total, worst measured value).
    results: dict[str, tuple[int, int, float]]

    def pass_rate(self, name: str) -> float:
        passes, total, _ = self.results[name]
        return passes / total

    def fragile_landmarks(self, threshold: float = 1.0) -> list[str]:
        """Landmarks passing on fewer than ``threshold`` of the seeds."""
        return [
            name
            for name in self.results
            if self.pass_rate(name) < threshold
        ]

    def render(self) -> str:
        from .report import render_table

        rows = []
        for name, (passes, total, worst) in sorted(self.results.items()):
            rows.append([name, f"{passes}/{total}", f"{worst:.3f}"])
        return render_table(
            ["landmark", "passes", "worst measured"],
            rows,
            title=f"Seed robustness over {len(self.seeds)} seeds",
        )


def seed_sweep(
    seeds: Sequence[int],
    *,
    base_config: FgcsConfig | None = None,
) -> RobustnessReport:
    """Run the full pipeline per seed and tally landmark outcomes."""
    seeds = tuple(seeds)
    if not seeds:
        raise ReproError("need at least one seed")
    base = base_config or FgcsConfig()
    results: dict[str, tuple[int, int, float]] = {}
    for seed in seeds:
        dataset = generate_dataset(base.with_seed(seed), keep_hourly_load=False)
        for check in check_paper_landmarks(dataset):
            passes, total, worst = results.get(
                check.name, (0, 0, check.measured)
            )
            # "Worst" = farthest outside (or closest to) the band.
            mid = (check.lo + check.hi) / 2
            if abs(check.measured - mid) > abs(worst - mid):
                worst = check.measured
            results[check.name] = (
                passes + (1 if check.ok else 0),
                total + 1,
                worst,
            )
    return RobustnessReport(seeds=seeds, results=results)
