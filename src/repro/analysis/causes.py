"""Table 2: resource unavailability due to different causes.

For every machine, the total number of unavailability occurrences over the
traced period split into CPU contention (S3), memory contention (S4) and
resource revocation (S5), reported as ranges across machines — plus the
paper's follow-up observation that ~90% of URR events are machine reboots
(URR shorter than one minute).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.states import AvailState
from ..traces.dataset import TraceDataset

__all__ = ["CauseBreakdown", "cause_breakdown"]


@dataclass(frozen=True)
class CauseBreakdown:
    """Per-machine count arrays plus the Table 2 range summaries."""

    totals: np.ndarray  # (n_machines,)
    cpu: np.ndarray
    memory: np.ndarray
    revocation: np.ndarray
    reboots: np.ndarray

    # -- Table 2 rows -----------------------------------------------------

    def frequency_ranges(self) -> dict[str, tuple[int, int]]:
        """Min/max counts across machines: the Table 2 "Frequency" row."""
        return {
            "total": _irange(self.totals),
            "cpu": _irange(self.cpu),
            "memory": _irange(self.memory),
            "revocation": _irange(self.revocation),
        }

    def percentage_ranges(self) -> dict[str, tuple[float, float]]:
        """Min/max per-machine shares: the Table 2 "Percentage" row."""
        out: dict[str, tuple[float, float]] = {}
        with np.errstate(invalid="ignore", divide="ignore"):
            for name, arr in (
                ("cpu", self.cpu),
                ("memory", self.memory),
                ("revocation", self.revocation),
            ):
                shares = np.where(self.totals > 0, arr / self.totals, 0.0)
                out[name] = (float(shares.min()), float(shares.max()))
        return out

    @property
    def reboot_share_of_urr(self) -> float:
        """Fraction of all URR events that were reboots (paper: ~90%)."""
        total_urr = int(self.revocation.sum())
        return float(self.reboots.sum()) / total_urr if total_urr else float("nan")

    @property
    def uec_share(self) -> float:
        """Overall share of unavailability due to contention (S3+S4)."""
        total = int(self.totals.sum())
        uec = int(self.cpu.sum() + self.memory.sum())
        return uec / total if total else float("nan")


def cause_breakdown(dataset: TraceDataset) -> CauseBreakdown:
    """Compute the Table 2 statistics for a trace dataset."""
    n = dataset.n_machines
    cpu = np.zeros(n, dtype=np.int64)
    memory = np.zeros(n, dtype=np.int64)
    revocation = np.zeros(n, dtype=np.int64)
    reboots = np.zeros(n, dtype=np.int64)
    for e in dataset.events:
        if e.state is AvailState.S3:
            cpu[e.machine_id] += 1
        elif e.state is AvailState.S4:
            memory[e.machine_id] += 1
        else:
            revocation[e.machine_id] += 1
            if e.is_reboot:
                reboots[e.machine_id] += 1
    return CauseBreakdown(
        totals=cpu + memory + revocation,
        cpu=cpu,
        memory=memory,
        revocation=revocation,
        reboots=reboots,
    )


def _irange(arr: np.ndarray) -> tuple[int, int]:
    return (int(arr.min()), int(arr.max()))
