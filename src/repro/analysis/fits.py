"""Parametric fits to the availability-interval distribution.

The related work the paper builds on (Brevik, Nurmi & Wolski, CCGrid'04)
models machine-availability durations with parametric families — Weibull,
lognormal, exponential — and picks by goodness of fit.  This module does
the same for the FGCS interval data: fit each candidate by maximum
likelihood (scipy), compare via Kolmogorov–Smirnov distance and AIC, and
expose the winner's survival function for prediction use.

On the generated traces the exponential loses badly (intervals have a
hard ~2 h floor, i.e. strong aging) while Weibull/lognormal fit the bulk —
matching the published finding that machine availability is not
memoryless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.stats

from ..errors import ReproError

__all__ = ["DistributionFit", "FitComparison", "fit_interval_distributions"]

#: Candidate families: name -> (scipy distribution, fit kwargs).
_FAMILIES = {
    "exponential": (scipy.stats.expon, dict(floc=0.0)),
    "weibull": (scipy.stats.weibull_min, dict(floc=0.0)),
    "lognormal": (scipy.stats.lognorm, dict(floc=0.0)),
    "gamma": (scipy.stats.gamma, dict(floc=0.0)),
}


@dataclass(frozen=True)
class DistributionFit:
    """One family fitted to interval lengths (hours)."""

    family: str
    params: tuple[float, ...]
    ks_statistic: float
    log_likelihood: float
    n: int

    @property
    def aic(self) -> float:
        """Akaike information criterion (lower is better)."""
        k = len(self.params)
        return 2 * k - 2 * self.log_likelihood

    def survival(self, hours: float | np.ndarray) -> np.ndarray:
        """P(interval length > hours) under the fitted distribution."""
        dist, _ = _FAMILIES[self.family]
        return dist.sf(hours, *self.params)

    def quantile(self, q: float) -> float:
        dist, _ = _FAMILIES[self.family]
        return float(dist.ppf(q, *self.params))


@dataclass(frozen=True)
class FitComparison:
    """All family fits for one sample, ranked."""

    fits: tuple[DistributionFit, ...]

    def best(self, criterion: str = "aic") -> DistributionFit:
        """Lowest-AIC (default) or lowest-KS fit."""
        if criterion == "aic":
            return min(self.fits, key=lambda f: f.aic)
        if criterion == "ks":
            return min(self.fits, key=lambda f: f.ks_statistic)
        raise ReproError(f"unknown criterion {criterion!r}")

    def fit_of(self, family: str) -> DistributionFit:
        for f in self.fits:
            if f.family == family:
                return f
        raise KeyError(family)

    def render(self) -> str:
        from .report import render_table

        rows = [
            [f.family, f"{f.ks_statistic:.4f}", f"{f.aic:.1f}"]
            for f in sorted(self.fits, key=lambda f: f.aic)
        ]
        return render_table(
            ["family", "KS distance", "AIC"],
            rows,
            title=f"Interval-length distribution fits (n={self.fits[0].n})",
        )


def fit_interval_distributions(
    lengths_hours: Sequence[float] | np.ndarray,
    *,
    families: Sequence[str] = ("exponential", "weibull", "lognormal", "gamma"),
) -> FitComparison:
    """Fit candidate families to interval lengths by maximum likelihood."""
    data = np.asarray(lengths_hours, dtype=float)
    data = data[data > 0]
    if data.size < 20:
        raise ReproError("need at least 20 positive interval lengths")
    fits = []
    for family in families:
        if family not in _FAMILIES:
            raise ReproError(f"unknown family {family!r}")
        dist, kwargs = _FAMILIES[family]
        params = dist.fit(data, **kwargs)
        ks = scipy.stats.kstest(data, dist.cdf, args=params).statistic
        loglik = float(np.sum(dist.logpdf(data, *params)))
        fits.append(
            DistributionFit(
                family=family,
                params=tuple(float(p) for p in params),
                ks_statistic=float(ks),
                log_likelihood=loglik,
                n=int(data.size),
            )
        )
    return FitComparison(fits=tuple(fits))
