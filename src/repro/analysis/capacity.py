"""Deliverable compute capacity of the FGCS testbed.

Section 5.2's motivation for interval statistics: "Facilities to predict
such interval lengths provide the knowledge of how much computation power
an FGCS system can deliver without interruption."  This module turns a
trace into exactly that number: for each availability interval, the CPU
share a guest could have harvested (the idle fraction, bounded by the S2
renicing regime), integrated over the interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..traces.dataset import TraceDataset
from ..units import HOUR
from .stats import SummaryStats, summarize

__all__ = ["CapacityReport", "capacity_report"]


@dataclass(frozen=True)
class CapacityReport:
    """Harvestable compute per availability interval and in aggregate."""

    #: Uninterrupted guest CPU-hours available per interval.
    interval_cpu_hours: SummaryStats
    #: Mean harvestable CPU fraction while machines are available.
    mean_harvest_fraction: float
    #: Total guest CPU-hours deliverable over the trace, all machines.
    total_cpu_hours: float
    #: Fraction of wall time machines were available at all.
    availability_fraction: float

    def summary(self) -> str:
        return (
            f"deliverable {self.total_cpu_hours:,.0f} guest CPU-hours "
            f"({self.mean_harvest_fraction:.0%} of available machine time; "
            f"machines available {self.availability_fraction:.0%} of wall "
            f"time); per uninterrupted interval: mean "
            f"{self.interval_cpu_hours.mean:.1f} CPU-h, median "
            f"{self.interval_cpu_hours.median:.1f}, max "
            f"{self.interval_cpu_hours.maximum:.1f}"
        )


def capacity_report(dataset: TraceDataset) -> CapacityReport:
    """Compute harvestable-capacity statistics from a trace.

    Needs ``dataset.hourly_load`` (the generator records it by default):
    the harvestable fraction in an hour is ``1 - host_load``, i.e. the
    cycles a guest can take without slowing hosts noticeably.
    """
    if dataset.hourly_load is None:
        raise ReproError("capacity_report needs dataset.hourly_load")
    per_interval: list[float] = []
    total = 0.0
    available_time = 0.0
    hl = dataset.hourly_load
    n_hours = hl.shape[1]

    for machine in range(dataset.n_machines):
        for iv in dataset.intervals_for(machine):
            if iv.censored:
                continue
            h0 = int(iv.start // HOUR)
            h1 = min(int(np.ceil(iv.end / HOUR)), n_hours)
            if h1 <= h0:
                continue
            # Hour-resolution integration of the idle fraction.
            cpu_h = 0.0
            for h in range(h0, h1):
                overlap = min(iv.end, (h + 1) * HOUR) - max(iv.start, h * HOUR)
                load = hl[machine, h]
                idle = 1.0 - (load if load == load else 0.3)
                cpu_h += max(idle, 0.0) * overlap / HOUR
            per_interval.append(cpu_h)
            total += cpu_h
            available_time += iv.length

    if not per_interval:
        raise ReproError("no complete availability intervals in the trace")
    wall = dataset.n_machines * dataset.span
    return CapacityReport(
        interval_cpu_hours=summarize(per_interval),
        mean_harvest_fraction=total / (available_time / HOUR),
        total_cpu_hours=total,
        availability_fraction=available_time / wall,
    )
