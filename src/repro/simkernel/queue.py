"""Binary-heap event queue with lazy cancellation."""

from __future__ import annotations

import heapq
from typing import Iterator, Optional

from ..errors import SimulationError
from .event import Action, Event


class EventQueue:
    """A priority queue of :class:`Event` objects ordered by firing time.

    Cancellation is lazy: cancelled events stay in the heap and are skipped
    on pop, which keeps both ``push`` and ``cancel`` O(log n) / O(1).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        action: Action,
        *,
        priority: int = 0,
        name: str = "",
        payload: object = None,
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        ev = Event(
            time=time,
            priority=priority,
            seq=self._seq,
            action=action,
            name=name,
            payload=payload,
        )
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest live event, or ``None`` if empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        ev = heapq.heappop(self._heap)
        self._live -= 1
        return ev

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def drain_until(self, time: float) -> Iterator[Event]:
        """Yield (and remove) all live events with ``event.time <= time``.

        Events scheduled *during* iteration that also fall inside the window
        are yielded as well, in correct order.
        """
        while True:
            t = self.peek_time()
            if t is None or t > time:
                return
            yield self.pop()

    def clear(self) -> None:
        """Drop every event."""
        self._heap.clear()
        self._live = 0
