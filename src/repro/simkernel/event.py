"""Simulation events."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

#: Signature of an event action: called with the firing time.
Action = Callable[[float], None]


@dataclass(order=True)
class Event:
    """A scheduled callback in virtual time.

    Events order by ``(time, priority, seq)``: ties at the same instant are
    broken first by explicit priority (lower runs first), then by insertion
    order, which makes simulations fully deterministic.
    """

    time: float
    priority: int
    seq: int
    action: Action = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    payload: Any = field(compare=False, default=None)

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the action (the queue checks ``cancelled`` first)."""
        self.action(self.time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        label = self.name or self.action.__name__
        return f"<Event {label!r} t={self.time:.6g} prio={self.priority}{state}>"
