"""The virtual clock and event loop."""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import SimulationError
from .event import Action, Event
from .queue import EventQueue


class Simulator:
    """A deterministic discrete-event simulator.

    The clock only moves forward, driven by the event queue.  Components
    schedule callbacks with :meth:`at` / :meth:`after` / :meth:`every` and
    the owner advances time with :meth:`run_until` or :meth:`run`.

    An optional ``observer`` — any object with a ``record(event)`` method,
    e.g. :class:`repro.obs.EventTrace` — is called for every event just
    before it fires.  Observation is pure accounting (the observer must
    not mutate the event or queue) and is opt-in: the default ``None``
    costs one comparison per fired event.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.after(5.0, lambda t: fired.append(t))
    >>> sim.run_until(10.0)
    >>> fired
    [5.0]
    >>> sim.now
    10.0
    """

    def __init__(self, start_time: float = 0.0, *, observer=None) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self.observer = observer

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live scheduled events."""
        return len(self._queue)

    # -- scheduling ----------------------------------------------------------

    def at(
        self, time: float, action: Action, *, priority: int = 0, name: str = ""
    ) -> Event:
        """Schedule ``action`` at absolute time ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        return self._queue.push(time, action, priority=priority, name=name)

    def after(
        self, delay: float, action: Action, *, priority: int = 0, name: str = ""
    ) -> Event:
        """Schedule ``action`` after a non-negative delay."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, action, priority=priority, name=name)

    def every(
        self,
        period: float,
        action: Action,
        *,
        start: Optional[float] = None,
        until: Optional[float] = None,
        priority: int = 0,
        name: str = "",
    ) -> Callable[[], None]:
        """Schedule ``action`` periodically; returns a cancel function.

        The first firing is at ``start`` (default ``now + period``); firings
        stop after ``until`` if given, or when the returned cancel function
        is called.
        """
        if period <= 0:
            raise SimulationError("period must be positive")
        state: dict[str, object] = {"event": None, "stopped": False}

        def reschedule(t: float) -> None:
            if state["stopped"]:
                return
            action(t)
            nxt = t + period
            if until is not None and nxt > until:
                state["event"] = None
                return
            state["event"] = self._queue.push(
                nxt, reschedule, priority=priority, name=name
            )

        first = (self._now + period) if start is None else start
        if until is None or first <= until:
            state["event"] = self.at(first, reschedule, priority=priority, name=name)

        def cancel() -> None:
            state["stopped"] = True
            ev = state["event"]
            if isinstance(ev, Event):
                self._queue.cancel(ev)

        return cancel

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self._queue.cancel(event)

    # -- execution -----------------------------------------------------------

    def run_until(self, time: float) -> None:
        """Fire every event up to and including ``time``; clock ends at ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot run backwards to {time}")
        if self._running:
            raise SimulationError("simulator is re-entrant: already running")
        self._running = True
        try:
            for ev in self._queue.drain_until(time):
                self._now = ev.time
                if self.observer is not None:
                    self.observer.record(ev)
                ev.fire()
            self._now = time
        finally:
            self._running = False

    def run(self, max_events: Optional[int] = None) -> int:
        """Fire events until the queue drains; returns the number fired."""
        if self._running:
            raise SimulationError("simulator is re-entrant: already running")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                ev = self._queue.pop()
                self._now = ev.time
                if self.observer is not None:
                    self.observer.record(ev)
                ev.fire()
                fired += 1
        finally:
            self._running = False
        return fired

    def step(self) -> Optional[Event]:
        """Fire exactly the next event, if any, and return it."""
        if not self._queue:
            return None
        ev = self._queue.pop()
        self._now = ev.time
        if self.observer is not None:
            self.observer.record(ev)
        ev.fire()
        return ev
