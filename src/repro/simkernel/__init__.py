"""Discrete-event simulation kernel.

A minimal, deterministic event-driven simulator: an event heap keyed by
(time, priority, sequence number), a virtual clock, and periodic-callback
helpers.  The OS-level machine simulation (:mod:`repro.oskernel`) and the
testbed driver (:mod:`repro.fgcs.testbed`) are built on top of it.
"""

from .event import Event
from .queue import EventQueue
from .simulator import Simulator

__all__ = ["Event", "EventQueue", "Simulator"]
