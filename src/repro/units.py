"""Time and size units used throughout the FGCS reproduction.

All simulation times are expressed in **seconds** as floats, all memory
sizes in **megabytes (MB)** as floats, and all CPU usages as dimensionless
fractions in ``[0, 1]``.  This module centralizes the conversion constants
so that magic numbers never appear inline.
"""

from __future__ import annotations

# --- time ----------------------------------------------------------------

MILLISECOND: float = 1e-3
SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24 * HOUR
WEEK: float = 7 * DAY

#: Hours in a day; used by the hour-of-day analyses (Figure 7).
HOURS_PER_DAY: int = 24

#: Days in a week, with Monday == 0 per :func:`weekday_of`.
DAYS_PER_WEEK: int = 7

# --- memory ---------------------------------------------------------------

MB: float = 1.0
GB: float = 1024.0


def hours(x: float) -> float:
    """Convert hours to seconds."""
    return x * HOUR


def minutes(x: float) -> float:
    """Convert minutes to seconds."""
    return x * MINUTE


def days(x: float) -> float:
    """Convert days to seconds."""
    return x * DAY


def hour_of_day(t: float) -> float:
    """The fractional hour of day (``[0, 24)``) of absolute time ``t`` seconds.

    Time zero is midnight at the start of day 0.
    """
    return (t % DAY) / HOUR


def day_index(t: float) -> int:
    """The zero-based day number containing absolute time ``t``."""
    return int(t // DAY)


def weekday_of(t: float, start_weekday: int = 0) -> int:
    """Day-of-week (0=Monday .. 6=Sunday) for absolute time ``t``.

    ``start_weekday`` is the weekday of day 0.  The paper's trace ran
    August--November 2005; our synthetic trace starts on a Monday by default.
    """
    return (day_index(t) + start_weekday) % DAYS_PER_WEEK


def is_weekend(t: float, start_weekday: int = 0) -> bool:
    """True if absolute time ``t`` falls on a Saturday or Sunday."""
    return weekday_of(t, start_weekday) >= 5


def fmt_duration(seconds: float) -> str:
    """Render a duration in a compact human-readable form (e.g. ``2h03m``)."""
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < MINUTE:
        return f"{seconds:.1f}s"
    if seconds < HOUR:
        m, s = divmod(seconds, MINUTE)
        return f"{int(m)}m{int(s):02d}s"
    h, rem = divmod(seconds, HOUR)
    m = rem // MINUTE
    return f"{int(h)}h{int(m):02d}m"
