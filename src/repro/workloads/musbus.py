"""Models of the Musbus interactive host workloads H1–H6 of Table 1.

The paper simulates interactive host users on text terminals with the
Musbus Unix benchmark suite: a mix of editing, command-line utilities and
compiler invocations, with file sizes varied to produce six workloads of
different CPU and memory intensity.  We model each Hi as a small set of
component processes whose aggregate isolated CPU usage and resident size
match Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..oskernel.tasks import Task
from .synthetic import periodic_program

__all__ = ["MusbusComponent", "MusbusWorkload", "MUSBUS_WORKLOADS"]


@dataclass(frozen=True)
class MusbusComponent:
    """One component process of a Musbus workload."""

    name: str
    #: Isolated CPU usage of the component.
    duty: float
    #: Resident-set size, MB.
    resident_mb: float
    #: Work-cycle period, seconds (editors cycle fast, compilers slow).
    period: float = 1.0


@dataclass(frozen=True)
class MusbusWorkload:
    """A Musbus-generated host workload (one row of Table 1).

    ``components`` split the aggregate CPU and memory footprint across an
    editor-like, a utility-like and (for the heavier workloads) a
    compiler-like process; their duties sum to ``cpu_usage`` and their
    resident sets to ``resident_mb``.
    """

    name: str
    cpu_usage: float
    resident_mb: float
    virtual_mb: float
    components: tuple[MusbusComponent, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.components:
            return
        duty = sum(c.duty for c in self.components)
        mem = sum(c.resident_mb for c in self.components)
        if abs(duty - self.cpu_usage) > 1e-6:
            raise ConfigError(
                f"{self.name}: component duties sum to {duty}, "
                f"expected {self.cpu_usage}"
            )
        if abs(mem - self.resident_mb) > 1e-6:
            raise ConfigError(
                f"{self.name}: component memory sums to {mem}, "
                f"expected {self.resident_mb}"
            )

    def host_tasks(self, *, nice: int = 0) -> list[Task]:
        """Instantiate the workload as host tasks."""
        tasks = []
        for comp in self.components:
            tasks.append(
                Task(
                    f"{self.name}.{comp.name}",
                    periodic_program(comp.duty, comp.period),
                    nice=nice,
                    resident_mb=comp.resident_mb,
                    is_guest=False,
                )
            )
        return tasks


def _wl(
    name: str,
    cpu: float,
    res: float,
    virt: float,
    parts: list[tuple[str, float, float, float]],
) -> MusbusWorkload:
    return MusbusWorkload(
        name,
        cpu_usage=cpu,
        resident_mb=res,
        virtual_mb=virt,
        components=tuple(MusbusComponent(n, d, m, p) for (n, d, m, p) in parts),
    )


#: Table 1, host workloads.  Component splits are our modelling choice;
#: aggregates are the paper's measurements.
MUSBUS_WORKLOADS: dict[str, MusbusWorkload] = {
    "H1": _wl(
        "H1", 0.086, 71.0, 122.0,
        [("edit", 0.026, 21.0, 0.6), ("utils", 0.060, 50.0, 1.0)],
    ),
    "H2": _wl(
        "H2", 0.092, 213.0, 247.0,
        [("edit", 0.030, 48.0, 0.6), ("utils", 0.062, 165.0, 1.0)],
    ),
    "H3": _wl(
        "H3", 0.172, 53.0, 151.0,
        [("edit", 0.040, 17.0, 0.6), ("utils", 0.132, 36.0, 1.0)],
    ),
    "H4": _wl(
        "H4", 0.219, 68.0, 122.0,
        [("edit", 0.045, 18.0, 0.6), ("cc", 0.174, 50.0, 2.0)],
    ),
    "H5": _wl(
        "H5", 0.570, 210.0, 236.0,
        [("edit", 0.050, 25.0, 0.6), ("cc", 0.520, 185.0, 2.0)],
    ),
    "H6": _wl(
        "H6", 0.662, 84.0, 113.0,
        [("edit", 0.052, 16.0, 0.6), ("cc", 0.610, 68.0, 2.0)],
    ),
}
