"""Alternative testbed workload profiles (the paper's future work).

Section 6: "we plan to collect trace on testbeds with different patterns
of host workloads, for example a testbed containing enterprise desktop
resources.  We expect that data collected on the proposed testbeds will
present similar predictability."  These profiles let the reproduction test
that conjecture (see ``bench_ext_profiles``):

* :func:`student_lab` — the paper's testbed (the library default);
* :func:`enterprise_desktops` — office machines: sharp 9-to-5 plateau,
  near-dead weekends and nights, far fewer console reboots (machines have
  one owner), patch-window reboots instead of updatedb;
* :func:`home_pcs` — evening-peaked usage, machines suspended overnight
  (long URR), almost no reboots-in-anger.
"""

from __future__ import annotations

import dataclasses

from ..config import FgcsConfig, LabWorkloadConfig, TestbedConfig
from ..units import DAY, HOUR, MINUTE

__all__ = ["student_lab", "enterprise_desktops", "home_pcs", "PROFILES"]


def student_lab(
    *, n_machines: int = 20, days: int = 92, seed: int = 2006
) -> FgcsConfig:
    """The paper's Purdue student-lab testbed (library defaults)."""
    return dataclasses.replace(
        FgcsConfig(),
        testbed=TestbedConfig(n_machines=n_machines, duration=days * DAY),
        seed=seed,
    )


def enterprise_desktops(
    *, n_machines: int = 20, days: int = 92, seed: int = 2006
) -> FgcsConfig:
    """An office fleet: business-hours plateau, quiet nights/weekends.

    Owners are single users who rarely reboot in anger; IT pushes a patch
    job at 3 AM (the updatedb analogue).  Heavy load comes from builds and
    spreadsheets during work hours only.
    """
    lab = LabWorkloadConfig(
        weekend_factor=0.12,  # almost nobody in the office
        day_start_hour=8.5,
        day_end_hour=18.0,
        edge_hours=0.8,  # sharp arrival/departure
        night_floor=0.05,
        heavy_duration_mean=50 * MINUTE,
        heavy_duration_sigma=0.6,
        memory_heavy_fraction=0.22,
        light_load_mean=0.06,
        moderate_load_mean=0.30,
        updatedb_hour=3.0,
        updatedb_duration=20 * MINUTE,
        updatedb_load=0.90,
        reboot_rate_per_month=0.5,  # personal machines: few angry reboots
        failure_rate_per_month=0.2,
        reboot_downtime=38.0,
        failure_downtime_mean=3 * HOUR,
    )
    return dataclasses.replace(
        FgcsConfig(),
        lab=lab,
        testbed=TestbedConfig(n_machines=n_machines, duration=days * DAY),
        seed=seed,
    )


def home_pcs(
    *, n_machines: int = 20, days: int = 92, seed: int = 2006
) -> FgcsConfig:
    """Volunteer home PCs: evening peak, similar weekends, overnight idle.

    The paper notes reboots "would be very rare on hosts used by only one
    local user, such as home PCs"; revocation instead comes from owners
    shutting machines down (long URR).
    """
    lab = LabWorkloadConfig(
        weekend_factor=0.95,  # weekends look like weekdays at home
        day_start_hour=17.0,  # owners come home in the evening
        day_end_hour=23.5,
        edge_hours=1.0,
        night_floor=0.10,
        heavy_duration_mean=45 * MINUTE,
        heavy_duration_sigma=0.8,
        memory_heavy_fraction=0.35,  # games / photo editing
        light_load_mean=0.05,
        moderate_load_mean=0.25,
        updatedb_hour=4.0,
        updatedb_duration=25 * MINUTE,
        updatedb_load=0.85,
        reboot_rate_per_month=0.3,
        failure_rate_per_month=1.0,  # shutdowns modelled as failures
        reboot_downtime=38.0,
        failure_downtime_mean=6 * HOUR,
    )
    return dataclasses.replace(
        FgcsConfig(),
        lab=lab,
        testbed=TestbedConfig(n_machines=n_machines, duration=days * DAY),
        seed=seed,
    )


#: Name -> factory, for CLIs and sweep harnesses.
PROFILES = {
    "student-lab": student_lab,
    "enterprise": enterprise_desktops,
    "home": home_pcs,
}
