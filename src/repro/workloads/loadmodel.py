"""Fluid host-load signal synthesis for the long trace study.

Turns an :class:`~repro.workloads.labuser.EpisodePlanner` plan into the
monitor-sample stream a machine's resource monitor would record: a noisy
diurnal baseline host load, overload plateaus during CPU episodes, memory
exhaustion during memory episodes, and service silence during URR.  The
downstream detector (:mod:`repro.core.detector`) re-discovers the planted
episodes from the samples alone, mirroring the paper's methodology where
thresholds calibrated offline are applied to monitor data.

Everything is vectorized NumPy over the machine's full sample grid
(~800 k samples for 92 days at 10 s), so generating the 20-machine
testbed takes seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.signal

from ..config import FgcsConfig
from ..core.model import DEFAULT_GUEST_WORKING_SET_MB
from ..core.samples import SampleBatch
from ..errors import ConfigError
from ..rng import RngFactory
from ..units import DAY, HOUR
from .labuser import ActivityProfile, EpisodeKind, EpisodePlanner, PlannedEpisode

__all__ = [
    "MachineTrace",
    "MachineTraceGenerator",
    "SynthContext",
    "hourly_mean_load_columns",
    "synth_context",
    "synthesize_samples",
    "synthesize_samples_columns",
]

#: Host load is kept this far above Th2 during overload plateaus so sample
#: noise can never split a planted episode in two.
_OVERLOAD_MARGIN: float = 0.06
#: Baseline host load stays this far below Th2 so noise never fakes an S3.
_BASELINE_MARGIN: float = 0.05


@dataclass(frozen=True)
class MachineTrace:
    """One machine's generated trace: the plan and the monitor samples."""

    machine_id: int
    episodes: tuple[PlannedEpisode, ...]
    samples: SampleBatch
    span: float


def _ar1(n: int, rng: np.random.Generator, *, corr_time: float, step: float) -> np.ndarray:
    """A unit-variance AR(1) series with the given correlation time."""
    rho = float(np.exp(-step / corr_time))
    eps = rng.standard_normal(n) * np.sqrt(1.0 - rho * rho)
    # Warm start from the stationary distribution.
    eps[0] = rng.standard_normal()
    return scipy.signal.lfilter([1.0], [1.0, -rho], eps)


def synthesize_samples(
    episodes: list[PlannedEpisode],
    *,
    config: FgcsConfig,
    profile: ActivityProfile,
    rng: np.random.Generator,
    span: Optional[float] = None,
) -> SampleBatch:
    """Monitor samples for one machine over the whole span.

    The baseline load follows the lab's diurnal intensity with AR(1)
    variation, clipped safely below Th2; planted episodes override it.
    """
    span = config.testbed.duration if span is None else span
    period = config.monitor.period
    if period <= 0:
        raise ConfigError("monitor period must be positive")
    n = int(span / period)
    times = (np.arange(n) + 1) * period  # first sample one period in

    lab = config.lab
    th2 = config.thresholds.th2

    # --- baseline host load -------------------------------------------------
    intensity = profile.intensity(times)
    smooth = _ar1(n, rng, corr_time=10 * 60.0, step=period)
    # Logistic squash keeps the modulation in (0, 1) with mean ~0.5.
    usage_level = 1.0 / (1.0 + np.exp(-smooth))
    load = lab.light_load_mean + 2.0 * (
        lab.moderate_load_mean - lab.light_load_mean
    ) * intensity * usage_level
    np.clip(load, 0.0, th2 - _BASELINE_MARGIN, out=load)

    # --- baseline memory ----------------------------------------------------
    avail = config.testbed.machine_memory_mb - config.testbed.machine_kernel_mb
    mem_noise = _ar1(n, rng, corr_time=30 * 60.0, step=period)
    resident = 250.0 + 120.0 * intensity * (1.0 / (1.0 + np.exp(-mem_noise)))
    free = avail - resident

    up = np.ones(n, dtype=bool)

    # --- planted episodes ----------------------------------------------------
    guest_ws = DEFAULT_GUEST_WORKING_SET_MB
    for ep in episodes:
        i0 = int(np.searchsorted(times, ep.start, side="left"))
        i1 = int(np.searchsorted(times, ep.end, side="left"))
        if i1 <= i0:
            continue
        k = i1 - i0
        if ep.kind in (EpisodeKind.CPU, EpisodeKind.UPDATEDB, EpisodeKind.TRANSIENT):
            level = (
                lab.updatedb_load
                if ep.kind is EpisodeKind.UPDATEDB
                else 0.80
            )
            wobble = 0.08 * np.tanh(_ar1(k, rng, corr_time=5 * 60.0, step=period))
            seg = np.clip(level + wobble, th2 + _OVERLOAD_MARGIN, 1.0)
            load[i0:i1] = seg
        elif ep.kind is EpisodeKind.MEMORY:
            # A big compile/simulation: memory exhausted, CPU moderate.
            free[i0:i1] = rng.uniform(15.0, guest_ws - 25.0, size=k)
            load[i0:i1] = np.clip(
                0.40 + 0.10 * np.tanh(_ar1(k, rng, corr_time=5 * 60.0, step=period)),
                0.05,
                th2 - _BASELINE_MARGIN,
            )
        elif ep.kind.is_urr:
            up[i0:i1] = False

    # --- observation noise -----------------------------------------------------
    if config.monitor.noise_std > 0:
        noise = rng.normal(1.0, config.monitor.noise_std, size=n)
        load = load * noise
        # Noise must not push baseline over Th2 or overloads under it.
        over = load >= th2
        np.clip(load, 0.0, 1.0, out=load)
        load[over] = np.maximum(load[over], th2 + _OVERLOAD_MARGIN / 2)
        load[~over] = np.minimum(load[~over], th2 - _BASELINE_MARGIN / 2)

    return SampleBatch(times, load, free, up)


def _ar1_from(body: np.ndarray, eps0: float, rho: float) -> np.ndarray:
    """:func:`_ar1` applied to pre-drawn innovations.

    ``body`` is a slice of a batched ``standard_normal`` draw and ``eps0``
    the warm-start value that legacy ``_ar1`` drew second; reproducing the
    same ``eps`` array through ``lfilter`` keeps the series bit-identical
    to the per-call version.
    """
    eps = body * np.sqrt(1.0 - rho * rho)
    eps[0] = eps0
    return scipy.signal.lfilter([1.0], [1.0, -rho], eps)


class SynthContext:
    """Machine-invariant precomputation shared across a fleet's synthesis.

    Everything here depends only on ``(config.lab, config.testbed,
    config.monitor.period)`` — the sample grid, the diurnal intensity and
    the load/memory modulation amplitudes are identical for every machine,
    so the columnar path computes them once per config instead of once per
    machine.  The arrays are marked read-only; per-machine state (AR(1)
    series, episode overrides) is always written into fresh buffers.
    """

    __slots__ = (
        "period",
        "span",
        "n",
        "times",
        "profile",
        "intensity",
        "load_amp",
        "mem_amp",
        "avail",
        "n_hours",
        "hour_idx",
    )

    def __init__(self, config: FgcsConfig) -> None:
        period = config.monitor.period
        if period <= 0:
            raise ConfigError("monitor period must be positive")
        span = config.testbed.duration
        lab = config.lab
        self.period = period
        self.span = span
        self.n = int(span / period)
        self.times = (np.arange(self.n) + 1) * period
        self.profile = ActivityProfile(lab, config.testbed)
        self.intensity = self.profile.intensity(self.times)
        # Same association order as the legacy expressions in
        # synthesize_samples: ((2.0 * (mod - light)) * intensity) and
        # (120.0 * intensity), so the remaining per-machine multiplies
        # produce bit-identical floats.
        self.load_amp = 2.0 * (lab.moderate_load_mean - lab.light_load_mean) * self.intensity
        self.mem_amp = 120.0 * self.intensity
        self.avail = config.testbed.machine_memory_mb - config.testbed.machine_kernel_mb
        self.n_hours = int(span // HOUR)
        self.hour_idx = np.minimum((self.times // HOUR).astype(np.int64), self.n_hours - 1)
        for name in ("times", "intensity", "load_amp", "mem_amp", "hour_idx"):
            getattr(self, name).setflags(write=False)


_CTX_CACHE: dict = {}
_CTX_CACHE_MAX = 8


def synth_context(config: FgcsConfig) -> SynthContext:
    """The (memoized) :class:`SynthContext` for a config."""
    key = (config.lab, config.testbed, config.monitor.period)
    ctx = _CTX_CACHE.get(key)
    if ctx is None:
        if len(_CTX_CACHE) >= _CTX_CACHE_MAX:
            _CTX_CACHE.clear()
        ctx = SynthContext(config)
        _CTX_CACHE[key] = ctx
    return ctx


_OVERLOAD_KINDS = (EpisodeKind.CPU, EpisodeKind.UPDATEDB, EpisodeKind.TRANSIENT)


def synthesize_samples_columns(
    episodes: list[PlannedEpisode],
    *,
    config: FgcsConfig,
    ctx: SynthContext,
    rng: np.random.Generator,
    counters: Optional[dict] = None,
) -> SampleBatch:
    """Columnar twin of :func:`synthesize_samples` — bit-identical output.

    The legacy path makes four ``standard_normal`` calls per machine plus
    two per episode; this one merges every run of consecutive normal draws
    into a single batched call and slices the block, which NumPy's
    generators guarantee yields the same stream values.  Episode windows
    are located with one batched ``searchsorted`` and the baseline uses
    the shared :class:`SynthContext` amplitudes, so per-machine work is
    the AR(1) filters and the elementwise assembly only.

    When ``counters`` is given, ``counters["rng.draws.signal"]`` is
    incremented by the number of variates consumed from ``rng``.
    """
    n = ctx.n
    period = ctx.period
    lab = config.lab
    th2 = config.thresholds.th2
    draws = 0

    # --- baseline load + memory --------------------------------------------
    # Legacy draw order: SN(n), SN(1) for the load AR(1), then SN(n), SN(1)
    # for the memory AR(1).  One block of 2n + 2 covers all four calls.
    block = rng.standard_normal(2 * n + 2)
    draws += 2 * n + 2
    rho_smooth = float(np.exp(-period / (10 * 60.0)))
    rho_mem = float(np.exp(-period / (30 * 60.0)))
    smooth = _ar1_from(block[0:n], block[n], rho_smooth)
    mem_noise = _ar1_from(block[n + 1 : 2 * n + 1], block[2 * n + 1], rho_mem)

    usage_level = 1.0 / (1.0 + np.exp(-smooth))
    load = lab.light_load_mean + ctx.load_amp * usage_level
    np.clip(load, 0.0, th2 - _BASELINE_MARGIN, out=load)

    resident = 250.0 + ctx.mem_amp * (1.0 / (1.0 + np.exp(-mem_noise)))
    free = ctx.avail - resident

    up = np.ones(n, dtype=bool)

    # --- planted episodes ----------------------------------------------------
    guest_ws = DEFAULT_GUEST_WORKING_SET_MB
    rho_ep = float(np.exp(-period / (5 * 60.0)))
    times = ctx.times
    if episodes:
        i0s = np.searchsorted(times, [ep.start for ep in episodes], side="left")
        i1s = np.searchsorted(times, [ep.end for ep in episodes], side="left")
        # Consecutive overload episodes (CPU/UPDATEDB/TRANSIENT) each draw
        # SN(k) + SN(1) and nothing else, so their innovations can be merged
        # into one batched call.  URR episodes and windows that round to
        # zero samples draw nothing and therefore do not break a run; a
        # MEMORY episode draws uniforms first, so it flushes the run.
        pending: list[tuple[int, int, float]] = []  # (i0, i1, level)
        pending_total = 0

        def _flush() -> None:
            nonlocal pending_total, draws
            if not pending:
                return
            blk = rng.standard_normal(pending_total)
            draws += pending_total
            off = 0
            for i0, i1, level in pending:
                k = i1 - i0
                wobble = 0.08 * np.tanh(_ar1_from(blk[off : off + k], blk[off + k], rho_ep))
                load[i0:i1] = np.clip(level + wobble, th2 + _OVERLOAD_MARGIN, 1.0)
                off += k + 1
            pending.clear()
            pending_total = 0

        for ep, i0, i1 in zip(episodes, i0s, i1s):
            i0 = int(i0)
            i1 = int(i1)
            if i1 <= i0:
                continue
            k = i1 - i0
            if ep.kind in _OVERLOAD_KINDS:
                level = lab.updatedb_load if ep.kind is EpisodeKind.UPDATEDB else 0.80
                pending.append((i0, i1, level))
                pending_total += k + 1
            elif ep.kind is EpisodeKind.MEMORY:
                _flush()
                free[i0:i1] = rng.uniform(15.0, guest_ws - 25.0, size=k)
                blk = rng.standard_normal(k + 1)
                draws += 2 * k + 1
                load[i0:i1] = np.clip(
                    0.40 + 0.10 * np.tanh(_ar1_from(blk[:k], blk[k], rho_ep)),
                    0.05,
                    th2 - _BASELINE_MARGIN,
                )
            elif ep.kind.is_urr:
                up[i0:i1] = False
        _flush()

    # --- observation noise -----------------------------------------------------
    if config.monitor.noise_std > 0:
        noise = rng.normal(1.0, config.monitor.noise_std, size=n)
        draws += n
        load = load * noise
        over = load >= th2
        np.clip(load, 0.0, 1.0, out=load)
        load[over] = np.maximum(load[over], th2 + _OVERLOAD_MARGIN / 2)
        load[~over] = np.minimum(load[~over], th2 - _BASELINE_MARGIN / 2)

    # SampleBatch.__init__ clips host load; the trusted path must match it.
    np.clip(load, 0.0, 1.0, out=load)

    if counters is not None:
        counters["rng.draws.signal"] = counters.get("rng.draws.signal", 0) + draws
    return SampleBatch.from_validated(times, load, free, up)


def hourly_mean_load_columns(samples: SampleBatch, ctx: SynthContext) -> np.ndarray:
    """:meth:`MachineTraceGenerator.hourly_mean_load` on a columnar batch,
    reusing the context's precomputed hour indices."""
    up = samples.machine_up
    idx = ctx.hour_idx[up]
    sums = np.bincount(idx, weights=samples.host_load[up], minlength=ctx.n_hours)
    counts = np.bincount(idx, minlength=ctx.n_hours)
    with np.errstate(invalid="ignore"):
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)


class MachineTraceGenerator:
    """Generates per-machine traces for the simulated iShare testbed.

    Deterministic per ``(config.seed, machine_id)``: each machine draws
    from its own spawned random stream.

    Examples
    --------
    >>> from repro.config import FgcsConfig, TestbedConfig
    >>> cfg = FgcsConfig(testbed=TestbedConfig(n_machines=2, duration=2 * DAY))
    >>> gen = MachineTraceGenerator(cfg)
    >>> trace = gen.generate(0)
    >>> len(trace.samples) > 0
    True
    """

    def __init__(self, config: Optional[FgcsConfig] = None) -> None:
        self.config = config or FgcsConfig()
        self.profile = ActivityProfile(self.config.lab, self.config.testbed)
        self._rng_factory = RngFactory(self.config.seed)

    def busyness(self, machine_id: int) -> float:
        """The machine's fixed busyness factor (how popular its desk is)."""
        rng = self._rng_factory.generator("busyness", machine_id)
        return float(rng.uniform(0.86, 1.04))

    def plan(self, machine_id: int) -> list[PlannedEpisode]:
        """The episode plan for one machine (ground truth)."""
        rng = self._rng_factory.generator("plan", machine_id)
        return EpisodePlanner(
            self.profile, rng, busyness=self.busyness(machine_id)
        ).plan()

    def generate(self, machine_id: int) -> MachineTrace:
        """Plan episodes and synthesize the machine's monitor samples."""
        if not 0 <= machine_id < self.config.testbed.n_machines:
            raise ConfigError(
                f"machine_id {machine_id} outside testbed of "
                f"{self.config.testbed.n_machines}"
            )
        episodes = self.plan(machine_id)
        rng = self._rng_factory.generator("signal", machine_id)
        samples = synthesize_samples(
            episodes, config=self.config, profile=self.profile, rng=rng
        )
        return MachineTrace(
            machine_id=machine_id,
            episodes=tuple(episodes),
            samples=samples,
            span=self.config.testbed.duration,
        )

    def hourly_mean_load(self, trace: MachineTrace) -> np.ndarray:
        """Mean host load per wall-clock hour of the trace (NaN when the
        machine was down the whole hour) — a compact signal kept alongside
        events for prediction features."""
        n_hours = int(trace.span // HOUR)
        idx = np.minimum((trace.samples.times // HOUR).astype(np.int64), n_hours - 1)
        up = trace.samples.machine_up
        sums = np.bincount(
            idx[up], weights=trace.samples.host_load[up], minlength=n_hours
        )
        counts = np.bincount(idx[up], minlength=n_hours)
        with np.errstate(invalid="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
