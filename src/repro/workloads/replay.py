"""Cross-fidelity replay: run a coarse episode plan on the fine machine.

The library has two fidelity levels (DESIGN.md): the quantum-level machine
simulation for contention experiments and the fluid load model for the
three-month trace.  This module bridges them: it takes an
:class:`~repro.workloads.labuser.EpisodePlanner` plan and *acts it out* on
a real simulated machine — spawning host tasks whose scheduling produces
the planned load, toggling service liveness for URR — so the production
monitor/detector stack observes a machine-day at quantum resolution.

The cross-validation test asserts that the detector recovers the same
events from the fine replay as the fluid synthesis produces, machine-day
for machine-day: the two fidelity levels agree.
"""

from __future__ import annotations

from typing import Optional

from ..config import FgcsConfig
from ..errors import SimulationError
from ..oskernel.tasks import Task
from ..simkernel import Simulator
from .labuser import EpisodeKind, PlannedEpisode
from .synthetic import periodic_program

__all__ = ["FineGrainedReplay"]

#: Host duty acted out during CPU-heavy episodes (safely above Th2).
_CPU_EPISODE_DUTY = 0.80
#: Host duty during the updatedb cron.
_UPDATEDB_DUTY = 0.92
#: Duty of the always-on background host activity (below Th1).
_BASELINE_DUTY = 0.06
#: Host CPU duty during memory-heavy episodes (S2 band, below Th2).
_MEMORY_EPISODE_DUTY = 0.40


class FineGrainedReplay:
    """Acts out an episode plan on one iShare node.

    Parameters
    ----------
    sim:
        Simulator shared with the node.
    config:
        FGCS configuration (thresholds, monitor, machine memory).
    episodes:
        The plan to act out (from :class:`EpisodePlanner` or hand-built).
    """

    def __init__(
        self,
        sim: Simulator,
        config: Optional[FgcsConfig],
        episodes: list[PlannedEpisode],
        *,
        name: str = "replay",
    ) -> None:
        # Imported here: workloads is a dependency of fgcs, so a module-
        # level import of the node would be circular.
        from ..fgcs.ishare import IShareNode

        self.sim = sim
        self.config = config or FgcsConfig()
        self.episodes = sorted(episodes, key=lambda e: e.start)
        for a, b in zip(self.episodes, self.episodes[1:]):
            if b.start < a.end - 1e-6:
                raise SimulationError("episode plan must be non-overlapping")
        self.node = IShareNode(sim, self.config, name=name, detect=True)
        self._memory_hog_mb = self._memory_pressure_mb()

    def _memory_pressure_mb(self) -> float:
        """Resident size pushing free memory below the guest need, while
        keeping the machine itself short of actual thrashing.

        The fluid model treats memory exhaustion as a signal (free memory
        under the guest working set); the fine machine would genuinely
        thrash if working sets exceeded RAM, stretching the acting task
        and distorting the planned episode end.  So the hog is sized to
        land in the band [not enough for a guest, still enough for the
        hosts] — accounting for the resident baseline task.
        """
        from ..core.model import DEFAULT_GUEST_WORKING_SET_MB

        avail = (
            self.config.testbed.machine_memory_mb
            - self.config.testbed.machine_kernel_mb
        )
        baseline_resident = 250.0
        return avail - baseline_resident - DEFAULT_GUEST_WORKING_SET_MB + 30.0

    # -- plan staging ---------------------------------------------------------

    def start(self) -> None:
        """Publish the node and schedule the whole plan."""
        self.node.publish()
        self.node.spawn_host(
            Task(
                "background",
                periodic_program(_BASELINE_DUTY, period=1.0),
                resident_mb=250.0,
            )
        )
        for i, ep in enumerate(self.episodes):
            if ep.kind.is_urr:
                self.sim.at(ep.start, lambda t, ep=ep: self._go_down(ep))
                self.sim.at(ep.end, lambda t: self._come_up())
            else:
                self.sim.at(
                    ep.start, lambda t, ep=ep, i=i: self._spawn_episode(ep, i)
                )

    def _episode_task(self, ep: PlannedEpisode, index: int) -> Task:
        duty, resident = {
            EpisodeKind.CPU: (_CPU_EPISODE_DUTY, 80.0),
            EpisodeKind.UPDATEDB: (_UPDATEDB_DUTY, 40.0),
            EpisodeKind.TRANSIENT: (_CPU_EPISODE_DUTY + 0.05, 20.0),
            EpisodeKind.MEMORY: (_MEMORY_EPISODE_DUTY, self._memory_hog_mb),
        }[ep.kind]
        period = 1.0
        cycles = max(int(round(ep.duration / period)), 1)
        return Task(
            f"{ep.kind.value}{index}",
            periodic_program(duty, period, cycles=cycles),
            resident_mb=resident,
        )

    def _spawn_episode(self, ep: PlannedEpisode, index: int) -> None:
        self.node.spawn_host(self._episode_task(ep, index))
        self.node.machine.reap()

    def _go_down(self, ep: PlannedEpisode) -> None:
        self.node.monitor.service_up = False

    def _come_up(self) -> None:
        self.node.monitor.service_up = True

    # -- execution ----------------------------------------------------------------

    def run(self, until: float) -> list:
        """Run the replay and return the detected unavailability events."""
        self.sim.run_until(until)
        self.node.finish()
        return list(self.node.events)
