"""Workload models.

* :mod:`~repro.workloads.synthetic` — the compute/sleep synthetic programs
  of Section 3.2.1 (host programs with a target isolated CPU usage, fully
  CPU-bound guests);
* :mod:`~repro.workloads.spec` — models of the four SPEC CPU2000 guest
  applications of Table 1;
* :mod:`~repro.workloads.musbus` — models of the six Musbus-generated host
  workloads H1–H6 of Table 1;
* :mod:`~repro.workloads.hostgroups` — the paper's random host-group
  construction (M processes with isolated usages summing to a target L_H);
* :mod:`~repro.workloads.labuser` — the stochastic student-lab workload
  model driving the three-month trace study;
* :mod:`~repro.workloads.loadmodel` — the fluid host-load signal generator
  used for long traces.
"""

from .hostgroups import HostGroup, random_host_group
from .musbus import MUSBUS_WORKLOADS, MusbusWorkload
from .profiles import PROFILES, enterprise_desktops, home_pcs, student_lab
from .replay import FineGrainedReplay
from .spec import SPEC_APPS, SpecApp
from .synthetic import cpu_bound_program, host_task, periodic_program

__all__ = [
    "FineGrainedReplay",
    "HostGroup",
    "MUSBUS_WORKLOADS",
    "MusbusWorkload",
    "PROFILES",
    "SPEC_APPS",
    "SpecApp",
    "cpu_bound_program",
    "enterprise_desktops",
    "home_pcs",
    "host_task",
    "periodic_program",
    "random_host_group",
    "student_lab",
]
