"""Stochastic model of student-lab host workloads (the Section 5 testbed).

The paper's 20 machines live in a general-purpose student lab: host
workloads come from students editing, compiling and testing at all hours,
with strong diurnal and weekday/weekend patterns, a daily 4 AM ``updatedb``
cron job that saturates every machine for ~30 minutes, console users who
reboot "slow" machines, and rare hardware/software failures.

Two pieces:

* :class:`ActivityProfile` — the diurnal/weekly *activity intensity* and
  its integral ("activity time").  Heavy-load episodes arrive by a renewal
  process in activity time, so their wall-clock spacing stretches overnight
  and on weekends.  This one mechanism yields both the weekday/weekend
  interval-length contrast of Figure 6 and the hour-of-day occurrence
  profile of Figure 7.
* :class:`EpisodePlanner` — plans the full-span list of load episodes for
  one machine: CPU-heavy and memory-heavy student activity, the updatedb
  job, occasional overload *flaps* (which create the paper's ~5% of
  sub-5-minute availability intervals), sub-minute transient spikes (which
  the detector must ignore), reboots and failures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import LabWorkloadConfig, TestbedConfig
from ..errors import ConfigError
from ..units import DAY, HOUR, MINUTE

__all__ = ["ActivityProfile", "EpisodeKind", "EpisodePlanner", "PlannedEpisode"]


class EpisodeKind(enum.Enum):
    """What kind of load episode the planner scheduled."""

    CPU = "cpu"  # sustained host CPU load above Th2 -> S3
    MEMORY = "memory"  # host memory demand exhausts free memory -> S4
    UPDATEDB = "updatedb"  # the 4 AM cron job: CPU-bound, all machines -> S3
    TRANSIENT = "transient"  # sub-minute spike above Th2: suspension only
    REBOOT = "reboot"  # console-user reboot -> short S5
    FAILURE = "failure"  # hardware/software failure -> long S5

    @property
    def is_urr(self) -> bool:
        return self in (EpisodeKind.REBOOT, EpisodeKind.FAILURE)

    @property
    def is_detectable(self) -> bool:
        """Should the detector emit an unavailability event for it?"""
        return self is not EpisodeKind.TRANSIENT


@dataclass(frozen=True)
class PlannedEpisode:
    """One planned load episode on a machine (ground truth for tests)."""

    kind: EpisodeKind
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class ActivityProfile:
    """Diurnal/weekly lab-activity intensity and its cumulative integral.

    Intensity is a smooth daytime plateau over a small overnight floor,
    scaled down on weekends.  ``advance(t, delta)`` answers "at what time
    has ``delta`` hours of *activity* elapsed since ``t``?" via a
    precomputed minute-resolution integral over the trace span.
    """

    #: Grid resolution for the cumulative-activity table, seconds.
    GRID_STEP: float = 60.0

    def __init__(
        self,
        lab: Optional[LabWorkloadConfig] = None,
        testbed: Optional[TestbedConfig] = None,
    ) -> None:
        self.lab = lab or LabWorkloadConfig()
        self.testbed = testbed or TestbedConfig()
        span = self.testbed.duration
        n = int(span / self.GRID_STEP) + 2
        self._grid_t = np.arange(n) * self.GRID_STEP
        intensity = self.intensity(self._grid_t)
        # Cumulative activity in "activity hours" (trapezoidal).
        steps = 0.5 * (intensity[1:] + intensity[:-1]) * (self.GRID_STEP / HOUR)
        self._grid_a = np.concatenate(([0.0], np.cumsum(steps)))

    def intensity(self, t: np.ndarray | float) -> np.ndarray:
        """Relative lab-activity intensity at absolute time(s) ``t``.

        A smooth plateau between ``day_start_hour`` and ``day_end_hour``
        (1.0 on weekdays, ``weekend_factor`` on weekends) over a small
        overnight floor.  The flat daytime shape concentrates episode
        spacings, matching the paper's tight 2--4 h / 4--6 h interval
        bands.
        """
        t = np.asarray(t, dtype=np.float64)
        lab = self.lab
        hour = (t % DAY) / HOUR
        rise = 1.0 / (1.0 + np.exp(-(hour - lab.day_start_hour) / lab.edge_hours))
        fall = 1.0 / (1.0 + np.exp(-(lab.day_end_hour - hour) / lab.edge_hours))
        plateau = rise * fall
        day_idx = (t // DAY).astype(np.int64)
        weekend = ((day_idx + self.testbed.start_weekday) % 7) >= 5
        scale = np.where(weekend, lab.weekend_factor, lab.weekday_peak)
        return lab.night_floor + (1.0 - lab.night_floor) * scale * plateau

    def cumulative(self, t: float) -> float:
        """Activity hours elapsed from time 0 to ``t``."""
        return float(np.interp(t, self._grid_t, self._grid_a))

    def advance(self, t: float, activity_hours: float) -> float:
        """The time at which ``activity_hours`` have elapsed past ``t``.

        Returns ``inf`` if the span ends first.
        """
        if activity_hours < 0:
            raise ConfigError("activity_hours must be >= 0")
        target = self.cumulative(t) + activity_hours
        if target > self._grid_a[-1]:
            return float("inf")
        return float(np.interp(target, self._grid_a, self._grid_t))


class EpisodePlanner:
    """Plans one machine's load episodes over the whole trace span.

    The planner is deterministic given its RNG; the synthesizer
    (:mod:`repro.workloads.loadmodel`) turns the plan into monitor samples.
    """

    #: Mean availability gap between heavy episodes, in *activity hours*.
    #: At full intensity this is the wall-clock gap; overnight it stretches
    #: by ~1/night_floor.  Calibrated against Table 2 / Figure 6.
    MEAN_GAP_ACTIVITY_HOURS: float = 3.0
    #: Lognormal sigma of the gap distribution (concentrates weekday
    #: daytime gaps in the paper's 2--4 h band).
    GAP_SIGMA: float = 0.12
    #: Probability that an episode is followed by a quick *flap*: a short
    #: availability gap (< 5 min) and another short overload.
    FLAP_PROBABILITY: float = 0.060
    #: Minimum duration of a detectable heavy episode, seconds.
    MIN_EPISODE: float = 5 * MINUTE
    #: Mean number of sub-minute transient spikes per day (suspensions).
    TRANSIENTS_PER_DAY: float = 3.0

    def __init__(
        self,
        profile: ActivityProfile,
        rng: np.random.Generator,
        *,
        busyness: float = 1.0,
    ) -> None:
        """``busyness`` scales this machine's heavy-episode rate: desks near
        the door see more students than the corner ones.  It widens the
        per-machine Table 2 ranges and gives prediction-based placement a
        real machine-choice signal."""
        if busyness <= 0:
            raise ConfigError("busyness must be positive")
        self.profile = profile
        self.rng = rng
        self.busyness = busyness
        self.lab = profile.lab
        self.testbed = profile.testbed

    # -- public -----------------------------------------------------------

    def plan(self) -> list[PlannedEpisode]:
        """The machine's full episode plan, time-ordered, non-overlapping."""
        span = self.testbed.duration
        urr = self._plan_urr(span)
        heavy = self._plan_heavy(span)
        updatedb = self._plan_updatedb(span)
        transients = self._plan_transients(span)

        # URR wins every conflict (the machine is down); updatedb wins over
        # student activity; transients yield to everything.
        episodes = list(urr)
        episodes += _without_overlaps(updatedb, episodes)
        episodes += _without_overlaps(heavy, episodes)
        episodes += _without_overlaps(transients, episodes)
        episodes.sort(key=lambda e: e.start)
        return episodes

    # -- URR ---------------------------------------------------------------

    def _plan_urr(self, span: float) -> list[PlannedEpisode]:
        lab = self.lab
        month = 30 * DAY
        episodes: list[PlannedEpisode] = []
        # Reboots: console users reboot machines that feel slow, so they
        # happen during active hours -- a Poisson process in activity time.
        n_active_hours = self.profile.cumulative(span)
        reboot_rate = lab.reboot_rate_per_month * (span / month)
        t = 0.0
        mean_gap = n_active_hours / max(reboot_rate, 1e-9)
        while True:
            gap = self.rng.exponential(mean_gap)
            t = self.profile.advance(t, gap)
            if not np.isfinite(t) or t >= span:
                break
            dt = lab.reboot_downtime * self.rng.uniform(0.8, 1.2)
            episodes.append(PlannedEpisode(EpisodeKind.REBOOT, t, min(t + dt, span)))
            t = episodes[-1].end
        # Failures: rare, uniform in wall time, long repair.
        n_failures = self.rng.poisson(lab.failure_rate_per_month * span / month)
        for _ in range(n_failures):
            t0 = self.rng.uniform(0, span)
            dt = self.rng.exponential(lab.failure_downtime_mean)
            dt = max(dt, 2 * MINUTE)  # must exceed the reboot cutoff
            episodes.append(
                PlannedEpisode(EpisodeKind.FAILURE, t0, min(t0 + dt, span))
            )
        episodes.sort(key=lambda e: e.start)
        return _drop_mutual_overlaps(episodes)

    # -- heavy student activity ------------------------------------------------

    def _heavy_kind(self) -> EpisodeKind:
        if self.rng.random() < self.lab.memory_heavy_fraction:
            return EpisodeKind.MEMORY
        return EpisodeKind.CPU

    def _heavy_duration(self) -> float:
        lab = self.lab
        mu = np.log(lab.heavy_duration_mean) - 0.5 * lab.heavy_duration_sigma**2
        d = float(self.rng.lognormal(mu, lab.heavy_duration_sigma))
        return max(d, self.MIN_EPISODE)

    def _plan_heavy(self, span: float) -> list[PlannedEpisode]:
        """Renewal process in activity time, plus occasional flaps.

        The draw sequence is inherently serial — each iteration's gap
        depends on the previous episode's end, and the flap branch makes
        the distribution of the next draw data-dependent — so this loop
        stays scalar.  Loop-invariant float constants are hoisted; the
        values (and therefore the stream positions) are unchanged.
        """
        lab = self.lab
        dur_mu = np.log(lab.heavy_duration_mean) - 0.5 * lab.heavy_duration_sigma**2
        gap_mu = np.log(self.MEAN_GAP_ACTIVITY_HOURS) - 0.5 * self.GAP_SIGMA**2
        episodes: list[PlannedEpisode] = []
        # Start mid-gap on average so day 0 is statistically like any other.
        t = self.profile.advance(0.0, self.rng.uniform(0, self.MEAN_GAP_ACTIVITY_HOURS))
        while np.isfinite(t) and t < span:
            dur = max(
                float(self.rng.lognormal(dur_mu, lab.heavy_duration_sigma)),
                self.MIN_EPISODE,
            )
            end = min(t + dur, span)
            episodes.append(PlannedEpisode(self._heavy_kind(), t, end))
            if end >= span:
                break
            if self.rng.random() < self.FLAP_PROBABILITY:
                # Flap: the load dips for under five minutes and comes back.
                gap = float(self.rng.uniform(0.5 * MINUTE, 4.5 * MINUTE))
                t = end + gap
                continue
            gap_a = float(self.rng.lognormal(gap_mu, self.GAP_SIGMA)) / self.busyness
            t = self.profile.advance(end, gap_a)
        return episodes

    # -- updatedb -----------------------------------------------------------------

    def _plan_updatedb(self, span: float) -> list[PlannedEpisode]:
        lab = self.lab
        episodes = []
        n_days = int(span // DAY)
        if n_days == 0:
            return episodes
        # cron fires on the minute; duration varies slightly with
        # filesystem churn.  One draw per day, unconditionally, so the
        # whole sojourn sequence batches into a single vectorized sample
        # (bit-identical to drawing scalars day by day).
        wobble = self.rng.uniform(0.9, 1.1, size=n_days)
        for day in range(n_days):
            start = day * DAY + lab.updatedb_hour * HOUR
            dur = lab.updatedb_duration * float(wobble[day])
            end = min(start + dur, span)
            if start < span:
                episodes.append(PlannedEpisode(EpisodeKind.UPDATEDB, start, end))
        return episodes

    # -- transients -------------------------------------------------------------------

    def _plan_transients(self, span: float) -> list[PlannedEpisode]:
        """Sub-minute Th2 spikes (remote X clients, bursts of system work).

        The paper keeps these inside S1/S2: the guest is suspended briefly
        but no unavailability occurs.  They exercise the detector's grace
        rule in every generated trace.
        """
        n = self.rng.poisson(self.TRANSIENTS_PER_DAY * span / DAY)
        episodes = []
        # ``cumulative(span)`` is pure, so hoisting it out of the loop
        # changes no draw.  The duration draw is conditional on the
        # (data-dependent) placement draw landing inside the span, so the
        # pair sequence cannot batch without perturbing the stream in the
        # skip case; the draws stay scalar.
        total_activity = self.profile.cumulative(span)
        for _ in range(n):
            t0 = self.profile.advance(0.0, self.rng.uniform(0, total_activity))
            if not np.isfinite(t0) or t0 >= span:
                continue
            dur = float(self.rng.uniform(15.0, 45.0))
            episodes.append(
                PlannedEpisode(EpisodeKind.TRANSIENT, t0, min(t0 + dur, span))
            )
        episodes.sort(key=lambda e: e.start)
        return _drop_mutual_overlaps(episodes)


def _overlaps(a: PlannedEpisode, b: PlannedEpisode, margin: float = MINUTE) -> bool:
    return a.start < b.end + margin and b.start < a.end + margin


def _without_overlaps(
    candidates: list[PlannedEpisode], existing: list[PlannedEpisode]
) -> list[PlannedEpisode]:
    """Candidates that do not collide with already-accepted episodes.

    Vectorized pairwise test (candidates only ever check against the
    *existing* set, never each other, so one broadcast reproduces the
    scalar scan's decisions exactly — same floats, same comparisons).
    """
    if not candidates or not existing:
        return list(candidates)
    c_start = np.array([c.start for c in candidates])
    c_end = np.array([c.end for c in candidates])
    e_start = np.array([e.start for e in existing])
    e_end = np.array([e.end for e in existing])
    collides = (
        (c_start[:, None] < e_end[None, :] + MINUTE)
        & (e_start[None, :] < c_end[:, None] + MINUTE)
    ).any(axis=1)
    return [c for c, hit in zip(candidates, collides) if not hit]


def _drop_mutual_overlaps(episodes: list[PlannedEpisode]) -> list[PlannedEpisode]:
    """Keep the earlier of any overlapping pair (input must be sorted)."""
    kept: list[PlannedEpisode] = []
    for e in episodes:
        if not kept or not _overlaps(e, kept[-1]):
            kept.append(e)
    return kept
