"""Models of the SPEC CPU2000 guest applications of Table 1.

The paper uses four CPU-bound SPEC benchmarks as realistic guests for the
memory-contention experiments.  Table 1 records their measured footprints
on the 300 MHz / 384 MB Solaris machine; we reproduce those exact numbers
as model constants and expose each app as a guest task factory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..oskernel.tasks import Task
from .synthetic import cpu_bound_program, periodic_program

__all__ = ["SpecApp", "SPEC_APPS", "spec_guest_task"]


@dataclass(frozen=True)
class SpecApp:
    """One SPEC CPU2000 application as characterized in Table 1."""

    name: str
    #: Isolated CPU usage (the apps are CPU-bound: 97--99%).
    cpu_usage: float
    #: Resident-set size, MB.
    resident_mb: float
    #: Virtual size, MB.
    virtual_mb: float

    def __post_init__(self) -> None:
        if not 0 < self.cpu_usage <= 1:
            raise ConfigError("cpu_usage must be in (0, 1]")
        if self.resident_mb <= 0 or self.virtual_mb < self.resident_mb:
            raise ConfigError("need virtual_mb >= resident_mb > 0")

    def guest_task(self, *, nice: int = 0, total_cpu: float | None = None) -> Task:
        """Instantiate this application as a guest task."""
        return spec_guest_task(self, nice=nice, total_cpu=total_cpu)


#: Table 1, guest applications.
SPEC_APPS: dict[str, SpecApp] = {
    "apsi": SpecApp("apsi", cpu_usage=0.98, resident_mb=193.0, virtual_mb=205.0),
    "galgel": SpecApp("galgel", cpu_usage=0.99, resident_mb=29.0, virtual_mb=155.0),
    "bzip2": SpecApp("bzip2", cpu_usage=0.97, resident_mb=180.0, virtual_mb=182.0),
    "mcf": SpecApp("mcf", cpu_usage=0.99, resident_mb=96.0, virtual_mb=96.0),
}


def spec_guest_task(
    app: SpecApp | str, *, nice: int = 0, total_cpu: float | None = None
) -> Task:
    """A guest task modelling a SPEC application.

    CPU usage below 100% reflects the small I/O stalls of the real
    benchmark; we model it as a long compute loop with brief sleeps.
    """
    if isinstance(app, str):
        try:
            app = SPEC_APPS[app]
        except KeyError:
            raise ConfigError(
                f"unknown SPEC app {app!r}; choose from {sorted(SPEC_APPS)}"
            ) from None
    if app.cpu_usage >= 0.995:
        program = cpu_bound_program(total_cpu)
    else:
        # Long cycles: the app computes for seconds between short stalls.
        program = periodic_program(app.cpu_usage, period=5.0)
    return Task(
        app.name, program, nice=nice, resident_mb=app.resident_mb, is_guest=True
    )
