"""Synthetic compute/sleep programs (Section 3.2.1).

The paper's synthetic host programs run a loop of "compute, then sleep",
with the sleep time chosen so that the program's *isolated CPU usage* (its
usage when running alone) hits a target between 10% and 100%.  Guests are
fully CPU-bound.  All programs have tiny resident sets so CPU contention is
isolated from memory effects.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

import numpy as np

from ..errors import ConfigError
from ..oskernel.tasks import Phase, Task, compute_phase, sleep_phase

__all__ = [
    "cpu_bound_program",
    "periodic_program",
    "host_task",
    "guest_task",
    "DEFAULT_CYCLE_PERIOD",
]

#: Work-cycle period of the synthetic host programs, seconds.  The paper
#: does not state its value; 1 s cycles reproduce its threshold structure
#: (see the ablation bench ``bench_ablation_cycle_period``).
DEFAULT_CYCLE_PERIOD: float = 1.0

#: Chunk size for "infinite" compute phases; large enough that phase
#: bookkeeping is negligible, finite so accounting arithmetic stays exact.
_COMPUTE_CHUNK: float = 3600.0


def cpu_bound_program(total_cpu: Optional[float] = None) -> Iterator[Phase]:
    """A fully CPU-bound program (the paper's guest).

    Yields compute work until ``total_cpu`` CPU-seconds are done, or forever
    if ``total_cpu`` is ``None``.
    """
    if total_cpu is None:
        while True:
            yield compute_phase(_COMPUTE_CHUNK)
    else:
        if total_cpu < 0:
            raise ConfigError("total_cpu must be >= 0")
        remaining = total_cpu
        while remaining > 0:
            chunk = min(_COMPUTE_CHUNK, remaining)
            yield compute_phase(chunk)
            remaining -= chunk


def periodic_program(
    duty: float,
    period: float = DEFAULT_CYCLE_PERIOD,
    *,
    jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    cycles: Optional[int] = None,
) -> Iterator[Phase]:
    """A compute/sleep loop with isolated CPU usage ``duty``.

    Each cycle computes ``duty * period`` CPU-seconds then sleeps the
    remainder.  ``jitter`` (a fraction of the period) perturbs cycle lengths
    to model real workloads; with a seeded ``rng`` the program is still
    deterministic.

    Parameters
    ----------
    duty:
        Target isolated CPU usage in (0, 1].
    period:
        Cycle wall-clock length when running alone, seconds.
    jitter:
        Std-dev of lognormal cycle-length noise as a fraction of ``period``.
    cycles:
        Stop after this many cycles (``None`` = run forever).
    """
    if not 0 < duty <= 1:
        raise ConfigError(f"duty must be in (0, 1], got {duty}")
    if period <= 0:
        raise ConfigError("period must be positive")
    if jitter < 0:
        raise ConfigError("jitter must be >= 0")
    if jitter > 0 and rng is None:
        raise ConfigError("jitter requires an rng")

    if duty == 1.0:
        yield from cpu_bound_program(None if cycles is None else cycles * period)
        return

    counter = itertools.count() if cycles is None else range(cycles)
    for _ in counter:
        p = period
        if jitter > 0:
            assert rng is not None
            p = period * float(rng.lognormal(mean=0.0, sigma=jitter))
        yield compute_phase(duty * p)
        yield sleep_phase((1.0 - duty) * p)


def host_task(
    name: str,
    duty: float,
    *,
    period: float = DEFAULT_CYCLE_PERIOD,
    nice: int = 0,
    resident_mb: float = 1.0,
    jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> Task:
    """A synthetic host process with the given isolated CPU usage."""
    return Task(
        name,
        periodic_program(duty, period, jitter=jitter, rng=rng),
        nice=nice,
        resident_mb=resident_mb,
        is_guest=False,
    )


def guest_task(
    name: str = "guest",
    *,
    duty: float = 1.0,
    period: float = DEFAULT_CYCLE_PERIOD,
    nice: int = 0,
    resident_mb: float = 1.0,
    total_cpu: Optional[float] = None,
) -> Task:
    """A synthetic guest process (fully CPU-bound by default)."""
    if duty >= 1.0:
        program = cpu_bound_program(total_cpu)
    else:
        program = periodic_program(duty, period)
    return Task(name, program, nice=nice, resident_mb=resident_mb, is_guest=True)
