"""Random host-group construction (Section 3.2.1).

The paper measures contention against *host groups*: M host processes whose
isolated CPU usages sum to a target L_H.  "To create a host group with a
given L_H that consists of M processes, we randomly chose M host programs
with different isolated CPU usages and ran them together ... multiple
combinations of host processes were used ... the average of the
measurements is plotted."  This module reproduces that sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExperimentError
from ..oskernel.tasks import Task
from .synthetic import DEFAULT_CYCLE_PERIOD, host_task

__all__ = ["HostGroup", "random_duty_composition", "random_host_group"]

#: Host programs in the paper have isolated usage between 10% and 100%.
MIN_DUTY: float = 0.10
MAX_DUTY: float = 1.00
#: The paper's programs come in 10% steps; compositions snap to this grid.
DUTY_GRID: float = 0.05


@dataclass(frozen=True)
class HostGroup:
    """A host group: per-process isolated duties plus task construction."""

    duties: tuple[float, ...]
    period: float = DEFAULT_CYCLE_PERIOD

    def __post_init__(self) -> None:
        if not self.duties:
            raise ExperimentError("host group needs at least one process")
        for d in self.duties:
            if not 0 < d <= MAX_DUTY + 1e-9:
                raise ExperimentError(f"per-process duty {d} out of (0, 1]")

    @property
    def total_duty(self) -> float:
        """The group's aggregate isolated CPU usage L_H."""
        return float(sum(self.duties))

    @property
    def size(self) -> int:
        """M, the number of host processes."""
        return len(self.duties)

    def tasks(self, *, nice: int = 0, name_prefix: str = "host") -> list[Task]:
        """Instantiate the group's processes as host tasks.

        Cycle phases are staggered slightly so M identical processes do not
        compute in lockstep (real processes never start simultaneously).
        """
        tasks = []
        for i, d in enumerate(self.duties):
            # Distinct periods desynchronize the cycles: an 11% spread makes
            # burst overlaps decorrelate within a few cycles, so short
            # measurements average over alignments instead of freezing one.
            period = self.period * (1.0 + 0.11 * i)
            tasks.append(
                host_task(f"{name_prefix}{i}", d, period=period, nice=nice)
            )
        return tasks


def random_duty_composition(
    total: float, m: int, rng: np.random.Generator
) -> tuple[float, ...]:
    """Sample M per-process duties on the paper's grid summing to ``total``.

    Uses a Dirichlet split snapped to the duty grid, with the rounding
    residual folded into the largest share; rejects and resamples while any
    component falls outside the paper's 10%..100% per-program range.
    """
    if m < 1:
        raise ExperimentError("m must be >= 1")
    if not MIN_DUTY * m - 1e-9 <= total <= MAX_DUTY * m + 1e-9:
        raise ExperimentError(
            f"total duty {total} infeasible for {m} processes in "
            f"[{MIN_DUTY}, {MAX_DUTY}] each"
        )
    if m == 1:
        return (round(total / DUTY_GRID) * DUTY_GRID,)

    for _ in range(1000):
        shares = rng.dirichlet(np.ones(m)) * total
        snapped = np.round(shares / DUTY_GRID) * DUTY_GRID
        # Fold the snapping residual into the largest component.
        residual = total - snapped.sum()
        snapped[int(np.argmax(snapped))] += residual
        snapped = np.round(snapped / DUTY_GRID) * DUTY_GRID
        if (
            np.all(snapped >= MIN_DUTY - 1e-9)
            and np.all(snapped <= MAX_DUTY + 1e-9)
            and abs(snapped.sum() - total) < DUTY_GRID / 2
        ):
            return tuple(float(x) for x in snapped)
    # Fallback: even split (always feasible given the range check above).
    return tuple(float(total / m) for _ in range(m))


def random_host_group(
    total: float,
    m: int,
    rng: np.random.Generator,
    *,
    period: float = DEFAULT_CYCLE_PERIOD,
) -> HostGroup:
    """A random host group with aggregate isolated usage ``total`` and size ``m``."""
    return HostGroup(random_duty_composition(total, m, rng), period=period)
