"""Command-line interface: ``repro-fgcs <command>``.

Commands
--------
* ``generate`` — generate the simulated three-month testbed trace and save
  it as JSONL or binary (``--format``);
* ``analyze`` — reproduce Table 2 / Figure 6 / Figure 7 from a trace file
  (or a freshly generated trace) and check the paper's landmarks;
* ``convert`` — re-encode a trace file or shard directory between the
  JSONL and binary formats (see ``docs/formats.md``);
* ``thresholds`` — run the offline contention calibration (Section 3.2)
  and print the derived Th1/Th2;
* ``predict`` — evaluate the availability predictors on a trace;
* ``schedule`` — run the proactive-vs-oblivious scheduling comparison;
* ``report`` — three modes: write every analysis artifact for a trace to
  a directory; render a run manifest (``--metrics-out`` output) as a
  human performance report; or diff two manifests with
  ``--compare baseline.json current.json [--max-regress PCT]`` — exits
  nonzero when a metric regressed beyond the budget, so it works as a CI
  perf gate;
* ``serve`` — run the availability-forecast daemon over a trace file or
  shard store, answering HTTP/JSON queries until shut down (see
  ``docs/serving.md``);
* ``query`` — the matching client: one request against a running daemon,
  response printed as JSON;
* ``scenario`` — the declarative scenario registry (see
  ``docs/scenarios.md``): ``list``/``show``/``validate`` inspect and
  check the library documents, and ``scenario diff A B ...`` generates
  two or more scenarios at a common frame and renders Table 2 /
  Figure 6 / Figure 7 side by side with per-cell deltas.  ``generate``
  also takes ``--scenario NAME`` to synthesize a scenario fleet instead
  of a single-profile testbed.

Every command also takes the telemetry flags (``--log-level``,
``--log-json``, ``--metrics-out PATH``, ``--trace-out PATH``);
``--metrics-out`` writes a JSON run manifest (seed, config fingerprint,
versions, phase spans, metrics, resource time series) at the end of the
run (``-`` writes it to stdout), and ``--trace-out`` writes a Chrome
Trace Event Format JSON of the run's merged span tree — one lane per
pool worker process — loadable in Perfetto.  When either is given, a
background sampler records this process's RSS/CPU/fd/I-O series.
Telemetry never changes results: outputs are bit-identical with it on
or off.

Robustness flags (see ``docs/robustness.md``): ``--fault-plan FILE``
attaches a deterministic fault-injection plan for chaos testing;
``--max-retries`` and ``--unit-timeout`` bound per-unit retries and
runtimes.  Exit codes: 0 success, 1 landmark-check failure, 2 invalid
fault plan / invalid scenario or config (the offending key path is
printed, never a traceback) / unrecoverable fault, 3 partial results
(machines quarantined after exhausting retries).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Callable, Optional, Sequence

from ._version import __version__
from .config import FgcsConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fgcs",
        description=(
            "Reproduction of 'Empirical Studies on the Behavior of Resource "
            "Availability in Fine-Grained Cycle Sharing Systems' (ICPP 2006)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Telemetry flags shared by *every* command (including ``thresholds``,
    # which doesn't take the testbed options below).
    obs_common = argparse.ArgumentParser(add_help=False)
    obs_common.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="warning",
        help="logging verbosity on stderr (default: warning)",
    )
    obs_common.add_argument(
        "--log-json",
        action="store_true",
        help="emit JSON-lines logs (also silences the progress line)",
    )
    obs_common.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a JSON run manifest (seed, config fingerprint, phase "
        "spans, metrics, resource time series) to PATH at the end of the "
        "run ('-' writes it to stdout)",
    )
    obs_common.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome Trace Event Format JSON of the run (merged "
        "span tree with one lane per worker process plus resource "
        "counters) to PATH; load it in Perfetto or chrome://tracing",
    )

    # Fault-handling flags shared by every command that runs parallel work.
    fault_common = argparse.ArgumentParser(add_help=False)
    fault_common.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="JSON fault-injection plan for chaos testing (see "
        "docs/robustness.md); faults are injected deterministically "
        "from the plan's seed",
    )
    fault_common.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per failed work unit before giving up (default: 2)",
    )
    fault_common.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-unit wall-clock budget; overruns are treated as "
        "failures and retried (default: none)",
    )

    common = argparse.ArgumentParser(
        add_help=False, parents=[obs_common, fault_common]
    )
    common.add_argument("--seed", type=int, default=2006, help="root RNG seed")
    common.add_argument(
        "--machines", type=int, default=20, help="testbed size (paper: 20)"
    )
    common.add_argument(
        "--days", type=int, default=92, help="trace length in days (paper: 92)"
    )
    common.add_argument(
        "--profile",
        choices=("student-lab", "enterprise", "home"),
        default="student-lab",
        help="testbed workload pattern (paper's testbed: student-lab)",
    )
    common.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for parallel stages (0 = one per CPU; "
        "results are identical for any value)",
    )
    common.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk trace dataset cache (off by default)",
    )
    common.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the dataset cache even when --cache-dir is set",
    )

    p_gen = sub.add_parser(
        "generate", parents=[common], help="generate a testbed trace"
    )
    p_gen.add_argument(
        "output",
        help="output trace path (or, with --shards, a shard directory)",
    )
    p_gen.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="write the fleet as N per-machine-range shards plus a "
        "manifest instead of one trace file (constant parent memory; "
        "shards generate in parallel with --jobs)",
    )
    p_gen.add_argument(
        "--format",
        choices=("jsonl", "binary"),
        default="jsonl",
        help="on-disk trace format: human-greppable JSONL or the binary "
        "columnar fgcs-bin format (zero-copy reads; see docs/formats.md)",
    )
    p_gen.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="generate a declarative scenario fleet instead of a single-"
        "profile testbed: a library scenario name ('scenario list') or a "
        "scenario document path (.yaml/.json); overrides --profile, while "
        "--machines/--days/--seed pin the frame (see docs/scenarios.md)",
    )

    p_conv = sub.add_parser(
        "convert",
        parents=[obs_common],
        help="re-encode a trace file or shard directory between formats",
    )
    p_conv.add_argument(
        "input", help="source trace file or shard directory/manifest"
    )
    p_conv.add_argument(
        "output", help="destination trace file or shard directory"
    )
    p_conv.add_argument(
        "--format",
        choices=("jsonl", "binary"),
        default="binary",
        help="target trace format (default: binary)",
    )

    p_ana = sub.add_parser(
        "analyze", parents=[common], help="reproduce Table 2 / Figures 6-7"
    )
    p_ana.add_argument(
        "--trace",
        default=None,
        help="existing trace: a JSONL file or a shard directory "
        "(default: generate)",
    )
    p_ana.add_argument(
        "--check", action="store_true", help="also check the paper's landmarks"
    )
    p_ana.add_argument(
        "--streaming",
        action="store_true",
        help="compute the figures with the mergeable shard-by-shard "
        "accumulators (constant memory on shard directories; results "
        "match the monolithic path)",
    )
    p_ana.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="with --streaming on a monolithic trace: partition into N "
        "virtual shards (default: one per machine); ignored for shard "
        "directories, which stream their own shards",
    )

    p_thr = sub.add_parser(
        "thresholds",
        parents=[obs_common, fault_common],
        help="calibrate Th1/Th2 via the Section 3.2 experiments",
    )
    p_thr.add_argument(
        "--duration", type=float, default=120.0, help="seconds simulated per run"
    )
    p_thr.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep cells (0 = one per CPU)",
    )

    p_pred = sub.add_parser(
        "predict", parents=[common], help="evaluate availability predictors"
    )
    p_pred.add_argument("--trace", default=None, help="existing trace JSONL")
    p_pred.add_argument(
        "--train-days", type=int, default=63, help="training prefix length"
    )

    p_sched = sub.add_parser(
        "schedule", parents=[common], help="proactive scheduling comparison"
    )
    p_sched.add_argument("--trace", default=None, help="existing trace JSONL")
    p_sched.add_argument("--train-days", type=int, default=63)

    p_srv = sub.add_parser(
        "serve",
        parents=[obs_common],
        help="run the availability-forecast HTTP daemon over a trace",
    )
    p_srv.add_argument(
        "trace",
        help="trace to bootstrap from: a JSONL/binary file or a shard "
        "directory (binary shards rebuild cold machines zero-copy)",
    )
    p_srv.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    p_srv.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default: 0 = pick a free one, printed on start)",
    )
    p_srv.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="scale out across N worker processes, each owning a "
        "contiguous shard range behind a router front (needs a shard-"
        "store trace; default: 1 = single process)",
    )
    p_srv.add_argument(
        "--hot-shards",
        type=int,
        default=None,
        metavar="N",
        help="keep at most N count blocks resident per process; cold "
        "blocks rebuild on demand from the store (default: unbounded)",
    )
    p_srv.add_argument(
        "--block-machines",
        type=int,
        default=None,
        metavar="M",
        help="page base-tier state in blocks of M machines instead of "
        "whole shards — finer eviction grain for very large fleets "
        "(default: whole-shard blocks)",
    )
    p_srv.add_argument(
        "--hot-mb",
        type=float,
        default=None,
        metavar="MB",
        help="resident-state ceiling in MiB for the hot tier "
        "(default: unbounded)",
    )
    p_srv.add_argument(
        "--history-days",
        type=int,
        default=8,
        help="same-type history days per prediction (default: 8)",
    )
    p_srv.add_argument(
        "--statistic",
        choices=("mean", "median", "trimmed"),
        default="mean",
        help="reduction over history counts (default: mean)",
    )
    p_srv.add_argument(
        "--laplace",
        type=float,
        default=0.5,
        help="Laplace smoothing pseudo-count for survival (default: 0.5)",
    )
    p_srv.add_argument(
        "--ingest-queue",
        type=int,
        default=100_000,
        metavar="N",
        help="bounded async ingest queue: at most N accepted events may "
        "sit unapplied; batches beyond that get 429 + Retry-After "
        "(default: 100000)",
    )
    p_srv.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="persist the streamed-event overlay into DIR (atomic "
        "write-temp-rename) on shutdown and every --snapshot-every "
        "batches, and restore it on boot (default: no snapshots)",
    )
    p_srv.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        metavar="B",
        help="with --snapshot-dir: snapshot after every B applied "
        "ingest batches (default: 64)",
    )
    p_srv.add_argument(
        "--stdin",
        action="store_true",
        help="also ingest JSONL events from stdin while serving "
        "(one event object per line; EOF stops ingest, not the server)",
    )

    p_qry = sub.add_parser(
        "query",
        parents=[obs_common],
        help="query a running forecast daemon; response printed as JSON",
    )
    p_qry.add_argument(
        "--url",
        required=True,
        help="daemon address, e.g. http://127.0.0.1:8642",
    )
    q_sub = p_qry.add_subparsers(dest="endpoint", required=True)
    q_avail = q_sub.add_parser(
        "availability", help="P(machine available for the whole window)"
    )
    q_avail.add_argument("--machine", type=int, required=True)
    q_cap = q_sub.add_parser(
        "capacity", help="machines forecast free for the whole window"
    )
    q_cap.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="survival probability a machine needs to count (default: 0.5)",
    )
    q_rank = q_sub.add_parser("rank", help="top-k machines by survival")
    q_rank.add_argument("--k", type=int, default=None)
    for q_parser in (q_avail, q_cap, q_rank):
        q_parser.add_argument(
            "--duration",
            type=float,
            required=True,
            metavar="HOURS",
            help="window length in hours",
        )
        q_parser.add_argument(
            "--day",
            type=int,
            default=None,
            help="absolute day index (default: the first unobserved day)",
        )
        q_parser.add_argument(
            "--hour",
            type=float,
            default=None,
            help="window start hour within the day (default: 0)",
        )
    q_sub.add_parser("stats", help="tier/ingest/request counters")
    q_sub.add_parser("health", help="liveness + readiness")
    q_sub.add_parser("shutdown", help="stop the daemon gracefully")

    p_scn = sub.add_parser(
        "scenario",
        help="inspect, validate, and diff declarative fleet scenarios "
        "(see docs/scenarios.md)",
    )
    scn_sub = p_scn.add_subparsers(dest="action", required=True)
    scn_sub.add_parser(
        "list",
        parents=[obs_common],
        help="list the library scenarios with their descriptions",
    )
    scn_show = scn_sub.add_parser(
        "show",
        parents=[obs_common],
        help="show one scenario's resolved fleet, schedule, and fingerprint",
    )
    scn_show.add_argument(
        "name", help="library scenario name or scenario document path"
    )
    scn_show.add_argument(
        "--machines",
        type=int,
        default=None,
        help="fleet size (default: the scenario's own default)",
    )
    scn_show.add_argument(
        "--days",
        type=int,
        default=None,
        help="trace length in days (default: the scenario's own default)",
    )
    scn_show.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root RNG seed (default: the scenario's own default)",
    )
    scn_val = scn_sub.add_parser(
        "validate",
        parents=[obs_common],
        help="validate scenario documents; any invalid document exits 2 "
        "with its offending key path",
    )
    scn_val.add_argument(
        "names",
        nargs="*",
        help="library scenario names or scenario document paths",
    )
    scn_val.add_argument(
        "--all",
        action="store_true",
        help="validate every scenario in the library",
    )
    scn_diff = scn_sub.add_parser(
        "diff",
        parents=[common],
        help="generate two or more scenarios at a common frame and render "
        "Table 2 / Figure 6 / Figure 7 side by side with deltas",
    )
    scn_diff.add_argument(
        "names",
        nargs="+",
        help="scenario names/paths; the first is the baseline the deltas "
        "are taken against",
    )
    scn_diff.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the report to PATH",
    )

    p_rep = sub.add_parser(
        "report",
        parents=[common],
        help="write analysis artifacts for a trace to a directory, render "
        "a run manifest as a performance report, or --compare two "
        "manifests as a regression gate",
    )
    p_rep.add_argument(
        "target",
        nargs="?",
        default=None,
        help="an output directory for the analysis artifacts, or an "
        "existing run-manifest JSON (from --metrics-out) to render as "
        "a performance report",
    )
    p_rep.add_argument("--trace", default=None, help="existing trace JSONL")
    p_rep.add_argument(
        "--compare",
        nargs=2,
        default=None,
        metavar=("BASELINE", "CURRENT"),
        help="diff two run manifests metric by metric; exits 1 when any "
        "metric regressed beyond --max-regress percent",
    )
    p_rep.add_argument(
        "--max-regress",
        type=float,
        default=10.0,
        metavar="PCT",
        help="regression budget for --compare, in percent of the "
        "baseline value (default: 10)",
    )

    return parser


def _fault_plan_from(args: argparse.Namespace):
    """The :class:`repro.faults.FaultPlan` named by ``--fault-plan``, if any."""
    path = getattr(args, "fault_plan", None)
    if not path:
        return None
    from .faults import load_fault_plan

    return load_fault_plan(path)


def _execution_from(args: argparse.Namespace):
    from .config import ExecutionConfig

    return ExecutionConfig(
        jobs=getattr(args, "jobs", 1),
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=not getattr(args, "no_cache", False),
        fault_plan=_fault_plan_from(args),
        max_retries=getattr(args, "max_retries", 2),
        unit_timeout=getattr(args, "unit_timeout", None),
    )


def _config_from(args: argparse.Namespace) -> FgcsConfig:
    from .workloads.profiles import PROFILES

    factory = PROFILES[getattr(args, "profile", "student-lab")]
    config = factory(n_machines=args.machines, days=args.days, seed=args.seed)
    return config.with_execution(_execution_from(args))


def _compiled_scenario_from(args: argparse.Namespace):
    """Resolve ``--scenario`` (or a positional name) to a compiled scenario.

    The CLI frame flags always pin the frame: ``--machines``/``--days``/
    ``--seed`` carry their argparse defaults (20/92/2006 — the same as
    the scenario frame defaults) when not given, so a scenario's own
    ``defaults`` block applies through :func:`compile_scenario` in API
    use but the CLI frame is always explicit and printed by ``show``.
    """
    from .scenarios import compile_scenario, get_scenario

    spec = get_scenario(args.scenario)
    return compile_scenario(
        spec,
        machines=getattr(args, "machines", None),
        days=getattr(args, "days", None),
        seed=getattr(args, "seed", None),
    )


def _partial_results(dataset) -> int:
    """3 if the dataset is degraded (quarantined machines), else 0.

    Degraded runs still produce their artifacts — the events that *were*
    generated are real — but the nonzero exit code and stderr summary
    keep a partial dataset from silently passing for a complete one.
    """
    quarantined = dataset.metadata.get("quarantined_machines") or []
    if not quarantined:
        return 0
    print(
        f"warning: partial results: {len(quarantined)} machine(s) "
        f"quarantined after exhausting retries (ids {quarantined}); "
        "their events are missing",
        file=sys.stderr,
    )
    return 3


def _progress(
    args: argparse.Namespace, stage: str, *, unit: Optional[str] = None
) -> Optional[Callable[[int, int], None]]:
    """The ``[k/N] <stage>`` stderr progress callback, or ``None``.

    Silent when stderr is not a TTY or under ``--log-json`` (machine-
    readable output stays clean).  Sharded stages pass ``unit="shard"``
    for ``[shard k/N] <stage>``.
    """
    from .obs import cli_progress

    if getattr(args, "log_json", False):
        return None
    return cli_progress(stage, unit=unit)


def _load_or_generate(args: argparse.Namespace):
    from .traces import generate_dataset, is_shard_store, load_dataset, open_shards

    trace = getattr(args, "trace", None)
    if trace:
        if is_shard_store(trace):
            print(f"loading sharded trace from {trace}", file=sys.stderr)
            return open_shards(trace).load_full()
        print(f"loading trace from {trace}", file=sys.stderr)
        return load_dataset(trace)
    print("generating trace (use 'generate' to save one for reuse)", file=sys.stderr)
    return generate_dataset(
        _config_from(args), progress=_progress(args, args.command)
    )


def _record_scenario(compiled) -> None:
    """Put the scenario identity into the run's metrics stream.

    ``build_manifest`` lifts these events into the manifest's
    ``scenario`` section, so a trace generated from a scenario is
    attributable: the section carries the scenario name and the compiled
    fingerprint that keys its cache entries.
    """
    from .obs import get_registry

    get_registry().record(
        "scenario",
        scenario=compiled.spec.name,
        fingerprint=compiled.fingerprint,
        classes=[c.name for c in compiled.spec.classes],
        machines=compiled.n_machines,
        days=compiled.days,
        seed=compiled.seed,
        trivial=compiled.is_trivial,
    )


def _generate_scenario(args: argparse.Namespace) -> int:
    from .scenarios import generate_scenario_columns, generate_scenario_shards
    from .traces import save_columns
    from .units import DAY

    compiled = _compiled_scenario_from(args)
    execution = _execution_from(args)
    _record_scenario(compiled)
    if args.shards is not None:
        manifest = generate_scenario_shards(
            compiled,
            args.output,
            args.shards,
            progress=_progress(args, "generate", unit="shard"),
            execution=execution,
            format=args.format,
        )
        print(
            f"wrote {manifest.n_events} events across {manifest.n_shards} "
            f"shard(s) to {args.output} (scenario {compiled.spec.name})"
        )
        return _partial_results(manifest)
    columns = generate_scenario_columns(
        compiled,
        progress=_progress(args, "generate"),
        execution=execution,
    )
    save_columns(columns, args.output, format=args.format)
    machine_days = columns.n_machines * columns.span / DAY
    print(
        f"wrote {len(columns)} events over {machine_days:.0f} "
        f"machine-days to {args.output} (scenario {compiled.spec.name})"
    )
    return _partial_results(columns)


def cmd_generate(args: argparse.Namespace) -> int:
    from .traces import generate_dataset_columns, generate_shards, save_columns
    from .units import DAY

    if args.scenario:
        return _generate_scenario(args)
    config = _config_from(args)
    if args.shards is not None:
        manifest = generate_shards(
            config,
            args.output,
            args.shards,
            progress=_progress(args, "generate", unit="shard"),
            format=args.format,
        )
        print(
            f"wrote {manifest.n_events} events across {manifest.n_shards} "
            f"shard(s) to {args.output}"
        )
        return _partial_results(manifest)
    # The object-free columnar pipeline: events go straight from the
    # detector's structured rows to disk (either format, identical bytes
    # to the legacy per-event path).
    columns = generate_dataset_columns(
        config, progress=_progress(args, "generate")
    )
    save_columns(columns, args.output, format=args.format)
    machine_days = columns.n_machines * columns.span / DAY
    print(
        f"wrote {len(columns)} events over {machine_days:.0f} "
        f"machine-days to {args.output}"
    )
    return _partial_results(columns)


def cmd_convert(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .traces import (
        convert_shards,
        is_shard_store,
        load_dataset,
        open_shards,
        save_dataset,
    )

    if is_shard_store(args.input):
        manifest = convert_shards(
            open_shards(args.input),
            args.output,
            args.format,
            progress=_progress(args, "convert", unit="shard"),
        )
        print(
            f"converted {manifest.n_shards} shard(s) "
            f"({manifest.n_events} events) to {args.format} in {args.output}"
        )
        return 0
    dataset = load_dataset(args.input)
    save_dataset(dataset, args.output, format=args.format)
    size = Path(args.output).stat().st_size
    print(
        f"converted {len(dataset)} events to {args.format} in "
        f"{args.output} ({size} bytes)"
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.ascii import render_figure6_chart, render_figure7_chart
    from .analysis.report import render_figure6, render_figure7, render_table2
    from .units import DAY, is_weekend

    # Both paths produce the same objects to render: the monolithic
    # single-pass analyses, or the streamed mergeable accumulators
    # (identical figures — exact for all counted statistics, see
    # repro.analysis.accumulators).
    if args.streaming:
        from .analysis import analyze_dataset_streaming, analyze_shards
        from .analysis import evaluate_landmarks
        from .traces import is_shard_store, open_shards

        trace = getattr(args, "trace", None)
        if trace and is_shard_store(trace):
            print(f"streaming sharded trace from {trace}", file=sys.stderr)
            carrier = open_shards(trace)
            analysis = analyze_shards(
                carrier,
                execution=_config_from(args).execution,
                progress=_progress(args, "analyze", unit="shard"),
            )
        else:
            carrier = _load_or_generate(args)
            analysis = analyze_dataset_streaming(carrier, args.shards)
        breakdown = analysis.breakdown
        dist = analysis.intervals
        span, start_weekday = analysis.span, analysis.start_weekday

        def pattern_fn():
            return analysis.pattern

        def checks_fn():
            return evaluate_landmarks(
                breakdown,
                dist,
                analysis.pattern,
                span=span,
                n_machines=analysis.n_machines,
            )

    else:
        from .analysis import (
            cause_breakdown,
            check_paper_landmarks,
            daily_pattern,
            interval_distribution,
        )

        carrier = _load_or_generate(args)
        dataset = carrier
        breakdown = cause_breakdown(dataset)
        dist = interval_distribution(dataset)
        span, start_weekday = dataset.span, dataset.start_weekday

        def pattern_fn():
            return daily_pattern(dataset)

        def checks_fn():
            return check_paper_landmarks(dataset)

    print(render_table2(breakdown))
    print()
    # Short traces may cover only one day type; render what exists so a
    # 2-day smoke run still produces Table 2 and a valid manifest.
    n_days = int(span // DAY)
    has_weekend = any(
        is_weekend(d * DAY, start_weekday) for d in range(n_days)
    )
    has_weekday = any(
        not is_weekend(d * DAY, start_weekday) for d in range(n_days)
    )
    if dist.weekday_count and dist.weekend_count:
        print(render_figure6(dist))
        print()
        print(render_figure6_chart(dist))
        print()
    else:
        print(
            "Figure 6 skipped: needs weekday and weekend availability "
            "intervals (trace too short)"
        )
        print()
    if has_weekday and has_weekend:
        pattern = pattern_fn()
        print(render_figure7(pattern))
        print()
        print(render_figure7_chart(pattern, weekend=False))
        print()
        print(render_figure7_chart(pattern, weekend=True))
    else:
        print(
            "Figure 7 skipped: needs both weekday and weekend days "
            "(trace too short)"
        )
    if args.check:
        print()
        checks = checks_fn()
        for c in checks:
            print(c)
        if not all(c.ok for c in checks):
            return _partial_results(carrier) or 1
    return _partial_results(carrier)


def cmd_thresholds(args: argparse.Namespace) -> int:
    from .contention.thresholds import calibrate_thresholds
    from .faults import FaultContext, RetryPolicy

    faults = FaultContext(
        plan=_fault_plan_from(args),
        policy=RetryPolicy(
            max_retries=args.max_retries, unit_timeout=args.unit_timeout
        ),
        label="thresholds.cell",
    )
    estimate = calibrate_thresholds(
        duration=args.duration, jobs=args.jobs, faults=faults
    )
    print(
        f"calibrated Th1 = {estimate.th1:.2f} (paper: 0.20), "
        f"Th2 = {estimate.th2:.2f} (paper: 0.60)"
    )
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    from .prediction import (
        EwmaPredictor,
        GlobalRatePredictor,
        HistoryWindowPredictor,
        HourlyMeanPredictor,
        IntervalExponentialPredictor,
        LastDayPredictor,
        evaluate_predictors,
    )

    dataset = _load_or_generate(args)
    result = evaluate_predictors(
        dataset,
        [
            GlobalRatePredictor(),
            HourlyMeanPredictor(),
            LastDayPredictor(),
            EwmaPredictor(),
            IntervalExponentialPredictor(),
            HistoryWindowPredictor(history_days=8),
        ],
        train_days=args.train_days,
    )
    print(f"train {result.train_days} days, test {result.test_days} days")
    for score in sorted(result.scores, key=lambda s: s.brier):
        print(score)
    return _partial_results(dataset)


def cmd_schedule(args: argparse.Namespace) -> int:
    from .scheduling import run_scheduling_experiment

    dataset = _load_or_generate(args)
    comparison = run_scheduling_experiment(dataset, train_days=args.train_days)
    for r in comparison.results:
        print(r)
    return _partial_results(dataset)


def _cmd_serve_router(args: argparse.Namespace) -> int:
    """The ``serve --workers N`` scale-out path."""
    import time

    from .errors import ServeError, TraceError
    from .obs import get_registry
    from .serve import start_router
    from .traces import is_shard_store, open_shards

    if not is_shard_store(args.trace):
        print(
            "error: --workers needs a shard-store trace (worker "
            "processes rebuild their machine ranges from the store); "
            f"{args.trace!r} is a flat trace file",
            file=sys.stderr,
        )
        return 2
    hot_bytes = (
        int(args.hot_mb * (1 << 20)) if args.hot_mb is not None else None
    )
    registry = get_registry()
    try:
        store = open_shards(args.trace)
        handle = start_router(
            store,
            str(args.trace),
            n_workers=args.workers,
            host=args.host,
            port=args.port,
            registry=registry,
            block_machines=args.block_machines,
            hot_shards=args.hot_shards,
            hot_bytes=hot_bytes,
            history_days=args.history_days,
            statistic=args.statistic,
            laplace=args.laplace,
            ingest_queue=args.ingest_queue,
            snapshot_dir=args.snapshot_dir,
            snapshot_every=args.snapshot_every,
        )
    except (ServeError, TraceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    n_workers = len(handle.supervisor.workers)
    print(
        f"routing {store.n_machines} machine(s) across {n_workers} "
        f"worker(s) ({store.n_shards} shard(s)) on {handle.url} — "
        "POST /v1/shutdown or Ctrl-C to stop",
        file=sys.stderr,
    )
    t0 = time.perf_counter()
    try:
        handle.wait()
    except KeyboardInterrupt:
        print("interrupted, shutting down", file=sys.stderr)
    finally:
        # Gather per-worker lanes before the fleet goes away.
        try:
            _, fleet_stats, _ = handle.app.stats()
        except Exception:
            fleet_stats = {"workers": [], "totals": {}}
        handle.close()
        duration = time.perf_counter() - t0
        requests = registry.counter_value("serve.requests")
        lanes = []
        for lane in fleet_stats.get("workers", []):
            entry = {
                "worker": lane.get("worker"),
                "up": lane.get("up", False),
                "machine_lo": lane.get("machine_lo"),
                "machine_hi": lane.get("machine_hi"),
                "requests": lane.get("requests", 0),
                "qps": (
                    round(lane.get("requests", 0) / duration, 3)
                    if duration > 0
                    else 0.0
                ),
            }
            if lane.get("latency"):
                entry["latency"] = lane["latency"]
            if lane.get("tier"):
                entry["tier"] = lane["tier"]
            if lane.get("ingest"):
                entry["ingest"] = lane["ingest"]
            lanes.append(entry)
        registry.record(
            "serve",
            role="router",
            requests=requests,
            qps=round(requests / duration, 3) if duration > 0 else 0.0,
            duration_s=round(duration, 3),
            machines=store.n_machines,
            n_workers=n_workers,
            workers=lanes,
            totals=fleet_stats.get("totals", {}),
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import time

    from .errors import ServeError, TraceError
    from .obs import get_registry
    from .serve import AsyncIngester, ServeState, start_server
    from .traces import is_shard_store, load_dataset, open_shards
    from .traces.records import EventColumns

    if args.workers != 1:
        return _cmd_serve_router(args)

    hot_bytes = (
        int(args.hot_mb * (1 << 20)) if args.hot_mb is not None else None
    )
    knobs = dict(
        hot_shards=args.hot_shards,
        hot_bytes=hot_bytes,
        history_days=args.history_days,
        statistic=args.statistic,
        laplace=args.laplace,
    )
    try:
        if is_shard_store(args.trace):
            store = open_shards(args.trace)
            state = ServeState.from_store(
                store, block_machines=args.block_machines, **knobs
            )
            source = f"{store.n_shards} shard(s)"
        else:
            dataset = load_dataset(args.trace)
            state = ServeState.from_columns(
                EventColumns.from_dataset(dataset), **knobs
            )
            source = f"{len(dataset)} event(s)"
        snapshot_fn = None
        if args.snapshot_dir is not None:
            from pathlib import Path

            snap = Path(args.snapshot_dir) / "serve.npz"
            if snap.exists():
                restored = state.restore_overlay_snapshot(snap)
                print(
                    f"restored {restored} streamed event(s) from {snap}",
                    file=sys.stderr,
                )
            snapshot_fn = lambda: state.save_overlay_snapshot(snap)  # noqa: E731
    except (ServeError, TraceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    registry = get_registry()
    ingester = AsyncIngester(
        state,
        max_pending_events=args.ingest_queue,
        snapshot_every=args.snapshot_every if snapshot_fn else None,
        snapshot_fn=snapshot_fn,
    )
    handle = start_server(
        state,
        host=args.host,
        port=args.port,
        registry=registry,
        ingester=ingester,
    )
    print(
        f"serving {state.n_machines} machine(s) ({source}, horizon day "
        f"{state.horizon_day}) on {handle.url} — POST /v1/shutdown or "
        "Ctrl-C to stop",
        file=sys.stderr,
    )
    t0 = time.perf_counter()
    rc = 0
    try:
        if args.stdin:
            # Tail stdin as a JSONL event stream; queries keep being
            # answered on the server threads while this loop ingests.
            for line in sys.stdin:
                line = line.strip()
                if not line:
                    continue
                try:
                    state.ingest_jsonl([line])
                except ServeError as exc:
                    print(f"ingest error: {exc}", file=sys.stderr)
                    registry.inc("serve.ingest_errors")
            handle.wait()
        else:
            handle.wait()
    except KeyboardInterrupt:
        print("interrupted, shutting down", file=sys.stderr)
    finally:
        handle.close()  # drains + closes the ingester (final snapshot)
        duration = time.perf_counter() - t0
        requests = registry.counter_value("serve.requests")
        tiers = state.tier_stats()
        queue = ingester.stats()
        registry.record(
            "serve",
            requests=requests,
            qps=round(requests / duration, 3) if duration > 0 else 0.0,
            duration_s=round(duration, 3),
            machines=state.n_machines,
            horizon_day=state.horizon_day,
            tier={
                "hot_entries": tiers.hot_entries,
                "resident_bytes": tiers.resident_bytes,
                "hits": tiers.hits,
                "rebuilds": tiers.rebuilds,
                "evictions": tiers.evictions,
                "n_blocks": tiers.n_blocks,
                "block_machines": tiers.block_machines,
            },
            ingest={
                "streamed_events": tiers.streamed_events,
                "deduplicated_events": tiers.deduplicated_events,
                "overlay_cells": tiers.overlay_cells,
                "queue": {
                    "depth_events": queue.depth_events,
                    "capacity_events": queue.capacity_events,
                    "enqueued_batches": queue.enqueued_batches,
                    "applied_batches": queue.applied_batches,
                    "backpressure_rejections": queue.backpressure_rejections,
                    "snapshots": queue.snapshots,
                    "snapshot_failures": queue.snapshot_failures,
                },
            },
        )
    return rc


def cmd_query(args: argparse.Namespace) -> int:
    import json

    from .serve import ServeClient, ServeRequestError
    from .errors import ServeError

    try:
        with ServeClient(args.url) as client:
            if args.endpoint == "availability":
                payload = client.availability(
                    args.machine, args.duration, day=args.day, hour=args.hour
                )
            elif args.endpoint == "capacity":
                payload = client.capacity(
                    args.duration,
                    threshold=args.threshold,
                    day=args.day,
                    hour=args.hour,
                )
            elif args.endpoint == "rank":
                payload = client.rank(
                    args.duration, k=args.k, day=args.day, hour=args.hour
                )
            elif args.endpoint == "stats":
                payload = client.stats()
            elif args.endpoint == "health":
                payload = client.healthz()
            else:
                payload = client.shutdown()
    except ServeRequestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ServeError, ConnectionError, OSError, TimeoutError) as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    if args.action == "list":
        return _scenario_list(args)
    if args.action == "show":
        return _scenario_show(args)
    if args.action == "validate":
        return _scenario_validate(args)
    return _scenario_diff(args)


def _scenario_list(args: argparse.Namespace) -> int:
    from .scenarios import get_scenario, scenario_names

    names = scenario_names()
    width = max((len(n) for n in names), default=0)
    for name in names:
        spec = get_scenario(name)
        tags = []
        if len(spec.classes) > 1:
            tags.append(f"{len(spec.classes)} classes")
        if spec.regimes:
            tags.append(f"{len(spec.regimes)} regimes")
        if spec.outages:
            tags.append(f"{len(spec.outages)} outages")
        if spec.flash_crowds:
            tags.append(f"{len(spec.flash_crowds)} flash crowds")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        print(f"{name:<{width}}  {spec.description}{suffix}")
    return 0


def _scenario_show(args: argparse.Namespace) -> int:
    from .scenarios import compile_scenario, get_scenario
    from .units import DAY

    spec = get_scenario(args.name)
    compiled = compile_scenario(
        spec, machines=args.machines, days=args.days, seed=args.seed
    )
    print(f"scenario: {spec.name}")
    print(f"  {spec.description}")
    print(
        f"frame: {compiled.n_machines} machines x {compiled.days} days, "
        f"seed {compiled.seed}"
    )
    print(f"fingerprint: {compiled.fingerprint}")
    ranges = compiled.class_ranges()
    print("classes:")
    for cls, (lo, hi) in zip(spec.classes, ranges):
        overrides = []
        if cls.lab:
            overrides.append(
                "lab{" + ", ".join(f"{k}={v:g}" for k, v in sorted(cls.lab.items())) + "}"
            )
        if cls.testbed:
            overrides.append(
                "testbed{"
                + ", ".join(f"{k}={v:g}" for k, v in sorted(cls.testbed.items()))
                + "}"
            )
        suffix = f"  {' '.join(overrides)}" if overrides else ""
        print(
            f"  {cls.name}: profile={cls.profile} weight={cls.weight:g} "
            f"machines=[{lo}, {hi}) ({hi - lo}){suffix}"
        )
    segments = compiled.segments()
    if len(segments) > 1 or any(s.lab for s in segments):
        print("regime segments:")
        for seg in segments:
            name = seg.name or "base"
            print(
                f"  [{seg.start_day}, {seg.start_day + seg.n_days}) days: "
                f"{name}"
            )
    def fmt_selector(sel) -> str:
        if sel == "all":
            return "all"
        if "class" in sel:
            return f"class {sel['class']}"
        lo, hi = sel["range"]
        return f"range [{lo:g}, {hi:g})"

    if spec.outages:
        print("outages:")
        for o in spec.outages:
            rep = f" every {o.repeat_days:g}d" if o.repeat_days else ""
            print(
                f"  {o.name}: day {o.day:g} hour {o.hour:g} for "
                f"{o.duration_hours:g}h, machines={fmt_selector(o.machines)}{rep}"
            )
    if spec.flash_crowds:
        print("flash crowds:")
        for f in spec.flash_crowds:
            rep = f" every {f.repeat_days:g}d" if f.repeat_days else ""
            print(
                f"  {f.name}: day {f.day:g} hour {f.hour:g} for "
                f"{f.duration_hours:g}h, fraction {f.fraction:g} at load "
                f"{f.load:g}{rep}"
            )
    span_days = compiled.span / DAY
    n_events = "trivial (delegates to the stock generator)" if compiled.is_trivial else "composed"
    print(f"span: {span_days:g} days; generation path: {n_events}")
    return 0


def _scenario_validate(args: argparse.Namespace) -> int:
    from .errors import ScenarioError
    from .scenarios import compile_scenario, get_scenario, scenario_names

    names = list(args.names)
    if args.all:
        names.extend(n for n in scenario_names() if n not in names)
    if not names:
        print(
            "error: scenario validate needs scenario names or --all",
            file=sys.stderr,
        )
        return 2
    rc = 0
    for name in names:
        try:
            spec = get_scenario(name)
            compiled = compile_scenario(spec)
        except ScenarioError as exc:
            print(f"{name}: invalid: {exc}", file=sys.stderr)
            rc = 2
            continue
        print(
            f"{spec.name}: ok ({len(spec.classes)} class(es), "
            f"fingerprint {compiled.fingerprint[:12]})"
        )
    return rc


def _scenario_diff(args: argparse.Namespace) -> int:
    from .scenarios import (
        ScenarioAnalysis,
        compile_scenario,
        diff_report,
        generate_scenario_columns,
        get_scenario,
    )

    if len(args.names) < 2:
        print(
            "error: scenario diff needs at least two scenarios "
            "(a baseline and one or more to compare)",
            file=sys.stderr,
        )
        return 2
    execution = _execution_from(args)
    analyses = []
    for name in args.names:
        spec = get_scenario(name)
        compiled = compile_scenario(
            spec, machines=args.machines, days=args.days, seed=args.seed
        )
        _record_scenario(compiled)
        columns = generate_scenario_columns(
            compiled,
            progress=_progress(args, f"generate {spec.name}"),
            execution=execution,
        )
        analyses.append(ScenarioAnalysis.from_dataset(spec.name, columns))
    report = diff_report(analyses)
    print(report)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(report + "\n", encoding="utf-8")
        print(f"wrote scenario diff report to {args.out}", file=sys.stderr)
    return 0


def _load_manifest(path: str):
    """A parsed :class:`RunManifest`, or an error string."""
    from .obs import RunManifest

    try:
        return RunManifest.load(path)
    except FileNotFoundError:
        return f"manifest not found: {path}"
    except (ValueError, TypeError, KeyError) as exc:
        return f"not a run manifest: {path} ({exc})"


def cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    if args.compare:
        from .obs import compare_manifests

        loaded = [_load_manifest(p) for p in args.compare]
        errors = [m for m in loaded if isinstance(m, str)]
        if errors:
            for err in errors:
                print(f"error: {err}", file=sys.stderr)
            return 2
        baseline, current = loaded
        result = compare_manifests(
            baseline, current, max_regress_pct=args.max_regress
        )
        print(result.render())
        return 0 if result.ok else 1
    if args.target is None:
        print(
            "error: report needs a target (an artifact output directory "
            "or a run-manifest JSON) or --compare",
            file=sys.stderr,
        )
        return 2
    if Path(args.target).is_file():
        from .obs import render_manifest_report

        manifest = _load_manifest(args.target)
        if isinstance(manifest, str):
            print(f"error: {manifest}", file=sys.stderr)
            return 2
        print(render_manifest_report(manifest))
        return 0
    return _report_artifacts(args)


def _report_artifacts(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import (
        capacity_report,
        cause_breakdown,
        check_paper_landmarks,
        daily_pattern,
        interval_distribution,
        predictability_report,
        weekday_profile,
    )
    from .analysis.ascii import render_figure6_chart, render_figure7_chart
    from .analysis.fits import fit_interval_distributions
    from .analysis.report import render_figure6, render_figure7, render_table2
    from .units import DAY, is_weekend

    dataset = _load_or_generate(args)
    out = Path(args.target)
    out.mkdir(parents=True, exist_ok=True)

    def write(name: str, text: str) -> None:
        (out / name).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {out / name}")

    write("table2.txt", render_table2(cause_breakdown(dataset)))
    dist = interval_distribution(dataset)
    # Short traces may cover only one day type; write what exists so a
    # 2-day smoke run still produces Table 2 and the landmark report.
    n_days = int(dataset.span // DAY)
    has_weekend = any(
        is_weekend(d * DAY, dataset.start_weekday) for d in range(n_days)
    )
    has_weekday = any(
        not is_weekend(d * DAY, dataset.start_weekday) for d in range(n_days)
    )
    if dist.weekday_count and dist.weekend_count:
        write(
            "figure6.txt",
            render_figure6(dist) + "\n\n" + render_figure6_chart(dist),
        )
    else:
        print(
            "figure6.txt skipped: needs weekday and weekend availability "
            "intervals (trace too short)"
        )
    if has_weekday and has_weekend:
        pattern = daily_pattern(dataset)
        write(
            "figure7.txt",
            render_figure7(pattern)
            + "\n\n"
            + render_figure7_chart(pattern, weekend=False)
            + "\n\n"
            + render_figure7_chart(pattern, weekend=True),
        )
    else:
        print(
            "figure7.txt skipped: needs both weekday and weekend days "
            "(trace too short)"
        )
    if dist.weekday_count:
        write(
            "interval_fits.txt",
            fit_interval_distributions(dist.weekday_hours).render(),
        )
    try:
        from .analysis.hazard import hazard_curve

        write("hazard.txt", hazard_curve(dataset, weekend=False).render())
    except Exception:
        pass  # traces too small for a hazard estimate skip the artifact
    if dataset.n_days >= 14:
        write("predictability.txt", predictability_report(dataset).summary())
        write("weekday_profile.txt", weekday_profile(dataset).render())
    if dataset.hourly_load is not None:
        write("capacity.txt", capacity_report(dataset).summary())
    checks = check_paper_landmarks(dataset)
    write("landmarks.txt", "\n".join(str(c) for c in checks))
    return _partial_results(dataset) or (0 if all(c.ok for c in checks) else 1)


_COMMANDS = {
    "generate": cmd_generate,
    "convert": cmd_convert,
    "analyze": cmd_analyze,
    "thresholds": cmd_thresholds,
    "predict": cmd_predict,
    "schedule": cmd_schedule,
    "serve": cmd_serve,
    "query": cmd_query,
    "scenario": cmd_scenario,
    "report": cmd_report,
}

#: Counters every manifest should carry even when they stayed at zero, so
#: consumers can rely on the keys being present.
_DECLARED_COUNTERS = (
    "cache.hit",
    "cache.miss",
    "cache.corrupt_evicted",
    "cache.write",
    "cache.write_failed",
    "parallel.units",
    "retries.attempts",
    "retries.succeeded",
    "retries.exhausted",
    "rng.draws.busyness",
    "rng.draws.plan",
    "rng.draws.signal",
)


def _check_out_paths(args: argparse.Namespace) -> Optional[str]:
    """Validate ``--metrics-out`` / ``--trace-out`` before running.

    A run should never do minutes of work only to fail writing its
    telemetry at the end; unwritable destinations are rejected up front
    with a clear error (exit 2).  ``-`` means stdout and only
    ``--metrics-out`` supports it.
    """
    import os
    from pathlib import Path

    for flag, value, allow_stdout in (
        ("--metrics-out", getattr(args, "metrics_out", None), True),
        ("--trace-out", getattr(args, "trace_out", None), False),
    ):
        if not value:
            continue
        if value == "-":
            if allow_stdout:
                continue
            return f"{flag} does not support '-' (stdout); give a file path"
        path = Path(value)
        parent = path.parent
        if not parent.is_dir():
            return f"{flag}: directory {parent} does not exist"
        if not os.access(parent, os.W_OK):
            return f"{flag}: directory {parent} is not writable"
        if path.is_dir():
            return f"{flag}: {path} is a directory"
        if path.exists() and not os.access(path, os.W_OK):
            return f"{flag}: {path} is not writable"
    return None


def _write_manifest(
    args: argparse.Namespace,
    argv: list[str],
    exit_code: int,
    registry,
    started_at: str,
    duration_s: float,
    resources: Optional[dict] = None,
) -> None:
    import json

    from .obs import build_manifest

    from .errors import FaultError

    from .errors import ConfigError

    fingerprint = None
    if getattr(args, "scenario", None):
        # A scenario run's identity is the compiled-scenario fingerprint
        # (the one that keys its cache entries), not the stock profile's.
        try:
            fingerprint = _compiled_scenario_from(args).fingerprint
        except ConfigError:
            pass  # the invalid scenario already failed the command
    elif hasattr(args, "machines") and args.command != "scenario":
        from .parallel.cache import config_fingerprint

        try:
            fingerprint = config_fingerprint(_config_from(args))
        except FaultError:
            # A bad --fault-plan already failed the command; the manifest
            # (which excludes execution settings anyway) still gets written.
            pass
    manifest = build_manifest(
        command=args.command,
        argv=argv,
        registry=registry,
        duration_s=duration_s,
        started_at=started_at,
        exit_code=exit_code,
        seed=getattr(args, "seed", None),
        config_fingerprint=fingerprint,
        resources=resources,
    )
    if args.metrics_out == "-":
        # One compact line, emitted last: consumers that also want the
        # command's normal stdout can take the final line as the manifest.
        print(json.dumps(manifest.to_dict(), sort_keys=True), flush=True)
        return
    path = manifest.write(args.metrics_out)
    if args.log_json:
        # Keep the stderr stream pure JSON-lines: route through the logger.
        logging.getLogger("repro.cli").info("wrote run manifest to %s", path)
    else:
        print(f"wrote run manifest to {path}", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import time
    from datetime import datetime, timezone

    argv_list = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv_list)

    error = _check_out_paths(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    from .obs import (
        MetricsRegistry,
        ResourceSampler,
        finish_progress,
        setup_logging,
        use_registry,
    )

    setup_logging(level=args.log_level, json_lines=args.log_json)
    registry = MetricsRegistry()
    for name in _DECLARED_COUNTERS:
        registry.inc(name, 0)
    # The background resource sampler only runs when telemetry output was
    # asked for, preserving the zero-cost-when-disabled contract.
    sampler = None
    if args.metrics_out or args.trace_out:
        sampler = ResourceSampler().start()

    from .errors import ConfigError, FaultError

    started_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    t0 = time.perf_counter()
    with use_registry(registry):
        try:
            with registry.span(args.command):
                rc = _COMMANDS[args.command](args)
        except (FaultError, ConfigError) as exc:
            # Invalid fault plans, invalid scenario/config documents, and
            # unrecoverable injected failures are operational errors, not
            # bugs: report the offending key path and exit 2 — never a
            # traceback.
            print(f"error: {exc}", file=sys.stderr)
            rc = 2
        finally:
            # Leave no half-drawn progress line behind on *any* exit path
            # (landmark failure 1, fault error 2, partial results 3).
            finish_progress()
            if sampler is not None:
                sampler.stop()
    resources = sampler.snapshot() if sampler is not None else None
    if args.trace_out:
        from .obs import export_chrome_trace

        path = export_chrome_trace(
            registry,
            args.trace_out,
            command=args.command,
            resources=resources,
            resources_epoch_unix=sampler.epoch_unix if sampler else None,
        )
        if args.log_json:
            logging.getLogger("repro.cli").info("wrote Chrome trace to %s", path)
        else:
            print(f"wrote Chrome trace to {path}", file=sys.stderr)
    if args.metrics_out:
        _write_manifest(
            args,
            argv_list,
            rc,
            registry,
            started_at,
            time.perf_counter() - t0,
            resources=resources,
        )
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
