"""Exception hierarchy for the FGCS reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation reaches an invalid state."""


class SchedulerError(SimulationError):
    """Raised on invalid OS-scheduler operations (e.g. unknown task)."""


class ConfigError(ReproError):
    """Raised for invalid configuration values."""


class ScenarioError(ConfigError):
    """Raised for invalid scenario documents, with the offending key path.

    ``path`` is a dotted/indexed locator into the scenario document
    (``"fleet.classes[1].weight"``); it is always part of ``str(err)`` so
    CLI consumers can print one actionable line without a traceback.
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        self.message = message
        super().__init__(f"{path}: {message}" if path else message)


class TraceError(ReproError):
    """Raised for malformed trace files or inconsistent trace datasets."""


class PredictionError(ReproError):
    """Raised when a predictor is queried before being fitted, or misused."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is driven with invalid parameters."""


class FaultError(ReproError):
    """Raised for invalid fault plans or unrecoverable injected failures."""


class ServeError(ReproError):
    """Raised for invalid serving-layer requests or server misuse."""


class IngestOrderError(ServeError):
    """Raised when streamed events violate the ingest ordering contract.

    The serving layer accepts per-machine event streams whose start times
    never decrease; an event older than the machine's newest accepted
    event is rejected (the whole batch, atomically) rather than silently
    reordered.  Exact duplicates of the newest event are deduplicated
    instead — see ``repro.serve.state``.
    """


class NoHistoryError(ServeError):
    """Raised when a query window has no same-type history days yet."""


class WorkerRangeError(ServeError):
    """Raised when a scale-out worker is asked about a machine it does
    not own.

    The router owns the machine→worker map, so a correctly routed fleet
    never sees this; it surfaces misrouting (HTTP 421) instead of
    silently answering from the wrong worker's state.
    """


class IngestBackpressureError(ServeError):
    """Raised when the bounded ingest queue cannot take another batch.

    Carries ``retry_after`` (seconds), surfaced as HTTP 429 with a
    ``Retry-After`` header; the client backs off and retries — nothing
    is dropped or reordered.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after
