"""Exception hierarchy for the FGCS reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation reaches an invalid state."""


class SchedulerError(SimulationError):
    """Raised on invalid OS-scheduler operations (e.g. unknown task)."""


class ConfigError(ReproError):
    """Raised for invalid configuration values."""


class TraceError(ReproError):
    """Raised for malformed trace files or inconsistent trace datasets."""


class PredictionError(ReproError):
    """Raised when a predictor is queried before being fitted, or misused."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is driven with invalid parameters."""


class FaultError(ReproError):
    """Raised for invalid fault plans or unrecoverable injected failures."""
