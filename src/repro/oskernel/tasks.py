"""Simulated tasks (processes) described as compute/sleep phase programs.

A *program* is any iterator of :class:`Phase` objects.  The paper's
synthetic workloads (Section 3.2.1) are loops of "compute C seconds of CPU
work, then sleep S seconds"; SPEC-like guests are a single long compute
phase.  The machine pulls the next phase whenever the current one finishes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import SchedulerError

__all__ = [
    "Phase",
    "PhaseKind",
    "Program",
    "Task",
    "TaskState",
    "compute_phase",
    "sleep_phase",
    "exit_phase",
]


class PhaseKind(enum.Enum):
    """What a task is asking to do next."""

    COMPUTE = "compute"
    SLEEP = "sleep"
    EXIT = "exit"


@dataclass(frozen=True)
class Phase:
    """One step of a task program.

    ``amount`` is CPU-seconds of work for COMPUTE phases and wall-clock
    seconds for SLEEP phases; it is ignored for EXIT.
    """

    kind: PhaseKind
    amount: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is not PhaseKind.EXIT and (
            not math.isfinite(self.amount) or self.amount < 0
        ):
            raise SchedulerError(f"phase amount must be finite and >= 0: {self}")


def compute_phase(cpu_seconds: float) -> Phase:
    """A phase needing ``cpu_seconds`` of CPU time."""
    return Phase(PhaseKind.COMPUTE, cpu_seconds)


def sleep_phase(wall_seconds: float) -> Phase:
    """A phase sleeping for ``wall_seconds`` of wall-clock time."""
    return Phase(PhaseKind.SLEEP, wall_seconds)


def exit_phase() -> Phase:
    """Terminate the task."""
    return Phase(PhaseKind.EXIT)


Program = Iterator[Phase]


class TaskState(enum.Enum):
    """Lifecycle states of a simulated task."""

    RUNNABLE = "runnable"
    SLEEPING = "sleeping"
    SUSPENDED = "suspended"  # SIGSTOP'ed by the FGCS guest manager
    EXITED = "exited"


class Task:
    """A simulated process: a phase program plus scheduling state.

    Parameters
    ----------
    name:
        Human-readable identifier.
    program:
        Iterator of :class:`Phase` objects describing the behaviour.
    nice:
        Unix nice level in [-20, 19]; FGCS guests run at 0 or 19.
    resident_mb:
        Resident-set size in MB, held while the task is alive.
    is_guest:
        True for FGCS guest processes; hosts and system tasks are False.
    """

    __slots__ = (
        "name",
        "nice",
        "resident_mb",
        "is_guest",
        "_program",
        "state",
        "remaining_compute",
        "wake_time",
        "cpu_time",
        "start_time",
        "exit_time",
        "counter",
        "last_scheduled",
        "_suspended_state",
    )

    def __init__(
        self,
        name: str,
        program: Program,
        *,
        nice: int = 0,
        resident_mb: float = 1.0,
        is_guest: bool = False,
    ) -> None:
        if not -20 <= nice <= 19:
            raise SchedulerError(f"nice must be in [-20, 19], got {nice}")
        if resident_mb < 0:
            raise SchedulerError("resident_mb must be >= 0")
        self.name = name
        self.nice = nice
        self.resident_mb = float(resident_mb)
        self.is_guest = bool(is_guest)
        self._program = program
        self.state = TaskState.RUNNABLE
        self.remaining_compute = 0.0
        self.wake_time = 0.0
        self.cpu_time = 0.0
        self.start_time: Optional[float] = None
        self.exit_time: Optional[float] = None
        #: Remaining timeslice in the current scheduler epoch (seconds).
        self.counter = 0.0
        #: Monotone sequence number of the last time this task was picked,
        #: used for least-recently-run tie-breaking.
        self.last_scheduled = -1
        self._suspended_state: Optional[TaskState] = None

    # -- program driving ----------------------------------------------------

    def begin(self, now: float) -> None:
        """Start the task: pull its first phase."""
        if self.start_time is not None:
            raise SchedulerError(f"task {self.name!r} already started")
        self.start_time = now
        self._advance_phase(now)

    def _advance_phase(self, now: float) -> None:
        """Pull phases until the task is computing, sleeping, or exited."""
        while True:
            phase = next(self._program, None)
            if phase is None or phase.kind is PhaseKind.EXIT:
                self.state = TaskState.EXITED
                self.exit_time = now
                return
            if phase.kind is PhaseKind.COMPUTE:
                if phase.amount > 0:
                    self.remaining_compute = phase.amount
                    self.state = TaskState.RUNNABLE
                    return
            elif phase.kind is PhaseKind.SLEEP:
                if phase.amount > 0:
                    self.wake_time = now + phase.amount
                    self.state = TaskState.SLEEPING
                    return

    def account_progress(self, progress: float, now: float) -> None:
        """Credit ``progress`` CPU-seconds of useful work to the task.

        Advances to the next phase when the current compute amount is done.
        """
        if self.state is not TaskState.RUNNABLE:
            raise SchedulerError(f"cannot run task {self.name!r} in {self.state}")
        self.cpu_time += progress
        self.remaining_compute -= progress
        if self.remaining_compute <= 1e-12:
            self.remaining_compute = 0.0
            self._advance_phase(now)

    def maybe_wake(self, now: float) -> bool:
        """Wake the task if sleeping and its wake time has arrived.

        Waking pulls the program's next phase, so the task emerges
        runnable with compute work, sleeping again, or exited.
        """
        if self.state is TaskState.SLEEPING and now >= self.wake_time - 1e-12:
            self._advance_phase(now)
            return True
        return False

    # -- external controls (FGCS manager) ------------------------------------

    def suspend(self) -> None:
        """SIGSTOP: park the task; it keeps memory but consumes no CPU."""
        if self.state is TaskState.EXITED:
            raise SchedulerError(f"cannot suspend exited task {self.name!r}")
        if self.state is TaskState.SUSPENDED:
            return
        self._suspended_state = self.state
        self.state = TaskState.SUSPENDED

    def resume(self) -> None:
        """SIGCONT: restore the pre-suspension state."""
        if self.state is not TaskState.SUSPENDED:
            return
        assert self._suspended_state is not None
        self.state = self._suspended_state
        self._suspended_state = None

    def kill(self, now: float) -> None:
        """SIGKILL: terminate immediately."""
        if self.state is TaskState.EXITED:
            return
        self.state = TaskState.EXITED
        self.exit_time = now

    def renice(self, nice: int) -> None:
        """Change the task's nice level (takes effect next epoch)."""
        if not -20 <= nice <= 19:
            raise SchedulerError(f"nice must be in [-20, 19], got {nice}")
        self.nice = nice

    # -- predicates -----------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True until the task exits (memory is held while alive)."""
        return self.state is not TaskState.EXITED

    @property
    def runnable(self) -> bool:
        return self.state is TaskState.RUNNABLE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Task {self.name!r} {self.state.value} nice={self.nice} "
            f"cpu={self.cpu_time:.3f}s>"
        )
