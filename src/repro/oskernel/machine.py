"""A simulated time-shared machine.

Combines the epoch scheduler and the memory model, advances virtual time in
scheduler quanta, accounts CPU time separately for host and guest tasks,
and exposes the external controls the FGCS runtime uses (``renice``,
``suspend``, ``resume``, ``kill``) — the simulated equivalents of the OS
facilities the paper relies on.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config import MemoryConfig, SchedulerConfig
from ..errors import SchedulerError
from .memory import MemoryModel
from .scheduler import EpochScheduler
from .tasks import Task, TaskState

__all__ = ["Machine", "CpuSnapshot"]


class CpuSnapshot:
    """A point-in-time reading of the machine's cumulative CPU accounting."""

    __slots__ = ("time", "host_cpu", "guest_cpu")

    def __init__(self, time: float, host_cpu: float, guest_cpu: float) -> None:
        self.time = time
        self.host_cpu = host_cpu
        self.guest_cpu = guest_cpu

    def usage_since(self, earlier: "CpuSnapshot") -> tuple[float, float]:
        """(host, guest) CPU usage fractions over the elapsed interval."""
        dt = self.time - earlier.time
        if dt <= 0:
            return (0.0, 0.0)
        return (
            (self.host_cpu - earlier.host_cpu) / dt,
            (self.guest_cpu - earlier.guest_cpu) / dt,
        )


class Machine:
    """One simulated host machine.

    Parameters mirror the paper's testbeds: the scheduler config describes
    the kernel, the memory config the physical/kernel memory split.

    Examples
    --------
    >>> from repro.workloads.synthetic import cpu_bound_program
    >>> m = Machine()
    >>> guest = Task("guest", cpu_bound_program(), is_guest=True)
    >>> _ = m.spawn(guest)
    >>> m.run_for(10.0)
    >>> 9.0 < guest.cpu_time <= 10.0  # alone, the guest gets the whole CPU
    True
    """

    def __init__(
        self,
        scheduler_config: Optional[SchedulerConfig] = None,
        memory_config: Optional[MemoryConfig] = None,
        *,
        name: str = "machine",
    ) -> None:
        self.name = name
        self.scheduler = EpochScheduler(scheduler_config)
        self.memory = MemoryModel(memory_config)
        self.now = 0.0
        #: Cumulative CPU seconds of exited-and-reaped tasks.
        self._reaped_host_cpu = 0.0
        self._reaped_guest_cpu = 0.0
        #: Wall seconds spent with the machine in a thrashing state.
        self.thrash_time = 0.0
        #: Optional hook invoked as ``hook(now)`` after every quantum.
        self.quantum_hook: Optional[Callable[[float], None]] = None
        #: Cached per-quantum progress factor; the resident-set total only
        #: changes when tasks are spawned, exit, or are killed, so the
        #: memory model need not be consulted every quantum.
        self._progress_factor = 1.0
        self._memory_dirty = True

    # -- task management -------------------------------------------------------

    def spawn(self, task: Task) -> Task:
        """Add a task to the machine and start its program."""
        self.scheduler.add(task)
        task.begin(self.now)
        self._memory_dirty = True
        return task

    def reap(self) -> int:
        """Drop exited tasks, folding their CPU time into machine totals.

        Returns the number of tasks reaped.  Long-running simulations with
        short-lived workload processes call this periodically to keep the
        scheduler's task list small.
        """
        exited = [t for t in self.scheduler.tasks if not t.alive]
        for t in exited:
            if t.is_guest:
                self._reaped_guest_cpu += t.cpu_time
            else:
                self._reaped_host_cpu += t.cpu_time
            self.scheduler.remove(t)
        self._memory_dirty = True
        return len(exited)

    # -- external controls (the FGCS manager's renice/SIGSTOP/SIGKILL) ----------

    def renice(self, task: Task, nice: int) -> None:
        """Change a task's priority, as the paper does via ``renice``."""
        task.renice(nice)

    def suspend(self, task: Task) -> None:
        """SIGSTOP a task (guest suspension on transient overload)."""
        task.suspend()

    def resume(self, task: Task) -> None:
        """SIGCONT a suspended task."""
        task.resume()

    def kill(self, task: Task) -> None:
        """SIGKILL a task (guest termination on sustained overload)."""
        task.kill(self.now)
        self._memory_dirty = True

    # -- accounting ---------------------------------------------------------------

    def host_cpu_time(self) -> float:
        """Cumulative CPU seconds consumed by host (non-guest) tasks."""
        return self._reaped_host_cpu + sum(
            t.cpu_time for t in self.scheduler.tasks if not t.is_guest
        )

    def guest_cpu_time(self) -> float:
        """Cumulative CPU seconds consumed by guest tasks."""
        return self._reaped_guest_cpu + sum(
            t.cpu_time for t in self.scheduler.tasks if t.is_guest
        )

    def snapshot(self) -> CpuSnapshot:
        """Current cumulative CPU accounting, for windowed usage readings."""
        return CpuSnapshot(self.now, self.host_cpu_time(), self.guest_cpu_time())

    def resident_mb(self) -> float:
        """Total resident memory of live tasks, MB."""
        return self.memory.resident_total(self.scheduler.tasks)

    def is_thrashing(self) -> bool:
        """True while working sets exceed available physical memory."""
        return self.memory.is_thrashing(self.scheduler.tasks)

    # -- time advancement -----------------------------------------------------------

    def run_for(self, duration: float) -> None:
        """Advance the machine by ``duration`` wall-clock seconds."""
        if duration < 0:
            raise SchedulerError(f"negative duration {duration}")
        self.run_until(self.now + duration)

    def run_until(self, t_end: float) -> None:
        """Advance the machine to absolute time ``t_end``.

        The loop runs the highest-goodness runnable task one quantum at a
        time; idle periods (no runnable task) are skipped in a single jump
        to the next wake time.  Compute phases that finish mid-quantum end
        exactly on time, so CPU accounting carries no quantization error.
        """
        if t_end < self.now:
            raise SchedulerError(f"cannot run machine backwards to {t_end}")
        quantum = self.scheduler.config.quantum
        sched = self.scheduler
        memory = self.memory
        eps = 1e-9

        while self.now < t_end - eps:
            now = self.now
            # Wake any sleeper whose time has come.
            for t in sched.tasks:
                t.maybe_wake(now)

            task = sched.pick()
            if task is None:
                # Idle: jump to the next wake-up (or the horizon).
                nw = sched.next_wake_time()
                if nw is None or nw >= t_end:
                    self.now = t_end
                    break
                self.now = max(nw, now + eps)
                sched.refresh_after_idle()
                continue

            q = min(quantum, t_end - now)
            # A task never runs past its remaining counter: the kernel
            # enforces this at tick granularity; we account it exactly so
            # that sub-tick timeslices (deeply reniced guests) are honoured.
            if 0.0 < task.counter < q:
                q = task.counter
            if self._memory_dirty:
                self._progress_factor = memory.progress_factor(sched.tasks)
                self._memory_dirty = False
            factor = self._progress_factor
            # A sleeper waking mid-quantum bounds the quantum, as a timer
            # tick would in the kernel.
            nw = sched.next_wake_time()
            if nw is not None and now < nw < now + q:
                q = nw - now
            progress = q * factor
            if progress >= task.remaining_compute:
                # Finishes early: advance wall clock only by the time needed.
                progress = task.remaining_compute
                q = progress / factor if factor > 0 else q
            task.account_progress(progress, now + q)
            if not task.alive:
                # The task exited on its own: its memory is released.
                self._memory_dirty = True
            sched.charge(task, q)
            if factor < 1.0:
                self.thrash_time += q
            self.now = now + q
            if self.quantum_hook is not None:
                self.quantum_hook(self.now)

    # -- convenience ---------------------------------------------------------------

    def live_tasks(self) -> list[Task]:
        """All tasks that have not exited."""
        return [t for t in self.scheduler.tasks if t.alive]

    def find_task(self, name: str) -> Optional[Task]:
        """Look up a task by name (first match), or ``None``."""
        for t in self.scheduler.tasks:
            if t.name == name:
                return t
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = sum(1 for t in self.scheduler.tasks if t.alive)
        states = {s: 0 for s in TaskState}
        for t in self.scheduler.tasks:
            states[t.state] += 1
        return f"<Machine {self.name!r} t={self.now:.3f}s live={live}>"
