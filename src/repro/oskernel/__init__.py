"""Simulated operating-system substrate.

This package models a single time-shared machine with enough fidelity for
the paper's offline contention experiments (Section 3.2):

* :mod:`~repro.oskernel.tasks` — processes as compute/sleep phase programs;
* :mod:`~repro.oskernel.scheduler` — a Linux-2.4-style epoch scheduler
  (per-nice timeslices, sleeper counter carry-over, goodness-based pick);
* :mod:`~repro.oskernel.memory` — physical memory accounting and the
  thrashing model;
* :mod:`~repro.oskernel.machine` — the machine tying them together, with
  CPU-time accounting and external controls (renice / suspend / kill).

The two host-load thresholds Th1 and Th2 of the availability model are
*emergent* properties of this scheduler: sleep-heavy (low-demand) host
tasks accumulate counter while sleeping and preempt the guest on wake, so
they suffer almost no slowdown; high-demand host tasks exhaust their
timeslice and must time-share with the guest, whose share is bounded by its
nice-dependent timeslice.
"""

from .machine import Machine
from .memory import MemoryModel
from .scheduler import EpochScheduler
from .tasks import Phase, PhaseKind, Task, TaskState, compute_phase, exit_phase, sleep_phase

__all__ = [
    "EpochScheduler",
    "Machine",
    "MemoryModel",
    "Phase",
    "PhaseKind",
    "Task",
    "TaskState",
    "compute_phase",
    "exit_phase",
    "sleep_phase",
]
