"""A Linux-2.4-style epoch scheduler.

The 2.4 kernel's scheduler works in *epochs*: at the start of an epoch every
task receives a timeslice ("counter") proportional to ``20 - nice``; the
scheduler always runs the runnable task with the highest *goodness*
(``counter + 20 - nice``); when every runnable task has exhausted its
counter, a new epoch begins and counters are recomputed as
``counter/2 + timeslice``, so tasks that slept keep half of their unused
slice.  This carry-over is the "sleeper bonus" that lets interactive tasks
preempt CPU hogs, and it is the mechanism behind the paper's Th1 threshold:
host tasks demanding less than ~20% CPU run entirely out of their carried
counter and suffer almost no slowdown from a guest.

The simulation advances in fixed quanta (default 10 ms, i.e. HZ=100) and
re-evaluates goodness each quantum, with least-recently-run tie-breaking —
a faithful, deterministic approximation of the kernel's behaviour.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..config import SchedulerConfig
from ..errors import SchedulerError
from .tasks import Task, TaskState

__all__ = ["EpochScheduler"]

_RUNNABLE = TaskState.RUNNABLE
_SLEEPING = TaskState.SLEEPING


class EpochScheduler:
    """Selects which task runs each quantum, maintaining epoch counters."""

    def __init__(self, config: Optional[SchedulerConfig] = None) -> None:
        self.config = config or SchedulerConfig()
        self._tasks: list[Task] = []
        self._pick_seq = 0
        #: nice -> timeslice, memoized (timeslice() validates per call and
        #: this sits on the per-quantum hot path).
        self._ts_cache: dict[int, float] = {}

    # -- task set -------------------------------------------------------------

    @property
    def tasks(self) -> tuple[Task, ...]:
        """All tasks currently known to the scheduler (including exited)."""
        return tuple(self._tasks)

    def _timeslice(self, nice: int) -> float:
        """Memoized ``config.timeslice``."""
        ts = self._ts_cache.get(nice)
        if ts is None:
            ts = self._ts_cache[nice] = self.config.timeslice(nice)
        return ts

    def add(self, task: Task) -> None:
        """Register a task; it starts with a full timeslice."""
        if task in self._tasks:
            raise SchedulerError(f"task {task.name!r} already registered")
        task.counter = self._timeslice(task.nice)
        self._tasks.append(task)

    def remove(self, task: Task) -> None:
        """Forget a task (after it exits)."""
        self._tasks.remove(task)

    # -- goodness & epochs -----------------------------------------------------

    def goodness(self, task: Task) -> float:
        """The 2.4 "goodness" of a task, in seconds-equivalent units.

        ``counter`` dominates; the static ``20 - nice`` term breaks rough
        ties in favour of higher-priority tasks, scaled by
        ``nice_goodness_weight`` to be commensurable with counters.
        """
        return task.counter + (20 - task.nice) * self.config.nice_goodness_weight

    def new_epoch(self) -> None:
        """Recompute every live task's counter.

        Kernel 2.4 uses ``counter/2 + timeslice`` (fixpoint: a permanent
        sleeper accumulates ``2 x timeslice``).  We generalize the decay to
        ``1 - 1/sleeper_cap_factor`` so the sleeper bonus converges to
        ``sleeper_cap_factor x timeslice`` — with the default factor this
        reduces to the kernel's recurrence exactly when the factor is 2,
        and larger factors model kernels with stronger interactivity
        boosts.  The factor is a calibration parameter of the simulator:
        the default is set where the Section 3.2 sweeps reproduce the
        paper's measured Th1/Th2 (see the threshold-calibration bench).
        """
        cap = self.config.sleeper_cap_factor
        decay = 1.0 - 1.0 / cap
        for task in self._tasks:
            if not task.alive:
                continue
            ts = self._timeslice(task.nice)
            task.counter = min(task.counter * decay + ts, cap * ts)

    def refresh_after_idle(self) -> None:
        """Grant every live task at least a fresh timeslice.

        Called when the machine was idle (no runnable tasks): the kernel
        would have recalculated counters on the next ``schedule()`` anyway,
        and carrying arbitrarily stale counters across idle gaps would
        distort the sleeper bonus.
        """
        for task in self._tasks:
            if task.alive:
                task.counter = max(task.counter, self._timeslice(task.nice))

    # -- selection ---------------------------------------------------------------

    def pick(self) -> Optional[Task]:
        """The task to run for the next quantum, or ``None`` if none runnable.

        If all runnable tasks have exhausted counters, starts a new epoch
        first.  Ties on goodness go to the least-recently-scheduled task,
        which yields deterministic round-robin alternation.
        """
        weight = self.config.nice_goodness_weight
        best: Optional[Task] = None
        best_g = -1.0
        best_ls = 0
        saw_runnable = False
        for _ in range(2):
            for t in self._tasks:
                if t.state is not _RUNNABLE:
                    continue
                saw_runnable = True
                counter = t.counter
                if counter <= 1e-12:
                    continue
                g = counter + (20 - t.nice) * weight
                if best is None or g > best_g or (
                    g == best_g and t.last_scheduled < best_ls
                ):
                    best, best_g, best_ls = t, g, t.last_scheduled
            if best is not None or not saw_runnable:
                break
            # All runnable counters exhausted: start a new epoch, rescan.
            self.new_epoch()
        if best is not None:
            self._pick_seq += 1
            best.last_scheduled = self._pick_seq
        return best

    def charge(self, task: Task, wall: float) -> None:
        """Consume ``wall`` seconds of the running task's counter."""
        task.counter -= wall
        if task.counter < 0.0:
            task.counter = 0.0

    # -- introspection -------------------------------------------------------------

    def runnable_tasks(self) -> Iterable[Task]:
        return (t for t in self._tasks if t.runnable)

    def next_wake_time(self) -> Optional[float]:
        """Earliest wake time among sleeping tasks, or ``None``."""
        earliest: Optional[float] = None
        for t in self._tasks:
            if t.state is _SLEEPING and (
                earliest is None or t.wake_time < earliest
            ):
                earliest = t.wake_time
        return earliest
