"""Physical-memory accounting and the thrashing model.

The paper's memory-contention finding (Section 3.2.3) is binary: when the
total working set of host and guest processes (plus ~100 MB of kernel
memory) exceeds physical memory, the machine *thrashes* — every process
makes little progress regardless of CPU priorities; otherwise memory has no
effect.  We model that as a multiplicative collapse of per-quantum CPU
progress while the sum of resident sets exceeds the available memory.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..config import MemoryConfig
from .tasks import Task

__all__ = ["MemoryModel"]


class MemoryModel:
    """Tracks resident-set pressure on a machine and detects thrashing."""

    def __init__(self, config: Optional[MemoryConfig] = None) -> None:
        self.config = config or MemoryConfig()

    def resident_total(self, tasks: Iterable[Task]) -> float:
        """Total resident MB of all live tasks (suspended tasks still hold
        their pages; the paper terminates, not suspends, on thrashing)."""
        return sum(t.resident_mb for t in tasks if t.alive)

    def free_mb(self, tasks: Iterable[Task]) -> float:
        """Memory left for an additional process, MB (can be negative)."""
        return self.config.available_mb - self.resident_total(tasks)

    def is_thrashing(self, tasks: Iterable[Task]) -> bool:
        """True when working sets exceed what physical memory can hold."""
        return self.resident_total(tasks) > self.config.available_mb

    def fits(self, tasks: Iterable[Task], extra_mb: float) -> bool:
        """Would a new process with ``extra_mb`` resident fit without thrashing?"""
        return self.resident_total(tasks) + extra_mb <= self.config.available_mb

    def progress_factor(self, tasks: Iterable[Task]) -> float:
        """Multiplier on CPU progress this quantum: 1.0, or the collapse
        factor while thrashing."""
        return self.config.thrash_progress_factor if self.is_thrashing(tasks) else 1.0
