"""Flat, serializable trace records: row codec and batch column codec.

:class:`EventRecord` is the row-at-a-time form one JSONL/CSV line maps
to.  The column codec below is its batch counterpart for the binary
trace format (:mod:`repro.traces.binio`): a whole event table as one
NumPy structured array (:data:`EVENT_DTYPE`), converted to and from
event lists in bulk and validated vectorized — no per-event Python
objects on the hot path.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.events import UnavailabilityEvent
from ..core.states import AvailState
from ..errors import TraceError

__all__ = [
    "EVENT_DTYPE",
    "EventColumns",
    "EventRecord",
    "columns_to_events",
    "events_to_columns",
    "validate_columns",
]


@dataclass(frozen=True)
class EventRecord:
    """One unavailability occurrence as stored in a trace file.

    Field-for-field what the paper's traces record: start/end time, the
    failure state, and the resources that were available around the event.
    """

    machine_id: int
    start: float
    end: float
    state: str  # "S3" | "S4" | "S5"
    mean_host_load: float
    mean_free_mb: float

    def __post_init__(self) -> None:
        if self.state not in ("S3", "S4", "S5"):
            raise TraceError(f"invalid failure state {self.state!r}")
        if not self.end > self.start:
            raise TraceError("event record needs end > start")

    @classmethod
    def from_event(cls, event: UnavailabilityEvent) -> "EventRecord":
        return cls(
            machine_id=event.machine_id,
            start=event.start,
            end=event.end,
            state=event.state.value,
            mean_host_load=event.mean_host_load,
            mean_free_mb=event.mean_free_mb,
        )

    def to_event(self) -> UnavailabilityEvent:
        return UnavailabilityEvent(
            machine_id=self.machine_id,
            start=self.start,
            end=self.end,
            state=AvailState(self.state),
            mean_host_load=self.mean_host_load,
            mean_free_mb=self.mean_free_mb,
        )

    def to_dict(self) -> dict:
        d = asdict(self)
        # JSON has no NaN; use None.
        for key in ("mean_host_load", "mean_free_mb"):
            if isinstance(d[key], float) and math.isnan(d[key]):
                d[key] = None
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "EventRecord":
        d = dict(d)
        for key in ("mean_host_load", "mean_free_mb"):
            if d.get(key) is None:
                d[key] = float("nan")
        return cls(
            machine_id=int(d["machine_id"]),
            start=float(d["start"]),
            end=float(d["end"]),
            state=str(d["state"]),
            mean_host_load=float(d["mean_host_load"]),
            mean_free_mb=float(d["mean_free_mb"]),
        )


# -- batch column codec ----------------------------------------------------

#: One event as a packed little-endian structured-array row (37 bytes).
#: The layout is the on-disk event block of the binary trace format and
#: must never change without bumping its schema version.
EVENT_DTYPE = np.dtype(
    [
        ("machine_id", "<i4"),
        ("start", "<f8"),
        ("end", "<f8"),
        ("state", "u1"),
        ("mean_host_load", "<f8"),
        ("mean_free_mb", "<f8"),
    ]
)

#: Failure states encode as their paper numeral (S3 -> 3, ...).
STATE_TO_CODE: dict[AvailState, int] = {
    AvailState.S3: 3,
    AvailState.S4: 4,
    AvailState.S5: 5,
}
CODE_TO_STATE: dict[int, AvailState] = {v: k for k, v in STATE_TO_CODE.items()}


def events_to_columns(events: Sequence[UnavailabilityEvent]) -> np.ndarray:
    """Pack an event list into one :data:`EVENT_DTYPE` structured array.

    Order is preserved; NaN resource observations stay NaN (the binary
    format needs no None sentinel).
    """
    columns = np.empty(len(events), dtype=EVENT_DTYPE)
    columns["machine_id"] = [e.machine_id for e in events]
    columns["start"] = [e.start for e in events]
    columns["end"] = [e.end for e in events]
    columns["state"] = [STATE_TO_CODE[e.state] for e in events]
    columns["mean_host_load"] = [e.mean_host_load for e in events]
    columns["mean_free_mb"] = [e.mean_free_mb for e in events]
    return columns


#: State objects indexed by on-disk code (``None`` marks invalid codes),
#: so a whole state column decodes with one fancy-index pass.
_STATE_LUT = np.full(256, None, dtype=object)
for _code, _state in CODE_TO_STATE.items():
    _STATE_LUT[_code] = _state


def columns_to_events(columns: np.ndarray) -> list[UnavailabilityEvent]:
    """Unpack a structured column array into the event-object list.

    The inverse of :func:`events_to_columns` — no :class:`EventRecord`
    intermediates and no JSON; ``.tolist()`` converts each column to
    native Python scalars in one C pass.  The invariants
    ``UnavailabilityEvent.__post_init__`` enforces (positive duration, a
    failure state) are checked here once, vectorized, and the objects
    are then assembled directly without re-running per-event ``__init__``
    validation — the difference between this and row-at-a-time decoding
    is most of the binary loader's speed.
    """
    codes = columns["state"]
    states = _STATE_LUT[codes]
    bad_state = states == None  # noqa: E711 (elementwise)
    if bad_state.any():
        raise TraceError(
            f"invalid state code {int(codes[int(np.argmax(bad_state))])!r}"
        )
    bad_span = ~(columns["end"] > columns["start"])
    if bad_span.any():
        i = int(np.argmax(bad_span))
        raise TraceError(
            "event must have positive duration: "
            f"[{float(columns['start'][i])}, {float(columns['end'][i])}]"
        )

    new = UnavailabilityEvent.__new__
    set_attr = object.__setattr__

    def _build(m, s, e, st, load, mb):
        ev = new(UnavailabilityEvent)
        set_attr(
            ev,
            "__dict__",
            {
                "machine_id": m,
                "start": s,
                "end": e,
                "state": st,
                "mean_host_load": load,
                "mean_free_mb": mb,
            },
        )
        return ev

    return list(
        map(
            _build,
            columns["machine_id"].tolist(),
            columns["start"].tolist(),
            columns["end"].tolist(),
            states.tolist(),
            columns["mean_host_load"].tolist(),
            columns["mean_free_mb"].tolist(),
        )
    )


def validate_columns(
    columns: np.ndarray, *, n_machines: int, span: float
) -> None:
    """Vectorized event-table validation.

    Enforces exactly what the row codec and :class:`TraceDataset`
    enforce per event — machine ids in range, ``end > start``, valid
    state codes, events inside the span — plus ``(machine_id, start)``
    sort order, which the batch paths rely on for machine slicing.
    Raises :class:`TraceError` naming the first offending row.
    """
    if columns.dtype != EVENT_DTYPE:
        raise TraceError(f"event columns have dtype {columns.dtype}, "
                         f"expected {EVENT_DTYPE}")
    if columns.size == 0:
        return
    mid = columns["machine_id"]
    start = columns["start"]
    end = columns["end"]

    def _first(bad: np.ndarray, what: str) -> None:
        if bad.any():
            i = int(np.argmax(bad))
            raise TraceError(f"event row {i}: {what} "
                             f"(machine {int(mid[i])}, start {float(start[i])!r})")

    _first((mid < 0) | (mid >= n_machines), f"machine_id outside [0, {n_machines})")
    _first(~(end > start), "needs end > start")
    _first((start < 0) | (end > span + 1e-6), f"event outside span [0, {span}]")
    valid_states = np.isin(columns["state"], list(CODE_TO_STATE))
    _first(~valid_states, "invalid failure-state code")
    unsorted = (mid[1:] < mid[:-1]) | (
        (mid[1:] == mid[:-1]) & (start[1:] < start[:-1])
    )
    if unsorted.any():
        i = int(np.argmax(unsorted)) + 1
        raise TraceError(
            f"event row {i}: table not sorted by (machine_id, start)"
        )


@dataclass
class EventColumns:
    """A shard's event table as columns, plus its dataset-level frame.

    The zero-copy unit of the binary streaming path: ``events`` may be a
    read-only memmap straight off the file, and the accumulators fold it
    without materializing any per-event objects
    (:meth:`repro.analysis.accumulators.FleetAccumulator.update_columns`).
    """

    events: np.ndarray
    n_machines: int
    span: float
    start_weekday: int = 0
    metadata: dict = field(default_factory=dict)
    #: Optional ``(n_machines, n_hours)`` hourly-load matrix.  The columnar
    #: generation path carries it here so a whole dataset travels as one
    #: object-free unit; readers that stream shards keep receiving the
    #: hourly block separately from :func:`repro.traces.binio.open_columns`.
    hourly_load: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.n_machines <= 0 or self.span <= 0:
            raise TraceError("event columns need n_machines > 0 and span > 0")

    def __len__(self) -> int:
        return int(self.events.size)

    @property
    def n_days(self) -> int:
        from ..units import DAY

        return int(self.span // DAY)

    def machine_bounds(self) -> np.ndarray:
        """Row boundaries per machine: machine ``m`` owns rows
        ``bounds[m]:bounds[m+1]`` (events are sorted by machine)."""
        return np.searchsorted(
            self.events["machine_id"], np.arange(self.n_machines + 1)
        )

    @classmethod
    def from_dataset(cls, dataset) -> "EventColumns":
        """Columns for an in-memory dataset (events are already sorted)."""
        return cls(
            events=events_to_columns(dataset.events),
            n_machines=dataset.n_machines,
            span=dataset.span,
            start_weekday=dataset.start_weekday,
            metadata=dict(dataset.metadata),
            hourly_load=dataset.hourly_load,
        )

    def to_dataset(self):
        """Materialize the columns as an ordinary :class:`TraceDataset`."""
        from .dataset import TraceDataset

        return TraceDataset(
            events=columns_to_events(self.events),
            n_machines=self.n_machines,
            span=self.span,
            start_weekday=self.start_weekday,
            hourly_load=self.hourly_load,
            metadata=dict(self.metadata),
        )
