"""Flat, serializable trace records."""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

from ..core.events import UnavailabilityEvent
from ..core.states import AvailState
from ..errors import TraceError

__all__ = ["EventRecord"]


@dataclass(frozen=True)
class EventRecord:
    """One unavailability occurrence as stored in a trace file.

    Field-for-field what the paper's traces record: start/end time, the
    failure state, and the resources that were available around the event.
    """

    machine_id: int
    start: float
    end: float
    state: str  # "S3" | "S4" | "S5"
    mean_host_load: float
    mean_free_mb: float

    def __post_init__(self) -> None:
        if self.state not in ("S3", "S4", "S5"):
            raise TraceError(f"invalid failure state {self.state!r}")
        if not self.end > self.start:
            raise TraceError("event record needs end > start")

    @classmethod
    def from_event(cls, event: UnavailabilityEvent) -> "EventRecord":
        return cls(
            machine_id=event.machine_id,
            start=event.start,
            end=event.end,
            state=event.state.value,
            mean_host_load=event.mean_host_load,
            mean_free_mb=event.mean_free_mb,
        )

    def to_event(self) -> UnavailabilityEvent:
        return UnavailabilityEvent(
            machine_id=self.machine_id,
            start=self.start,
            end=self.end,
            state=AvailState(self.state),
            mean_host_load=self.mean_host_load,
            mean_free_mb=self.mean_free_mb,
        )

    def to_dict(self) -> dict:
        d = asdict(self)
        # JSON has no NaN; use None.
        for key in ("mean_host_load", "mean_free_mb"):
            if isinstance(d[key], float) and math.isnan(d[key]):
                d[key] = None
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "EventRecord":
        d = dict(d)
        for key in ("mean_host_load", "mean_free_mb"):
            if d.get(key) is None:
                d[key] = float("nan")
        return cls(
            machine_id=int(d["machine_id"]),
            start=float(d["start"]),
            end=float(d["end"]),
            state=str(d["state"]),
            mean_host_load=float(d["mean_host_load"]),
            mean_free_mb=float(d["mean_free_mb"]),
        )
