"""Trace dataset infrastructure.

The three-month availability trace is the paper's central artifact.  This
package defines the on-disk record schema, the JSONL and binary columnar
(``fgcs-bin``) readers and writers plus CSV export, an in-memory dataset
with machine/day-type slicing, the end-to-end generator, and validation
checks.  See ``docs/formats.md`` for the on-disk formats.
"""

from .binio import (
    load_dataset_binary,
    open_columns,
    save_columns_binary,
    save_dataset_binary,
)
from .dataset import TraceDataset
from .external import load_event_list_csv
from .filters import (
    concat_in_time,
    filter_events,
    merge_datasets,
    min_duration,
    only_causes,
    only_hours,
    only_machines,
)
from .generate import dataset_metadata, generate_dataset, generate_dataset_columns
from .io import (
    TRACE_FORMATS,
    detect_format,
    load_dataset,
    save_columns,
    save_dataset,
)
from .records import (
    EventColumns,
    EventRecord,
    columns_to_events,
    events_to_columns,
    validate_columns,
)
from .shards import (
    ShardedTraceDataset,
    ShardInfo,
    ShardManifest,
    convert_shards,
    generate_shards,
    is_shard_store,
    open_shards,
    partition_machines,
    write_shards,
)
from .validate import validate_dataset

__all__ = [
    "EventColumns",
    "EventRecord",
    "ShardInfo",
    "ShardManifest",
    "ShardedTraceDataset",
    "TRACE_FORMATS",
    "TraceDataset",
    "columns_to_events",
    "concat_in_time",
    "convert_shards",
    "dataset_metadata",
    "detect_format",
    "events_to_columns",
    "filter_events",
    "generate_dataset",
    "generate_dataset_columns",
    "generate_shards",
    "is_shard_store",
    "load_dataset",
    "load_dataset_binary",
    "load_event_list_csv",
    "merge_datasets",
    "min_duration",
    "only_causes",
    "only_hours",
    "only_machines",
    "open_columns",
    "open_shards",
    "partition_machines",
    "save_columns",
    "save_columns_binary",
    "save_dataset",
    "save_dataset_binary",
    "validate_columns",
    "validate_dataset",
    "write_shards",
]
