"""Trace dataset infrastructure.

The three-month availability trace is the paper's central artifact.  This
package defines the on-disk record schema, JSONL/CSV readers and writers,
an in-memory dataset with machine/day-type slicing, the end-to-end
generator, and validation checks.
"""

from .dataset import TraceDataset
from .external import load_event_list_csv
from .filters import (
    concat_in_time,
    filter_events,
    merge_datasets,
    min_duration,
    only_causes,
    only_hours,
    only_machines,
)
from .generate import dataset_metadata, generate_dataset
from .io import load_dataset, save_dataset
from .records import EventRecord
from .shards import (
    ShardedTraceDataset,
    ShardInfo,
    ShardManifest,
    generate_shards,
    is_shard_store,
    open_shards,
    partition_machines,
    write_shards,
)
from .validate import validate_dataset

__all__ = [
    "EventRecord",
    "ShardInfo",
    "ShardManifest",
    "ShardedTraceDataset",
    "TraceDataset",
    "concat_in_time",
    "dataset_metadata",
    "filter_events",
    "generate_dataset",
    "generate_shards",
    "is_shard_store",
    "load_dataset",
    "load_event_list_csv",
    "merge_datasets",
    "min_duration",
    "only_causes",
    "only_hours",
    "only_machines",
    "open_shards",
    "partition_machines",
    "save_dataset",
    "validate_dataset",
    "write_shards",
]
