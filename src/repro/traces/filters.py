"""Dataset filtering and transformation utilities.

Analyses often need views of a trace: only CPU-contention events, only a
machine subset, only daytime events, events above a duration.  These
helpers return new :class:`~repro.traces.dataset.TraceDataset` objects
(events are immutable, so views are cheap).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..core.events import UnavailabilityEvent
from ..core.states import AvailState
from ..errors import TraceError
from ..units import HOUR
from .dataset import TraceDataset

__all__ = [
    "filter_events",
    "only_causes",
    "only_machines",
    "only_hours",
    "min_duration",
    "merge_datasets",
]


def filter_events(
    dataset: TraceDataset,
    predicate: Callable[[UnavailabilityEvent], bool],
) -> TraceDataset:
    """A dataset keeping only events satisfying ``predicate``."""
    return TraceDataset(
        events=[e for e in dataset.events if predicate(e)],
        n_machines=dataset.n_machines,
        span=dataset.span,
        start_weekday=dataset.start_weekday,
        hourly_load=dataset.hourly_load,
        metadata=dict(dataset.metadata),
    )


def only_causes(
    dataset: TraceDataset, *causes: str | AvailState
) -> TraceDataset:
    """Keep events of the given causes ('cpu'/'memory'/'revocation') or
    states (AvailState)."""
    wanted_causes = set()
    for c in causes:
        if isinstance(c, AvailState):
            from ..core.states import state_cause

            wanted_causes.add(state_cause(c))
        elif c in ("cpu", "memory", "revocation"):
            wanted_causes.add(c)
        else:
            raise TraceError(f"unknown cause {c!r}")
    return filter_events(dataset, lambda e: e.cause in wanted_causes)


def only_machines(
    dataset: TraceDataset, machines: Sequence[int]
) -> TraceDataset:
    """Keep the given machines, renumbered 0..k-1."""
    machines = list(machines)
    if not machines:
        raise TraceError("need at least one machine")
    for m in machines:
        if not 0 <= m < dataset.n_machines:
            raise TraceError(f"machine {m} out of range")
    index = {m: i for i, m in enumerate(machines)}
    events = [
        UnavailabilityEvent(
            machine_id=index[e.machine_id],
            start=e.start,
            end=e.end,
            state=e.state,
            mean_host_load=e.mean_host_load,
            mean_free_mb=e.mean_free_mb,
        )
        for e in dataset.events
        if e.machine_id in index
    ]
    hourly = (
        dataset.hourly_load[machines, :] if dataset.hourly_load is not None else None
    )
    return TraceDataset(
        events=events,
        n_machines=len(machines),
        span=dataset.span,
        start_weekday=dataset.start_weekday,
        hourly_load=hourly,
        metadata=dict(dataset.metadata),
    )


def only_hours(
    dataset: TraceDataset, start_hour: float, end_hour: float
) -> TraceDataset:
    """Keep events *starting* within the [start, end) hour-of-day window
    (wrapping windows like 22-06 supported)."""
    if not (0 <= start_hour < 24 and 0 <= end_hour <= 24):
        raise TraceError("hours must be within a day")

    def in_window(e: UnavailabilityEvent) -> bool:
        h = (e.start % (24 * HOUR)) / HOUR
        if start_hour <= end_hour:
            return start_hour <= h < end_hour
        return h >= start_hour or h < end_hour

    return filter_events(dataset, in_window)


def min_duration(dataset: TraceDataset, seconds: float) -> TraceDataset:
    """Keep events lasting at least ``seconds``."""
    if seconds < 0:
        raise TraceError("seconds must be >= 0")
    return filter_events(dataset, lambda e: e.duration >= seconds)


def concat_in_time(first: TraceDataset, second: TraceDataset) -> TraceDataset:
    """Append ``second`` after ``first`` on the time axis.

    Both must cover the same machines; ``first``'s span must be whole days
    so weekday alignment carries through.  Useful for building
    non-stationary traces (e.g. a workload-regime change at a semester
    boundary) out of stationary generators.
    """
    if first.n_machines != second.n_machines:
        raise TraceError("datasets must have the same machine count")
    from ..units import DAY

    if first.span % DAY != 0:
        raise TraceError("first dataset's span must be whole days")
    expected_weekday = (first.start_weekday + first.n_days) % 7
    if second.start_weekday != expected_weekday:
        raise TraceError(
            f"second dataset must start on weekday {expected_weekday} "
            f"to continue the calendar (got {second.start_weekday})"
        )
    events = list(first.events)
    for e in second.events:
        events.append(
            UnavailabilityEvent(
                machine_id=e.machine_id,
                start=e.start + first.span,
                end=e.end + first.span,
                state=e.state,
                mean_host_load=e.mean_host_load,
                mean_free_mb=e.mean_free_mb,
            )
        )
    hourly = None
    if first.hourly_load is not None and second.hourly_load is not None:
        import numpy as np

        hourly = np.concatenate([first.hourly_load, second.hourly_load], axis=1)
    return TraceDataset(
        events=events,
        n_machines=first.n_machines,
        span=first.span + second.span,
        start_weekday=first.start_weekday,
        hourly_load=hourly,
    )


def merge_datasets(datasets: Iterable[TraceDataset]) -> TraceDataset:
    """Concatenate testbeds observed over the same span into one dataset
    (machines renumbered consecutively)."""
    datasets = list(datasets)
    if not datasets:
        raise TraceError("need at least one dataset")
    span = datasets[0].span
    weekday = datasets[0].start_weekday
    for d in datasets[1:]:
        if d.span != span or d.start_weekday != weekday:
            raise TraceError("datasets must share span and start weekday")
    events = []
    offset = 0
    for d in datasets:
        for e in d.events:
            events.append(
                UnavailabilityEvent(
                    machine_id=e.machine_id + offset,
                    start=e.start,
                    end=e.end,
                    state=e.state,
                    mean_host_load=e.mean_host_load,
                    mean_free_mb=e.mean_free_mb,
                )
            )
        offset += d.n_machines
    return TraceDataset(
        events=events,
        n_machines=offset,
        span=span,
        start_weekday=weekday,
    )
