"""End-to-end trace generation: the simulated three-month study.

For each machine: plan workload episodes, synthesize monitor samples, run
the unavailability detector, keep the events plus an hourly load summary,
and discard the raw samples.  Memory use stays at one machine's samples
(~25 MB) regardless of testbed size.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..config import FgcsConfig
from ..core.detector import BatchDetector
from ..core.model import MultiStateModel
from ..units import HOUR
from ..workloads.loadmodel import MachineTraceGenerator
from .dataset import TraceDataset

__all__ = ["generate_dataset"]


def generate_dataset(
    config: Optional[FgcsConfig] = None,
    *,
    keep_hourly_load: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
) -> TraceDataset:
    """Generate the full testbed trace dataset.

    Parameters
    ----------
    config:
        Testbed/workload/threshold configuration (paper defaults).
    keep_hourly_load:
        Also record each machine's mean host load per wall-clock hour.
    progress:
        Optional callback ``progress(machine_index, n_machines)``.

    Returns
    -------
    TraceDataset
        Events detected from the generated monitor streams — the same
        pipeline the paper ran on live machines.
    """
    config = config or FgcsConfig()
    gen = MachineTraceGenerator(config)
    model = MultiStateModel(thresholds=config.thresholds)
    detector = BatchDetector(model)

    n = config.testbed.n_machines
    n_hours = int(config.testbed.duration // HOUR)
    hourly = np.full((n, n_hours), np.nan) if keep_hourly_load else None

    events = []
    for mid in range(n):
        if progress is not None:
            progress(mid, n)
        trace = gen.generate(mid)
        events.extend(
            detector.detect(trace.samples, machine_id=mid, end_time=trace.span)
        )
        if hourly is not None:
            hourly[mid, :] = gen.hourly_mean_load(trace)[:n_hours]

    return TraceDataset(
        events=events,
        n_machines=n,
        span=config.testbed.duration,
        start_weekday=config.testbed.start_weekday,
        hourly_load=hourly,
        metadata={
            "seed": config.seed,
            "th1": config.thresholds.th1,
            "th2": config.thresholds.th2,
            "monitor_period": config.monitor.period,
        },
    )
