"""End-to-end trace generation: the simulated three-month study.

For each machine: plan workload episodes, synthesize monitor samples, run
the unavailability detector, keep the events plus an hourly load summary,
and discard the raw samples.  Memory use stays at one machine's samples
(~25 MB) regardless of testbed size — each worker builds only its own
machine's samples and returns events plus one hourly-load row.

Machines are independent units of work drawing from per-machine random
streams (``RngFactory(seed).generator(kind, machine_id)``), so generation
fans out over a process pool without changing a single byte of output:
``jobs=N`` produces exactly the ``jobs=1`` dataset.
"""

from __future__ import annotations

import logging
from typing import Callable, Optional

import numpy as np

from ..config import ExecutionConfig, FgcsConfig
from ..core.detector import BatchDetector
from ..core.events import UnavailabilityEvent
from ..core.model import MultiStateModel
from ..faults import QUARANTINED
from ..obs.metrics import get_registry
from ..units import HOUR
from ..workloads.loadmodel import MachineTraceGenerator
from .dataset import TraceDataset

__all__ = ["dataset_metadata", "generate_dataset"]

logger = logging.getLogger(__name__)


def dataset_metadata(config: FgcsConfig) -> dict:
    """The provenance metadata every generated dataset carries.

    Shared by monolithic generation and the sharded writer
    (:mod:`repro.traces.shards`) so a reassembled fleet compares equal —
    key order included, since JSONL headers are written without key
    sorting.
    """
    return {
        "seed": config.seed,
        "th1": config.thresholds.th1,
        "th2": config.thresholds.th2,
        "monitor_period": config.monitor.period,
    }


def _generate_machine(
    payload: tuple[FgcsConfig, int, bool],
) -> tuple[list[UnavailabilityEvent], Optional[np.ndarray]]:
    """One machine's (events, hourly-load row) — the parallel work unit.

    Module-level (picklable) and self-contained: builds the generator and
    detector from the config so a pool worker needs nothing but the
    payload.  Deterministic per ``(config.seed, machine_id)``.
    """
    config, machine_id, keep_hourly_load = payload
    gen = MachineTraceGenerator(config)
    detector = BatchDetector(MultiStateModel(thresholds=config.thresholds))
    trace = gen.generate(machine_id)
    events = detector.detect(
        trace.samples, machine_id=machine_id, end_time=trace.span
    )
    hourly_row = None
    if keep_hourly_load:
        n_hours = int(config.testbed.duration // HOUR)
        hourly_row = gen.hourly_mean_load(trace)[:n_hours]
    return events, hourly_row


def generate_dataset(
    config: Optional[FgcsConfig] = None,
    *,
    keep_hourly_load: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    execution: Optional[ExecutionConfig] = None,
) -> TraceDataset:
    """Generate the full testbed trace dataset.

    Parameters
    ----------
    config:
        Testbed/workload/threshold configuration (paper defaults).
    keep_hourly_load:
        Also record each machine's mean host load per wall-clock hour.
    progress:
        Optional callback ``progress(machine_index, n_machines)``, fired
        exactly once per machine, always in the calling process.  With a
        serial backend (``jobs=1``) it fires in submission order, *before*
        each machine is generated; with a process-pool backend it fires in
        completion order, *after* each machine's result arrives.  Every
        machine index in ``0 .. n_machines - 1`` is reported exactly once
        either way.
    execution:
        Worker-pool, cache, and fault-handling settings; defaults to
        ``config.execution``.  The result is bit-for-bit identical for
        every ``jobs`` value, and a cache hit returns a dataset equal to
        a freshly generated one.  Failed machines are retried per the
        execution config; a machine whose retries are exhausted is
        *quarantined* — its events are omitted, its hourly-load row stays
        NaN, the machine ids land in ``metadata["quarantined_machines"]``,
        and the (partial) dataset is not written to the cache.

    Returns
    -------
    TraceDataset
        Events detected from the generated monitor streams — the same
        pipeline the paper ran on live machines.
    """
    config = config or FgcsConfig()
    execution = execution if execution is not None else config.execution
    registry = get_registry()

    cache = None
    key = None
    if execution.cache_enabled:
        from ..parallel.cache import DatasetCache, dataset_cache_key

        cache = DatasetCache(execution.cache_dir, fault_plan=execution.fault_plan)
        key = dataset_cache_key(config, keep_hourly_load=keep_hourly_load)
        with registry.span("generate.cache_lookup"):
            cached = cache.get(key)
        if cached is not None:
            logger.info(
                "dataset cache hit (%s…): %d events", key[:12], len(cached)
            )
            return cached

    from ..parallel.backend import get_backend

    n = config.testbed.n_machines
    n_hours = int(config.testbed.duration // HOUR)
    hourly = np.full((n, n_hours), np.nan) if keep_hourly_load else None

    logger.info(
        "generating trace: %d machines × %d days (seed %d, jobs=%d)",
        n,
        config.testbed.n_days,
        config.seed,
        execution.jobs,
    )
    backend = get_backend(execution)
    fault_context = execution.fault_context("generate.machine", quarantine=True)
    with registry.span("generate.machines"):
        per_machine = backend.map(
            _generate_machine,
            [(config, mid, keep_hourly_load) for mid in range(n)],
            progress=progress,
            faults=fault_context,
        )

    with registry.span("generate.assemble"):
        events: list[UnavailabilityEvent] = []
        quarantined: list[int] = []
        for mid, result in enumerate(per_machine):
            if result is QUARANTINED:
                quarantined.append(mid)
                continue
            machine_events, hourly_row = result
            events.extend(machine_events)
            if hourly is not None and hourly_row is not None:
                hourly[mid, :] = hourly_row

        metadata = dataset_metadata(config)
        if quarantined:
            # Only present on degraded runs, so fault-free output bytes
            # are untouched.
            metadata["quarantined_machines"] = quarantined
        dataset = TraceDataset(
            events=events,
            n_machines=n,
            span=config.testbed.duration,
            start_weekday=config.testbed.start_weekday,
            hourly_load=hourly,
            metadata=metadata,
        )
    if quarantined:
        logger.error(
            "partial trace: %d/%d machine(s) quarantined after retries "
            "(ids %s); their events are missing from the dataset",
            len(quarantined),
            n,
            quarantined,
        )
    logger.info(
        "generated %d events over %.0f machine-days",
        len(dataset),
        dataset.machine_days,
    )
    if cache is not None and key is not None:
        if quarantined:
            logger.warning(
                "not caching partial dataset (%d quarantined machine(s))",
                len(quarantined),
            )
        else:
            with registry.span("generate.cache_write"):
                cache.put(key, dataset)
    return dataset
