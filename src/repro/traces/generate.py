"""End-to-end trace generation: the simulated three-month study.

For each machine: plan workload episodes, synthesize monitor samples, run
the unavailability detector, keep the events plus an hourly load summary,
and discard the raw samples.  Memory use stays at one machine's samples
(~25 MB) regardless of testbed size — each worker builds only its own
machine's samples and returns events plus one hourly-load row.

Machines are independent units of work drawing from per-machine random
streams (``RngFactory(seed).generator(kind, machine_id)``), so generation
fans out over a process pool without changing a single byte of output:
``jobs=N`` produces exactly the ``jobs=1`` dataset.

Since the columnar refactor the hot path is object-free end to end: the
worker (:func:`_generate_machine_columns`) synthesizes samples through the
shared :class:`~repro.workloads.loadmodel.SynthContext`, detects events
straight into an ``EVENT_DTYPE`` row array
(:meth:`~repro.core.detector.BatchDetector.detect_columns`), and the fleet
is assembled by concatenating those arrays.
:func:`generate_dataset_columns` returns the assembled
:class:`~repro.traces.records.EventColumns` unit as-is (what the CLI and
the sharded writer consume); :func:`generate_dataset` materializes the
same columns into a classic :class:`TraceDataset`.  Both produce
byte-identical serialized output to the legacy per-event path, which
survives as :func:`_generate_machine` for differential tests and the
throughput benchmark.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Optional

import numpy as np

from ..config import ExecutionConfig, FgcsConfig
from ..core.detector import BatchDetector
from ..core.events import UnavailabilityEvent
from ..core.model import MultiStateModel
from ..faults import QUARANTINED
from ..obs.metrics import get_registry
from ..rng import CountingRng, RngFactory
from ..units import HOUR
from ..workloads.labuser import EpisodePlanner
from ..workloads.loadmodel import (
    MachineTraceGenerator,
    hourly_mean_load_columns,
    synth_context,
    synthesize_samples_columns,
)
from .dataset import TraceDataset
from .records import EVENT_DTYPE, EventColumns, columns_to_events

__all__ = ["dataset_metadata", "generate_dataset", "generate_dataset_columns"]

logger = logging.getLogger(__name__)


def dataset_metadata(config: FgcsConfig) -> dict:
    """The provenance metadata every generated dataset carries.

    Shared by monolithic generation and the sharded writer
    (:mod:`repro.traces.shards`) so a reassembled fleet compares equal —
    key order included, since JSONL headers are written without key
    sorting.
    """
    return {
        "seed": config.seed,
        "th1": config.thresholds.th1,
        "th2": config.thresholds.th2,
        "monitor_period": config.monitor.period,
    }


def _generate_machine(
    payload: tuple[FgcsConfig, int, bool],
) -> tuple[list[UnavailabilityEvent], Optional[np.ndarray]]:
    """One machine's (events, hourly-load row) — the legacy work unit.

    Kept as the per-event-object reference implementation: the columnar
    differential tests and ``bench_generate_throughput`` compare
    :func:`_generate_machine_columns` against it.  Deterministic per
    ``(config.seed, machine_id)``.
    """
    config, machine_id, keep_hourly_load = payload
    gen = MachineTraceGenerator(config)
    detector = BatchDetector(MultiStateModel(thresholds=config.thresholds))
    trace = gen.generate(machine_id)
    events = detector.detect(
        trace.samples, machine_id=machine_id, end_time=trace.span
    )
    hourly_row = None
    if keep_hourly_load:
        n_hours = int(config.testbed.duration // HOUR)
        hourly_row = gen.hourly_mean_load(trace)[:n_hours]
    return events, hourly_row


def _generate_machine_columns(
    payload: tuple[FgcsConfig, int, int, bool, bool],
) -> tuple[np.ndarray, Optional[np.ndarray], Optional[dict], float, float]:
    """One machine's event rows — the columnar parallel work unit.

    Returns ``(event_rows, hourly_row, draw_counters, synth_seconds,
    detect_seconds)``.  ``event_rows`` is an ``EVENT_DTYPE`` array whose
    ``machine_id`` column is already ``event_machine_id`` (shard workers
    pass the shard-local id, so no relocation pass is needed), and the
    timings are measured here so the caller can fold them into whichever
    registry is ambient in the parent process — a pool worker's own
    registry is a disabled no-op.

    Draws from exactly the same ``RngFactory(seed).generator(kind,
    machine_id)`` streams in the same order as the legacy path, so output
    is bit-identical.
    """
    config, machine_id, event_machine_id, keep_hourly_load, count_draws = payload
    registry = get_registry()
    t0 = time.perf_counter()
    with registry.span("machine.synth"):
        ctx = synth_context(config)
        factory = RngFactory(config.seed)
        busyness = float(
            factory.generator("busyness", machine_id).uniform(0.86, 1.04)
        )
        plan_rng = factory.generator("plan", machine_id)
        counters: Optional[dict] = None
        if count_draws:
            counters = {"rng.draws.busyness": 1}
            plan_rng = CountingRng(plan_rng)
        episodes = EpisodePlanner(ctx.profile, plan_rng, busyness=busyness).plan()
        if counters is not None:
            counters["rng.draws.plan"] = plan_rng.draws
        samples = synthesize_samples_columns(
            episodes,
            config=config,
            ctx=ctx,
            rng=factory.generator("signal", machine_id),
            counters=counters,
        )
        synth_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    with registry.span("machine.detect"):
        detector = BatchDetector(MultiStateModel(thresholds=config.thresholds))
        rows = detector.detect_columns(
            samples, machine_id=event_machine_id, end_time=ctx.span
        )
        hourly_row = (
            hourly_mean_load_columns(samples, ctx) if keep_hourly_load else None
        )
        detect_seconds = time.perf_counter() - t1
    return rows, hourly_row, counters, synth_seconds, detect_seconds


def _fold_machine_telemetry(
    registry, counters: Optional[dict], synth_seconds: float, detect_seconds: float
) -> None:
    """Report one worker's timings/draw counts on the parent registry."""
    if not registry.enabled:
        return
    registry.observe("generate.synth_seconds", synth_seconds)
    registry.observe("generate.detect_seconds", detect_seconds)
    if counters:
        for name, n in counters.items():
            registry.inc(name, n)


def _generate_fleet_columns(
    config: FgcsConfig,
    *,
    keep_hourly_load: bool,
    progress: Optional[Callable[[int, int], None]],
    execution: ExecutionConfig,
) -> EventColumns:
    """Fan machines out over the backend and assemble the column unit.

    No cache interaction here — both public entry points wrap this with
    their own cache lookup/write.  Quarantined machines contribute no
    event rows and leave their hourly row NaN; their ids land in
    ``metadata["quarantined_machines"]``.
    """
    from ..parallel.backend import get_backend

    registry = get_registry()
    n = config.testbed.n_machines
    n_hours = int(config.testbed.duration // HOUR)
    hourly = np.full((n, n_hours), np.nan) if keep_hourly_load else None

    logger.info(
        "generating trace: %d machines × %d days (seed %d, jobs=%d)",
        n,
        config.testbed.n_days,
        config.seed,
        execution.jobs,
    )
    backend = get_backend(execution)
    fault_context = execution.fault_context("generate.machine", quarantine=True)
    count_draws = registry.enabled
    with registry.span("generate.machines"):
        per_machine = backend.map(
            _generate_machine_columns,
            [(config, mid, mid, keep_hourly_load, count_draws) for mid in range(n)],
            progress=progress,
            faults=fault_context,
        )

    with registry.span("generate.assemble"):
        row_blocks: list[np.ndarray] = []
        quarantined: list[int] = []
        for mid, result in enumerate(per_machine):
            if result is QUARANTINED:
                quarantined.append(mid)
                continue
            rows, hourly_row, counters, synth_seconds, detect_seconds = result
            _fold_machine_telemetry(
                registry, counters, synth_seconds, detect_seconds
            )
            row_blocks.append(rows)
            if hourly is not None and hourly_row is not None:
                hourly[mid, :] = hourly_row

        events = (
            np.concatenate(row_blocks)
            if row_blocks
            else np.empty(0, dtype=EVENT_DTYPE)
        )
        metadata = dataset_metadata(config)
        if quarantined:
            # Only present on degraded runs, so fault-free output bytes
            # are untouched.
            metadata["quarantined_machines"] = quarantined
        columns = EventColumns(
            events=events,
            n_machines=n,
            span=config.testbed.duration,
            start_weekday=config.testbed.start_weekday,
            metadata=metadata,
            hourly_load=hourly,
        )
    if quarantined:
        logger.error(
            "partial trace: %d/%d machine(s) quarantined after retries "
            "(ids %s); their events are missing from the dataset",
            len(quarantined),
            n,
            quarantined,
        )
    logger.info(
        "generated %d events over %.0f machine-days",
        len(columns),
        n * config.testbed.duration / (24 * HOUR),
    )
    return columns


def generate_dataset_columns(
    config: Optional[FgcsConfig] = None,
    *,
    keep_hourly_load: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    execution: Optional[ExecutionConfig] = None,
) -> EventColumns:
    """Generate the full testbed trace as an object-free column unit.

    Same semantics, caching, and quarantine behavior as
    :func:`generate_dataset`, but the result is the
    :class:`~repro.traces.records.EventColumns` table (hourly-load matrix
    attached) that :func:`repro.traces.io.save_columns` writes directly —
    no :class:`~repro.core.events.UnavailabilityEvent` objects exist
    anywhere on this path.  Cache entries are shared with the dataset
    path: same keys, same on-disk bytes.
    """
    config = config or FgcsConfig()
    execution = execution if execution is not None else config.execution
    registry = get_registry()

    cache = None
    key = None
    if execution.cache_enabled:
        from ..parallel.cache import DatasetCache, dataset_cache_key

        cache = DatasetCache(execution.cache_dir, fault_plan=execution.fault_plan)
        key = dataset_cache_key(config, keep_hourly_load=keep_hourly_load)
        with registry.span("generate.cache_lookup"):
            cached = cache.get_columns(key)
        if cached is not None:
            logger.info(
                "dataset cache hit (%s…): %d events", key[:12], len(cached)
            )
            return cached

    columns = _generate_fleet_columns(
        config,
        keep_hourly_load=keep_hourly_load,
        progress=progress,
        execution=execution,
    )
    quarantined = columns.metadata.get("quarantined_machines")
    if cache is not None and key is not None:
        if quarantined:
            logger.warning(
                "not caching partial dataset (%d quarantined machine(s))",
                len(quarantined),
            )
        else:
            with registry.span("generate.cache_write"):
                cache.put_columns(key, columns)
    return columns


def generate_dataset(
    config: Optional[FgcsConfig] = None,
    *,
    keep_hourly_load: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    execution: Optional[ExecutionConfig] = None,
) -> TraceDataset:
    """Generate the full testbed trace dataset.

    Parameters
    ----------
    config:
        Testbed/workload/threshold configuration (paper defaults).
    keep_hourly_load:
        Also record each machine's mean host load per wall-clock hour.
    progress:
        Optional callback ``progress(machine_index, n_machines)``, fired
        exactly once per machine, always in the calling process.  With a
        serial backend (``jobs=1``) it fires in submission order, *before*
        each machine is generated; with a process-pool backend it fires in
        completion order, *after* each machine's result arrives.  Every
        machine index in ``0 .. n_machines - 1`` is reported exactly once
        either way.
    execution:
        Worker-pool, cache, and fault-handling settings; defaults to
        ``config.execution``.  The result is bit-for-bit identical for
        every ``jobs`` value, and a cache hit returns a dataset equal to
        a freshly generated one.  Failed machines are retried per the
        execution config; a machine whose retries are exhausted is
        *quarantined* — its events are omitted, its hourly-load row stays
        NaN, the machine ids land in ``metadata["quarantined_machines"]``,
        and the (partial) dataset is not written to the cache.

    Returns
    -------
    TraceDataset
        Events detected from the generated monitor streams — the same
        pipeline the paper ran on live machines.
    """
    config = config or FgcsConfig()
    execution = execution if execution is not None else config.execution
    registry = get_registry()

    cache = None
    key = None
    if execution.cache_enabled:
        from ..parallel.cache import DatasetCache, dataset_cache_key

        cache = DatasetCache(execution.cache_dir, fault_plan=execution.fault_plan)
        key = dataset_cache_key(config, keep_hourly_load=keep_hourly_load)
        with registry.span("generate.cache_lookup"):
            cached = cache.get(key)
        if cached is not None:
            logger.info(
                "dataset cache hit (%s…): %d events", key[:12], len(cached)
            )
            return cached

    columns = _generate_fleet_columns(
        config,
        keep_hourly_load=keep_hourly_load,
        progress=progress,
        execution=execution,
    )
    # Rows come out (machine_id, start)-sorted and detect_columns enforced
    # event invariants, so the trusted constructors apply.
    dataset = TraceDataset.from_validated(
        columns_to_events(columns.events),
        n_machines=columns.n_machines,
        span=columns.span,
        start_weekday=columns.start_weekday,
        hourly_load=columns.hourly_load,
        metadata=columns.metadata,
    )
    quarantined = columns.metadata.get("quarantined_machines")
    if cache is not None and key is not None:
        if quarantined:
            logger.warning(
                "not caching partial dataset (%d quarantined machine(s))",
                len(quarantined),
            )
        else:
            with registry.span("generate.cache_write"):
                cache.put(key, dataset)
    return dataset
