"""The ``fgcs-bin`` binary columnar trace format.

JSONL traces (:mod:`repro.traces.io`) pay one ``json.dumps`` /
``json.loads`` per event — at fleet scale that codec, not the analysis,
dominates wall time.  This module stores the same dataset losslessly as
three contiguous blocks so reads are zero-copy:

``magic + version + header length`` (14 bytes)
    Magic bytes ``\\x93FGCSBIN`` identify the format (and let
    :func:`repro.traces.io.load_dataset` auto-detect it), a ``<u2``
    format version rejects incompatible layouts before any parsing, and
    a ``<u4`` gives the JSON header's byte length.

header (UTF-8 JSON)
    The dataset frame: schema versions, machine count, span, start
    weekday, metadata, event count, and the hourly-load shape.  Exactly
    the information of the JSONL header line; floats round-trip exactly
    through JSON's shortest-repr encoding.

event block
    The event table as one packed little-endian structured array
    (:data:`repro.traces.records.EVENT_DTYPE` — ``machine_id:i4,
    start:f8, end:f8, state:u1, mean_host_load:f8, mean_free_mb:f8``),
    64-byte aligned so it can be handed to NumPy as a read-only memmap:
    :func:`open_columns` never copies or decodes event bytes.  NaN
    resource observations are stored as NaN (no ``None`` sentinel).

hourly-load block (optional)
    The ``(n_machines, n_hours)`` float64 hourly-load matrix, also
    64-byte aligned.

Block offsets are a deterministic function of the header length, so a
file's bytes are a pure function of its dataset — the shard layer's
content fingerprints and the byte-identity guarantees of the chaos
harness hold for binary traces exactly as for JSONL.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import BinaryIO, Optional, Union

import numpy as np

from ..errors import TraceError
from .records import EVENT_DTYPE, EventColumns, columns_to_events, events_to_columns

__all__ = [
    "BIN_SCHEMA_VERSION",
    "MAGIC",
    "is_binary_trace",
    "load_dataset_binary",
    "open_columns",
    "save_columns_binary",
    "save_dataset_binary",
]

#: Leading magic bytes of every ``fgcs-bin`` file.  The ``\x93`` prefix
#: (borrowed from ``.npy``) guarantees the file can never parse as text.
MAGIC: bytes = b"\x93FGCSBIN"

#: Version of the binary layout (magic/header/block scheme and
#: :data:`~repro.traces.records.EVENT_DTYPE`).  Bump on any incompatible
#: change; readers reject versions they do not know.
BIN_SCHEMA_VERSION = 1

_KIND = "fgcs-trace-bin"
_PREAMBLE = struct.Struct("<8sHI")  # magic, version, header byte length
_ALIGN = 64

PathLike = Union[str, Path]


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def is_binary_trace(path: PathLike) -> bool:
    """True when ``path`` starts with the ``fgcs-bin`` magic bytes."""
    try:
        with Path(path).open("rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def save_dataset_binary(dataset, path: PathLike) -> None:
    """Write a dataset as one ``fgcs-bin`` file (``.bin`` suggested)."""
    save_columns_binary(EventColumns.from_dataset(dataset), path)


def save_columns_binary(columns: EventColumns, path: PathLike) -> None:
    """Write an event-column unit as one ``fgcs-bin`` file.

    The column-native twin of :func:`save_dataset_binary` — the event
    table is dumped as-is, so the columnar generation path writes a trace
    without ever materializing event objects.  Output bytes are a pure
    function of the columns, identical to saving the equivalent dataset.
    """
    path = Path(path)
    events = columns.events
    if events.dtype != EVENT_DTYPE:
        raise TraceError(
            f"event columns have dtype {events.dtype}, expected {EVENT_DTYPE}"
        )
    hourly = columns.hourly_load
    header = {
        "kind": _KIND,
        "schema": {"binary": BIN_SCHEMA_VERSION, "trace": _trace_schema()},
        "n_machines": columns.n_machines,
        "span": columns.span,
        "start_weekday": columns.start_weekday,
        "metadata": columns.metadata,
        "n_events": int(events.size),
        "hourly_shape": None if hourly is None else list(hourly.shape),
    }
    # No sort_keys: metadata key order is part of the dataset (JSONL
    # preserves it), so it must survive a binary round trip too.
    header_blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
    events_off = _align(_PREAMBLE.size + len(header_blob))
    with path.open("wb") as fh:
        fh.write(_PREAMBLE.pack(MAGIC, BIN_SCHEMA_VERSION, len(header_blob)))
        fh.write(header_blob)
        _pad_to(fh, events_off)
        fh.write(events.tobytes())
        if hourly is not None:
            _pad_to(fh, _align(events_off + events.nbytes))
            fh.write(np.ascontiguousarray(hourly, dtype=np.float64).tobytes())


def _pad_to(fh: BinaryIO, offset: int) -> None:
    fh.write(b"\x00" * (offset - fh.tell()))


def _trace_schema() -> int:
    from .io import SCHEMA_VERSION

    return SCHEMA_VERSION


def _read_header(path: Path) -> tuple[dict, int]:
    """(header dict, event-block offset) of a binary trace file."""
    try:
        with path.open("rb") as fh:
            preamble = fh.read(_PREAMBLE.size)
            if len(preamble) < _PREAMBLE.size:
                raise TraceError(f"{path}: truncated binary trace preamble")
            magic, version, header_len = _PREAMBLE.unpack(preamble)
            if magic != MAGIC:
                raise TraceError(f"{path}: not an FGCS binary trace file")
            if version != BIN_SCHEMA_VERSION:
                raise TraceError(
                    f"{path}: unsupported binary format version {version} "
                    f"(expected {BIN_SCHEMA_VERSION})"
                )
            header_blob = fh.read(header_len)
    except OSError as exc:
        raise TraceError(f"cannot read binary trace {path}: {exc}") from exc
    if len(header_blob) < header_len:
        raise TraceError(f"{path}: truncated binary trace header")
    try:
        header = json.loads(header_blob.decode("utf-8"))
    except ValueError as exc:
        raise TraceError(f"{path}: bad binary trace header: {exc}") from exc
    if header.get("kind") != _KIND:
        raise TraceError(f"{path}: not an FGCS binary trace header")
    if header.get("schema", {}).get("trace") != _trace_schema():
        raise TraceError(
            f"{path}: unsupported trace schema "
            f"{header.get('schema', {}).get('trace')!r}"
        )
    return header, _align(_PREAMBLE.size + header_len)


def open_columns(
    path: PathLike, *, mmap: bool = True
) -> tuple[dict, EventColumns, Optional[np.ndarray]]:
    """Open a binary trace as ``(header, event columns, hourly load)``.

    With ``mmap=True`` (default) the event block and hourly matrix are
    read-only memory maps over the file — no bytes are copied or decoded
    until a consumer touches them.  The event table itself is validated
    vectorized by the caller that needs it
    (:func:`repro.traces.records.validate_columns`); this function only
    checks the frame.
    """
    path = Path(path)
    header, events_off = _read_header(path)
    n_events = int(header["n_events"])
    events_nbytes = n_events * EVENT_DTYPE.itemsize
    hourly_shape = header.get("hourly_shape")
    expected = events_off + events_nbytes
    if hourly_shape is not None:
        expected = _align(expected) + int(np.prod(hourly_shape)) * 8
    try:
        actual = path.stat().st_size
    except OSError as exc:
        raise TraceError(f"cannot read binary trace {path}: {exc}") from exc
    if actual < expected:
        raise TraceError(
            f"{path}: truncated binary trace "
            f"({actual} bytes, expected {expected})"
        )
    if n_events == 0:
        events = np.empty(0, dtype=EVENT_DTYPE)
    elif mmap:
        events = np.memmap(
            path, dtype=EVENT_DTYPE, mode="r", offset=events_off, shape=(n_events,)
        )
    else:
        with path.open("rb") as fh:
            fh.seek(events_off)
            events = np.frombuffer(
                fh.read(events_nbytes), dtype=EVENT_DTYPE
            ).copy()
    hourly = None
    if hourly_shape is not None:
        shape = tuple(int(x) for x in hourly_shape)
        hourly_off = _align(events_off + events_nbytes)
        if int(np.prod(shape)) == 0:
            hourly = np.empty(shape, dtype=np.float64)
        elif mmap:
            hourly = np.memmap(
                path, dtype=np.float64, mode="r", offset=hourly_off, shape=shape
            )
        else:
            with path.open("rb") as fh:
                fh.seek(hourly_off)
                hourly = (
                    np.frombuffer(
                        fh.read(int(np.prod(shape)) * 8), dtype=np.float64
                    )
                    .reshape(shape)
                    .copy()
                )
    columns = EventColumns(
        events=events,
        n_machines=int(header["n_machines"]),
        span=float(header["span"]),
        start_weekday=int(header.get("start_weekday", 0)),
        metadata=dict(header.get("metadata", {})),
    )
    return header, columns, hourly


def load_dataset_binary(path: PathLike):
    """Read a binary trace back into an in-memory :class:`TraceDataset`.

    Events are decoded straight from the column block — one C pass per
    column plus object construction, no JSON and no
    :class:`~repro.traces.records.EventRecord` intermediates.  The
    hourly-load matrix is copied out of the map so the returned dataset
    owns writable arrays, like the JSONL loader's.
    """
    from .dataset import TraceDataset
    from .records import validate_columns

    _, columns, hourly = open_columns(path, mmap=True)
    try:
        validate_columns(
            columns.events, n_machines=columns.n_machines, span=columns.span
        )
    except TraceError as exc:
        raise TraceError(f"{path}: {exc}") from exc
    # validate_columns proved sort order and ranges, so the trusted
    # constructor can skip the per-event re-checks.
    dataset = TraceDataset.from_validated(
        columns_to_events(columns.events),
        n_machines=columns.n_machines,
        span=columns.span,
        start_weekday=columns.start_weekday,
        hourly_load=None if hourly is None else np.array(hourly, dtype=np.float64),
        metadata=columns.metadata,
    )
    _close_memmap(columns.events)
    if hourly is not None:
        _close_memmap(hourly)
    return dataset


def _close_memmap(arr: np.ndarray) -> None:
    """Release a memmap's file handle promptly (harmless for plain arrays)."""
    mm = getattr(arr, "_mmap", None)
    if mm is not None:
        try:
            mm.close()
        except (BufferError, OSError):  # still referenced: GC will close it
            pass


def file_size(path: PathLike) -> int:
    """Size in bytes, 0 when the file is missing (telemetry helper)."""
    try:
        return os.stat(path).st_size
    except OSError:
        return 0
