"""Sharded on-disk fleet datasets: per-machine-range shards + a manifest.

A monolithic :class:`~repro.traces.dataset.TraceDataset` materializes the
whole fleet in memory, which caps every analysis at a few hundred
machines.  This module stores a fleet as *shards* — each shard is an
ordinary trace file (written by :mod:`repro.traces.io`, in either the
JSONL or the binary ``fgcs-bin`` format; see ``docs/formats.md``)
covering a contiguous machine range ``[machine_lo, machine_hi)`` with
machine ids renumbered to shard-local ``0 .. n-1`` — plus one
``manifest.json`` describing the fleet:

* **schema-versioned** — the manifest carries the shard-layout version
  (:data:`SHARD_SCHEMA_VERSION`) alongside the trace-file and
  generation-code schema versions, so stale layouts are rejected rather
  than misread;
* **content-fingerprinted** — every shard entry records the SHA-256 of
  its file; reads verify it by default, so a truncated or tampered shard
  fails loudly instead of silently skewing fleet statistics;
* **cache-aware** — :func:`generate_shards` keys each shard in the
  on-disk :class:`~repro.parallel.cache.DatasetCache` (per-shard keys
  derived from the config fingerprint plus the machine range), and the
  manifest records both the per-shard cache keys and the monolithic
  dataset cache key for provenance;
* **fault-plan-aware** — sharded generation runs through the hardened
  :mod:`repro.parallel` map (unit keys ``generate.shard:<k>``), so
  injected or real worker crashes retry per the execution config; a
  shard whose retries are exhausted is quarantined (its machine range
  lands in ``metadata["quarantined_machines"]`` and an event-free
  placeholder shard keeps the fleet tileable).

Shard files are byte-identical to slicing the monolithic dataset with
:func:`write_shards` — ``generate_shards`` then ``load_full`` equals
``generate_dataset`` exactly, for any ``jobs`` value and any fault plan
whose faults are cleared by retries.  Streaming consumers iterate
:meth:`ShardedTraceDataset.iter_shards` one shard at a time (constant
memory); see :mod:`repro.analysis.accumulators` for the mergeable
analyses built on top.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

import numpy as np

from ..config import ExecutionConfig, FgcsConfig
from ..errors import TraceError
from ..core.events import UnavailabilityEvent
from .dataset import TraceDataset
from .io import SCHEMA_VERSION, TRACE_FORMATS, load_dataset, save_dataset
from .records import EventColumns, events_to_columns, validate_columns

__all__ = [
    "MANIFEST_NAME",
    "SHARD_SCHEMA_VERSION",
    "ShardInfo",
    "ShardManifest",
    "ShardedTraceDataset",
    "convert_shards",
    "dataset_shard",
    "generate_shards",
    "is_shard_store",
    "open_shards",
    "partition_machines",
    "shard_cache_key",
    "write_shards",
]

logger = logging.getLogger(__name__)

#: Version of the shard layout + manifest document.  Bump when the
#: manifest keys or the shard-file conventions change incompatibly.
#: v2 added the per-shard ``format`` field (``jsonl`` | ``binary``);
#: v1 manifests are still read, with every shard implied ``jsonl``.
SHARD_SCHEMA_VERSION = 2

#: Manifest schema versions :meth:`ShardManifest.from_dict` accepts.
_READABLE_SHARD_SCHEMAS = (1, SHARD_SCHEMA_VERSION)

#: The manifest file name inside a shard directory.
MANIFEST_NAME = "manifest.json"

_KIND = "fgcs-shard-manifest"


def partition_machines(n_machines: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced machine ranges ``[lo, hi)`` covering the fleet.

    ``n_shards`` is clamped to ``[1, n_machines]`` (a shard must hold at
    least one machine); the first ``n_machines % n_shards`` shards get one
    extra machine.
    """
    if n_machines <= 0:
        raise TraceError("partition_machines needs n_machines > 0")
    if n_shards <= 0:
        raise TraceError("partition_machines needs n_shards > 0")
    k = min(n_shards, n_machines)
    base, extra = divmod(n_machines, k)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for i in range(k):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _shard_metadata(base: dict, index: int, lo: int, hi: int, fleet: int) -> dict:
    """Shard-file metadata: the fleet metadata plus the shard identity.

    Built identically by :func:`dataset_shard` and the generation worker
    so split-from-monolithic and generated-sharded files are
    byte-identical.
    """
    return {
        **base,
        "shard": {
            "index": index,
            "machine_lo": lo,
            "machine_hi": hi,
            "fleet_machines": fleet,
        },
    }


def _relocate_events(
    events: list[UnavailabilityEvent], lo: int, hi: int, offset: int
) -> list[UnavailabilityEvent]:
    """Events of machines ``[lo, hi)`` with machine ids shifted by ``offset``."""
    out = []
    for e in events:
        if lo <= e.machine_id < hi:
            out.append(
                UnavailabilityEvent(
                    machine_id=e.machine_id + offset,
                    start=e.start,
                    end=e.end,
                    state=e.state,
                    mean_host_load=e.mean_host_load,
                    mean_free_mb=e.mean_free_mb,
                )
            )
    return out


def dataset_shard(
    dataset: TraceDataset, index: int, lo: int, hi: int
) -> TraceDataset:
    """The shard-local dataset for machine range ``[lo, hi)``.

    Machine ids are renumbered to ``0 .. hi-lo-1``; the span, start
    weekday, and hourly-load rows are preserved, and the metadata gains a
    ``"shard"`` section recording the global range.
    """
    if not 0 <= lo < hi <= dataset.n_machines:
        raise TraceError(f"bad shard machine range [{lo}, {hi})")
    hourly = None
    if dataset.hourly_load is not None:
        hourly = dataset.hourly_load[lo:hi].copy()
    return TraceDataset(
        events=_relocate_events(dataset.events, lo, hi, -lo),
        n_machines=hi - lo,
        span=dataset.span,
        start_weekday=dataset.start_weekday,
        hourly_load=hourly,
        metadata=_shard_metadata(
            dict(dataset.metadata), index, lo, hi, dataset.n_machines
        ),
    )


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _atomic_save(dataset: TraceDataset, path: Path, fmt: str = "jsonl") -> None:
    """Write a shard file atomically (temp + rename), like the cache does.

    The format is passed explicitly — the temp name's ``.tmp<pid>``
    suffix would defeat suffix-based inference.
    """
    _atomic_write(save_dataset, dataset, path, fmt)


def _atomic_save_columns(columns, path: Path, fmt: str = "jsonl") -> None:
    """:func:`_atomic_save` for an event-column unit (same output bytes)."""
    from .io import save_columns

    _atomic_write(save_columns, columns, path, fmt)


def _atomic_write(save, payload, path: Path, fmt: str) -> None:
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    try:
        save(payload, tmp, format=fmt)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass


def _check_format(fmt: str) -> str:
    if fmt not in TRACE_FORMATS:
        raise TraceError(
            f"unknown shard format {fmt!r} (expected one of {TRACE_FORMATS})"
        )
    return fmt


def shard_cache_key(
    config: FgcsConfig, lo: int, hi: int, *, keep_hourly_load: bool = True
) -> str:
    """Dataset-cache key for one generated shard of the fleet."""
    from ..parallel.cache import config_fingerprint

    return config_fingerprint(
        config, extra=("trace-shard", lo, hi, keep_hourly_load)
    )


@dataclass(frozen=True)
class ShardInfo:
    """One shard's entry in the manifest."""

    index: int
    #: File name relative to the manifest's directory.
    path: str
    machine_lo: int
    machine_hi: int
    n_events: int
    #: SHA-256 of the shard file's bytes (verified on read by default).
    sha256: str
    #: Dataset-cache key the shard was generated under, when caching was
    #: configured (provenance only — reads never require the cache).
    cache_key: Optional[str] = None
    #: On-disk trace format of the shard file (``jsonl`` | ``binary``).
    #: Readers still sniff magic bytes; the manifest field is what lets
    #: the streaming analyzer pick the zero-copy path without opening
    #: the file twice.  Absent in v1 manifests, implying ``jsonl``.
    format: str = "jsonl"

    @property
    def n_machines(self) -> int:
        return self.machine_hi - self.machine_lo

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "path": self.path,
            "machine_lo": self.machine_lo,
            "machine_hi": self.machine_hi,
            "n_events": self.n_events,
            "sha256": self.sha256,
            "cache_key": self.cache_key,
            "format": self.format,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ShardInfo":
        return cls(
            index=int(d["index"]),
            path=str(d["path"]),
            machine_lo=int(d["machine_lo"]),
            machine_hi=int(d["machine_hi"]),
            n_events=int(d["n_events"]),
            sha256=str(d["sha256"]),
            cache_key=d.get("cache_key"),
            format=_check_format(str(d.get("format", "jsonl"))),
        )


@dataclass
class ShardManifest:
    """The fleet-level description of a shard directory."""

    n_machines: int
    span: float
    start_weekday: int
    shards: tuple[ShardInfo, ...]
    metadata: dict = field(default_factory=dict)
    #: :func:`repro.parallel.cache.config_fingerprint` of the generating
    #: config (``None`` for fleets split from an existing dataset).
    config_fingerprint: Optional[str] = None
    #: The *monolithic* dataset cache key the fleet is equivalent to.
    dataset_cache_key: Optional[str] = None

    def __post_init__(self) -> None:
        self.shards = tuple(
            sorted(self.shards, key=lambda s: s.index)
        )
        cursor = 0
        for s in self.shards:
            if s.machine_lo != cursor or s.machine_hi <= s.machine_lo:
                raise TraceError(
                    f"shards must tile [0, {self.n_machines}) contiguously; "
                    f"shard {s.index} covers [{s.machine_lo}, {s.machine_hi})"
                )
            cursor = s.machine_hi
        if cursor != self.n_machines:
            raise TraceError(
                f"shards cover [0, {cursor}) but the fleet has "
                f"{self.n_machines} machines"
            )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_events(self) -> int:
        return sum(s.n_events for s in self.shards)

    def to_dict(self) -> dict:
        from ..parallel.cache import CODE_SCHEMA_VERSION

        return {
            "kind": _KIND,
            "schema": {
                "shards": SHARD_SCHEMA_VERSION,
                "trace": SCHEMA_VERSION,
                "code": CODE_SCHEMA_VERSION,
            },
            "n_machines": self.n_machines,
            "span": self.span,
            "start_weekday": self.start_weekday,
            "n_shards": self.n_shards,
            "n_events": self.n_events,
            "metadata": self.metadata,
            "config_fingerprint": self.config_fingerprint,
            "dataset_cache_key": self.dataset_cache_key,
            "shards": [s.to_dict() for s in self.shards],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardManifest":
        if data.get("kind") != _KIND:
            raise TraceError("not a shard manifest")
        schema = data.get("schema", {})
        if schema.get("shards") not in _READABLE_SHARD_SCHEMAS:
            raise TraceError(
                f"unsupported shard schema {schema.get('shards')!r} "
                f"(expected one of {_READABLE_SHARD_SCHEMAS})"
            )
        return cls(
            n_machines=int(data["n_machines"]),
            span=float(data["span"]),
            start_weekday=int(data.get("start_weekday", 0)),
            shards=tuple(ShardInfo.from_dict(s) for s in data["shards"]),
            metadata=dict(data.get("metadata", {})),
            config_fingerprint=data.get("config_fingerprint"),
            dataset_cache_key=data.get("dataset_cache_key"),
        )

    def save(self, directory: Union[str, Path]) -> Path:
        """Write ``manifest.json`` into ``directory`` atomically."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / MANIFEST_NAME
        tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
        tmp.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardManifest":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise TraceError(f"cannot read shard manifest {path}: {exc}") from exc
        return cls.from_dict(data)


class ShardedTraceDataset:
    """A fleet dataset opened from a shard directory.

    Never materializes more than one shard at a time unless
    :meth:`load_full` is called.  ``verify=True`` (the default) checks
    every shard's SHA-256 content fingerprint and its header against the
    manifest on read.
    """

    def __init__(
        self,
        manifest: ShardManifest,
        root: Union[str, Path],
        *,
        verify: bool = True,
    ) -> None:
        self.manifest = manifest
        self.root = Path(root)
        self.verify = verify

    # -- manifest passthroughs ------------------------------------------------

    @property
    def n_machines(self) -> int:
        return self.manifest.n_machines

    @property
    def n_shards(self) -> int:
        return self.manifest.n_shards

    @property
    def n_events(self) -> int:
        return self.manifest.n_events

    @property
    def span(self) -> float:
        return self.manifest.span

    @property
    def start_weekday(self) -> int:
        return self.manifest.start_weekday

    @property
    def n_days(self) -> int:
        from ..units import DAY

        return int(self.span // DAY)

    @property
    def metadata(self) -> dict:
        return self.manifest.metadata

    @property
    def machine_days(self) -> float:
        from ..units import DAY

        return self.n_machines * self.span / DAY

    # -- shard access ---------------------------------------------------------

    def shard_path(self, index: int) -> Path:
        return self.root / self.manifest.shards[index].path

    def shard_dataset(self, index: int) -> TraceDataset:
        """Load one shard (local machine ids), verifying per ``verify``."""
        info = self.manifest.shards[index]
        path = self.root / info.path
        if self.verify:
            try:
                digest = _sha256_file(path)
            except OSError as exc:
                raise TraceError(f"cannot read shard {path}: {exc}") from exc
            if digest != info.sha256:
                raise TraceError(
                    f"shard {info.path} content fingerprint mismatch "
                    f"(expected {info.sha256[:12]}…, got {digest[:12]}…); "
                    "the file was corrupted or replaced"
                )
        dataset = load_dataset(path)
        if self.verify:
            if dataset.n_machines != info.n_machines:
                raise TraceError(
                    f"shard {info.path} holds {dataset.n_machines} machines, "
                    f"manifest says {info.n_machines}"
                )
            if (
                dataset.span != self.span
                or dataset.start_weekday != self.start_weekday
            ):
                raise TraceError(
                    f"shard {info.path} span/start_weekday disagrees with "
                    "the manifest"
                )
        return dataset

    def shard_columns(self, index: int) -> EventColumns:
        """One shard's event table as columns, zero-copy when binary.

        For a binary shard the returned columns wrap a read-only memmap
        over the shard file — no events are decoded or copied; for a
        JSONL shard the events are parsed and packed (same result,
        without the zero-copy win).  Verification per ``verify`` matches
        :meth:`shard_dataset`: content fingerprint, vectorized event
        validation, and header-vs-manifest checks.
        """
        info = self.manifest.shards[index]
        path = self.root / info.path
        if self.verify:
            try:
                digest = _sha256_file(path)
            except OSError as exc:
                raise TraceError(f"cannot read shard {path}: {exc}") from exc
            if digest != info.sha256:
                raise TraceError(
                    f"shard {info.path} content fingerprint mismatch "
                    f"(expected {info.sha256[:12]}…, got {digest[:12]}…); "
                    "the file was corrupted or replaced"
                )
        from .binio import is_binary_trace, open_columns

        if is_binary_trace(path):
            _, columns, _ = open_columns(path, mmap=True)
            if self.verify:
                try:
                    validate_columns(
                        columns.events,
                        n_machines=columns.n_machines,
                        span=columns.span,
                    )
                except TraceError as exc:
                    raise TraceError(f"{path}: {exc}") from exc
        else:
            columns = EventColumns.from_dataset(load_dataset(path))
        if self.verify:
            if columns.n_machines != info.n_machines:
                raise TraceError(
                    f"shard {info.path} holds {columns.n_machines} machines, "
                    f"manifest says {info.n_machines}"
                )
            if (
                columns.span != self.span
                or columns.start_weekday != self.start_weekday
            ):
                raise TraceError(
                    f"shard {info.path} span/start_weekday disagrees with "
                    "the manifest"
                )
        return columns

    def iter_shards(self) -> Iterator[tuple[ShardInfo, TraceDataset]]:
        """Yield ``(info, shard_dataset)`` one shard at a time."""
        for i in range(self.n_shards):
            yield self.manifest.shards[i], self.shard_dataset(i)

    # -- whole-fleet view -----------------------------------------------------

    def load_full(self) -> TraceDataset:
        """Materialize the whole fleet as one monolithic dataset.

        The result equals the dataset the shards were split from (or the
        monolithic generation of the same config) exactly, including
        metadata and hourly load.  Memory scales with the fleet — use
        :meth:`iter_shards` plus the accumulators for large fleets.
        """
        events: list[UnavailabilityEvent] = []
        hourly_rows: list[Optional[np.ndarray]] = []
        for info, shard in self.iter_shards():
            events.extend(
                _relocate_events(
                    shard.events, 0, shard.n_machines, info.machine_lo
                )
            )
            hourly_rows.append(shard.hourly_load)
        hourly = None
        if hourly_rows and all(r is not None for r in hourly_rows):
            hourly = np.vstack(hourly_rows)
        return TraceDataset(
            events=events,
            n_machines=self.n_machines,
            span=self.span,
            start_weekday=self.start_weekday,
            hourly_load=hourly,
            metadata=dict(self.metadata),
        )


def open_shards(
    path: Union[str, Path], *, verify: bool = True
) -> ShardedTraceDataset:
    """Open a shard directory (or its ``manifest.json``) for reading."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME if path.is_dir() else path
    manifest = ShardManifest.load(manifest_path)
    return ShardedTraceDataset(manifest, manifest_path.parent, verify=verify)


def is_shard_store(path: Union[str, Path]) -> bool:
    """True when ``path`` names a shard directory or shard manifest file."""
    path = Path(path)
    if path.is_dir():
        return (path / MANIFEST_NAME).is_file()
    return path.name == MANIFEST_NAME and path.is_file()


def write_shards(
    dataset: TraceDataset,
    out_dir: Union[str, Path],
    n_shards: int,
    *,
    dataset_cache_key: Optional[str] = None,
    config_fingerprint: Optional[str] = None,
    format: str = "jsonl",
) -> ShardManifest:
    """Split an in-memory dataset into a shard directory.

    Returns the written manifest.  ``open_shards(out_dir).load_full()``
    round-trips to a dataset that compares equal to ``dataset``.
    """
    _check_format(format)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    infos = []
    for index, (lo, hi) in enumerate(
        partition_machines(dataset.n_machines, n_shards)
    ):
        shard = dataset_shard(dataset, index, lo, hi)
        name = _shard_name(index, format)
        path = out_dir / name
        _atomic_save(shard, path, format)
        infos.append(
            ShardInfo(
                index=index,
                path=name,
                machine_lo=lo,
                machine_hi=hi,
                n_events=len(shard),
                sha256=_sha256_file(path),
                format=format,
            )
        )
    manifest = ShardManifest(
        n_machines=dataset.n_machines,
        span=dataset.span,
        start_weekday=dataset.start_weekday,
        shards=tuple(infos),
        metadata=dict(dataset.metadata),
        config_fingerprint=config_fingerprint,
        dataset_cache_key=dataset_cache_key,
    )
    manifest.save(out_dir)
    return manifest


def _shard_name(index: int, fmt: str = "jsonl") -> str:
    return f"shard-{index:05d}.{'bin' if fmt == 'binary' else 'jsonl'}"


def convert_shards(
    source: "ShardedTraceDataset",
    out_dir: Union[str, Path],
    format: str,
    *,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ShardManifest:
    """Re-encode a shard store in another trace format.

    Each shard is loaded, re-saved in ``format``, and re-fingerprinted;
    the manifest's fleet frame — machine ranges, metadata (including any
    quarantine record), config fingerprint, and cache keys — carries
    over unchanged, so provenance survives conversion.  The converted
    store analyzes byte-identically to the source.
    """
    _check_format(format)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    src = source.manifest
    infos: list[ShardInfo] = []
    for index, info in enumerate(src.shards):
        shard = source.shard_dataset(index)
        name = _shard_name(index, format)
        path = out_dir / name
        _atomic_save(shard, path, format)
        infos.append(
            ShardInfo(
                index=info.index,
                path=name,
                machine_lo=info.machine_lo,
                machine_hi=info.machine_hi,
                n_events=info.n_events,
                sha256=_sha256_file(path),
                cache_key=info.cache_key,
                format=format,
            )
        )
        if progress is not None:
            progress(index + 1, src.n_shards)
    manifest = ShardManifest(
        n_machines=src.n_machines,
        span=src.span,
        start_weekday=src.start_weekday,
        shards=tuple(infos),
        metadata=dict(src.metadata),
        config_fingerprint=src.config_fingerprint,
        dataset_cache_key=src.dataset_cache_key,
    )
    manifest.save(out_dir)
    logger.info(
        "converted %d shard(s) to %s format in %s",
        manifest.n_shards,
        format,
        out_dir,
    )
    return manifest


# -- sharded generation ---------------------------------------------------


def _generate_shard(
    payload: tuple[FgcsConfig, int, int, int, str, bool, str],
) -> tuple[int, str, Optional[str], Optional[dict]]:
    """Generate one shard and write its file — the parallel work unit.

    Returns ``(n_events, sha256, cache_key, telemetry)``.  Runs entirely
    in the worker: per-machine generation draws from the same
    global-machine-id random streams as monolithic generation, so the
    shard's events are exactly the monolithic dataset's slice — the
    columnar worker writes shard-local machine ids directly into the
    event rows, so no relocation pass or event objects exist here.  When
    the execution config has a cache directory, the shard columns are
    cached under a per-shard key (read and written here, in the worker);
    injected ``cache.read_corrupt`` / ``cache.write_fail`` faults degrade
    exactly as they do for the monolithic cache.

    ``telemetry`` carries the shard's summed synth/detect seconds and rng
    draw counters back to the parent (a pool worker's own registry is a
    disabled no-op); it is ``None`` on a cache hit.
    """
    from ..obs.metrics import get_registry
    from .generate import _generate_machine_columns, dataset_metadata
    from .records import EVENT_DTYPE, EventColumns

    config, index, lo, hi, out_dir, keep_hourly_load, fmt = payload
    registry = get_registry()
    execution = config.execution
    cache = None
    key: Optional[str] = None
    columns = None
    telemetry: Optional[dict] = None
    if execution.cache_enabled:
        from ..parallel.cache import DatasetCache

        cache = DatasetCache(execution.cache_dir, fault_plan=execution.fault_plan)
        key = shard_cache_key(config, lo, hi, keep_hourly_load=keep_hourly_load)
        with registry.span("shard.cache_lookup"):
            columns = cache.get_columns(key)
    if columns is None:
        from ..units import HOUR

        n_hours = int(config.testbed.duration // HOUR)
        row_blocks: list[np.ndarray] = []
        hourly = np.full((hi - lo, n_hours), np.nan) if keep_hourly_load else None
        telemetry = {"generate.synth_seconds": 0.0, "generate.detect_seconds": 0.0}
        for mid in range(lo, hi):
            rows, hourly_row, counters, synth_seconds, detect_seconds = (
                _generate_machine_columns(
                    (config, mid, mid - lo, keep_hourly_load, True)
                )
            )
            row_blocks.append(rows)
            telemetry["generate.synth_seconds"] += synth_seconds
            telemetry["generate.detect_seconds"] += detect_seconds
            for name, n in (counters or {}).items():
                telemetry[name] = telemetry.get(name, 0) + n
            if hourly is not None and hourly_row is not None:
                hourly[mid - lo, :] = hourly_row
        columns = EventColumns(
            events=(
                np.concatenate(row_blocks)
                if row_blocks
                else np.empty(0, dtype=EVENT_DTYPE)
            ),
            n_machines=hi - lo,
            span=config.testbed.duration,
            start_weekday=config.testbed.start_weekday,
            metadata=_shard_metadata(
                dataset_metadata(config), index, lo, hi,
                config.testbed.n_machines,
            ),
            hourly_load=hourly,
        )
        if cache is not None and key is not None:
            with registry.span("shard.cache_write"):
                cache.put_columns(key, columns)
    path = Path(out_dir) / _shard_name(index, fmt)
    with registry.span("shard.encode"):
        _atomic_save_columns(columns, path, fmt)
    return len(columns), _sha256_file(path), key, telemetry


def _placeholder_shard(
    config: FgcsConfig, index: int, lo: int, hi: int, keep_hourly_load: bool
) -> TraceDataset:
    """An event-free shard standing in for a quarantined machine range.

    Mirrors monolithic quarantine semantics: the machines' events are
    missing and their hourly-load rows stay NaN, but the fleet remains
    tileable so analyses degrade instead of failing.
    """
    from ..units import HOUR

    from .generate import dataset_metadata

    n_hours = int(config.testbed.duration // HOUR)
    hourly = np.full((hi - lo, n_hours), np.nan) if keep_hourly_load else None
    return TraceDataset(
        events=[],
        n_machines=hi - lo,
        span=config.testbed.duration,
        start_weekday=config.testbed.start_weekday,
        hourly_load=hourly,
        metadata=_shard_metadata(
            dataset_metadata(config), index, lo, hi, config.testbed.n_machines
        ),
    )


def generate_shards(
    config: Optional[FgcsConfig],
    out_dir: Union[str, Path],
    n_shards: int,
    *,
    keep_hourly_load: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    execution: Optional[ExecutionConfig] = None,
    format: str = "jsonl",
) -> ShardManifest:
    """Generate a fleet directly into a shard directory.

    Each shard is one parallel work unit (unit keys
    ``generate.shard:<index>``): the worker generates its machine range —
    drawing from the same per-machine random streams as
    :func:`~repro.traces.generate.generate_dataset`, so outputs are
    bit-identical to splitting a monolithic generation — writes the shard
    file atomically, and returns its event count and content
    fingerprint.  Memory in the parent stays at bookkeeping size; each
    worker holds one machine's samples plus its shard's events.

    Failed shards retry per ``execution``; a shard whose retries are
    exhausted is quarantined — an event-free placeholder file keeps the
    fleet tileable and the machine range is recorded in the manifest's
    ``metadata["quarantined_machines"]``.
    """
    from ..faults import QUARANTINED
    from ..obs.metrics import get_registry
    from ..parallel.backend import get_backend
    from ..parallel.cache import config_fingerprint, dataset_cache_key
    from .generate import dataset_metadata

    _check_format(format)
    config = config or FgcsConfig()
    execution = execution if execution is not None else config.execution
    if execution is not config.execution:
        config = config.with_execution(execution)
    registry = get_registry()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    ranges = partition_machines(config.testbed.n_machines, n_shards)
    if len(ranges) != n_shards:
        logger.warning(
            "clamping n_shards from %d to %d (one machine per shard minimum)",
            n_shards,
            len(ranges),
        )
    logger.info(
        "generating sharded fleet: %d machines × %d days in %d shard(s) "
        "(seed %d, jobs=%d)",
        config.testbed.n_machines,
        config.testbed.n_days,
        len(ranges),
        config.seed,
        execution.jobs,
    )
    backend = get_backend(execution)
    faults = execution.fault_context("generate.shard", quarantine=True)
    payloads = [
        (config, index, lo, hi, str(out_dir), keep_hourly_load, format)
        for index, (lo, hi) in enumerate(ranges)
    ]
    with registry.span("generate.shards"):
        results = backend.map(
            _generate_shard, payloads, progress=progress, faults=faults
        )

    infos: list[ShardInfo] = []
    quarantined: list[int] = []
    for index, ((lo, hi), result) in enumerate(zip(ranges, results)):
        if result is QUARANTINED:
            quarantined.extend(range(lo, hi))
            placeholder = _placeholder_shard(
                config, index, lo, hi, keep_hourly_load
            )
            path = out_dir / _shard_name(index, format)
            _atomic_save(placeholder, path, format)
            n_events, digest, key = 0, _sha256_file(path), None
        else:
            n_events, digest, key, telemetry = result
            if telemetry and registry.enabled:
                for name, value in telemetry.items():
                    if name.startswith("generate."):
                        registry.observe(name, value)
                    else:
                        registry.inc(name, value)
        registry.inc("shards.written")
        registry.observe("shards.events", n_events)
        infos.append(
            ShardInfo(
                index=index,
                path=_shard_name(index, format),
                machine_lo=lo,
                machine_hi=hi,
                n_events=n_events,
                sha256=digest,
                cache_key=key,
                format=format,
            )
        )

    metadata = dataset_metadata(config)
    if quarantined:
        metadata["quarantined_machines"] = quarantined
        logger.error(
            "partial fleet: %d machine(s) quarantined after retries (ids %s)",
            len(quarantined),
            quarantined,
        )
    manifest = ShardManifest(
        n_machines=config.testbed.n_machines,
        span=config.testbed.duration,
        start_weekday=config.testbed.start_weekday,
        shards=tuple(infos),
        metadata=metadata,
        config_fingerprint=config_fingerprint(config),
        dataset_cache_key=dataset_cache_key(
            config, keep_hourly_load=keep_hourly_load
        ),
    )
    manifest.save(out_dir)
    registry.record(
        "shards",
        phase="generate",
        count=manifest.n_shards,
        machines=manifest.n_machines,
        events=manifest.n_events,
        quarantined=len(quarantined),
    )
    logger.info(
        "wrote %d events across %d shard(s) to %s",
        manifest.n_events,
        manifest.n_shards,
        out_dir,
    )
    return manifest
