"""Trace persistence: JSONL (lossless, with metadata) and CSV (events only).

JSONL layout: the first line is a header object (schema version, span,
machine count, start weekday, metadata, optional hourly-load array); every
further line is one :class:`~repro.traces.records.EventRecord`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import TraceError
from .dataset import TraceDataset
from .records import EventRecord

__all__ = ["save_dataset", "load_dataset", "save_events_csv", "load_events_csv"]

SCHEMA_VERSION = 1

PathLike = Union[str, Path]


def save_dataset(dataset: TraceDataset, path: PathLike) -> None:
    """Write a dataset to a JSONL file (``.jsonl`` suggested)."""
    path = Path(path)
    header = {
        "schema": SCHEMA_VERSION,
        "kind": "fgcs-trace",
        "n_machines": dataset.n_machines,
        "span": dataset.span,
        "start_weekday": dataset.start_weekday,
        "metadata": dataset.metadata,
        "hourly_load": (
            None
            if dataset.hourly_load is None
            else [[_none_if_nan(x) for x in row] for row in dataset.hourly_load]
        ),
    }
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for ev in dataset.events:
            fh.write(json.dumps(EventRecord.from_event(ev).to_dict()) + "\n")


def load_dataset(path: PathLike) -> TraceDataset:
    """Read a dataset from a JSONL file written by :func:`save_dataset`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise TraceError(f"{path}: empty trace file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: bad header: {exc}") from exc
        if header.get("kind") != "fgcs-trace":
            raise TraceError(f"{path}: not an FGCS trace file")
        if header.get("schema") != SCHEMA_VERSION:
            raise TraceError(
                f"{path}: unsupported schema {header.get('schema')!r}"
            )
        events = []
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                rec = EventRecord.from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise TraceError(f"{path}:{lineno}: bad event record: {exc}") from exc
            events.append(rec.to_event())
    hourly = header.get("hourly_load")
    hourly_arr = None
    if hourly is not None:
        hourly_arr = np.array(
            [[np.nan if x is None else x for x in row] for row in hourly],
            dtype=np.float64,
        )
    return TraceDataset(
        events=events,
        n_machines=int(header["n_machines"]),
        span=float(header["span"]),
        start_weekday=int(header.get("start_weekday", 0)),
        hourly_load=hourly_arr,
        metadata=dict(header.get("metadata", {})),
    )


def save_events_csv(dataset: TraceDataset, path: PathLike) -> None:
    """Write the event table as CSV (for spreadsheets/other tools)."""
    path = Path(path)
    fields = ["machine_id", "start", "end", "state", "mean_host_load", "mean_free_mb"]
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        for ev in dataset.events:
            writer.writerow(EventRecord.from_event(ev).to_dict())


def load_events_csv(
    path: PathLike, *, n_machines: int, span: float, start_weekday: int = 0
) -> TraceDataset:
    """Read an event CSV back into a dataset (metadata must be supplied)."""
    path = Path(path)
    events = []
    with path.open("r", newline="", encoding="utf-8") as fh:
        for row in csv.DictReader(fh):
            cleaned = {k: (None if v == "" else v) for k, v in row.items()}
            events.append(EventRecord.from_dict(cleaned).to_event())
    return TraceDataset(
        events=events,
        n_machines=n_machines,
        span=span,
        start_weekday=start_weekday,
    )


def _none_if_nan(x: float) -> float | None:
    return None if np.isnan(x) else float(x)
