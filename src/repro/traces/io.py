"""Trace persistence: JSONL and binary columnar (lossless), CSV (events only).

Two lossless on-disk formats carry a full dataset (see
``docs/formats.md``):

* **jsonl** — the first line is a header object (schema version, span,
  machine count, start weekday, metadata, optional hourly-load array);
  every further line is one :class:`~repro.traces.records.EventRecord`.
  Human-greppable, diff-friendly, the interchange format.
* **binary** — the ``fgcs-bin`` columnar format of
  :mod:`repro.traces.binio`: the event table as one packed structured
  array plus a compact JSON header, read zero-copy.  The performance
  format for fleet-scale pipelines.

:func:`load_dataset` auto-detects the format by magic bytes, so readers
never need to be told which they were handed.  :func:`save_dataset`
takes ``format=`` explicitly or infers ``binary`` from a ``.bin`` /
``.fgcsbin`` suffix.  Both directions report I/O telemetry — bytes and
encode/decode timings per format — on the ambient metrics registry
(``io.bytes_read.<fmt>`` / ``io.bytes_written.<fmt>`` counters,
``io.decode_seconds.<fmt>`` / ``io.encode_seconds.<fmt>`` histograms),
surfaced in the run manifest's ``io`` section.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..errors import TraceError
from ..obs.metrics import get_registry
from .dataset import TraceDataset
from .records import EventRecord

__all__ = [
    "TRACE_FORMATS",
    "detect_format",
    "save_columns",
    "save_dataset",
    "load_dataset",
    "save_events_csv",
    "load_events_csv",
]

SCHEMA_VERSION = 1

#: The lossless dataset formats ``save_dataset`` accepts.
TRACE_FORMATS = ("jsonl", "binary")

#: File suffixes that imply the binary format when ``format`` is omitted.
_BINARY_SUFFIXES = (".bin", ".fgcsbin")

PathLike = Union[str, Path]


def _resolve_format(path: Path, format: Optional[str]) -> str:
    if format is None:
        return "binary" if path.suffix.lower() in _BINARY_SUFFIXES else "jsonl"
    if format not in TRACE_FORMATS:
        raise TraceError(
            f"unknown trace format {format!r} (expected one of {TRACE_FORMATS})"
        )
    return format


def detect_format(path: PathLike) -> str:
    """``"binary"`` or ``"jsonl"`` by the file's leading magic bytes."""
    from .binio import is_binary_trace

    return "binary" if is_binary_trace(path) else "jsonl"


def save_dataset(
    dataset: TraceDataset, path: PathLike, *, format: Optional[str] = None
) -> None:
    """Write a dataset losslessly in the given (or suffix-implied) format."""
    path = Path(path)
    fmt = _resolve_format(path, format)
    registry = get_registry()
    with registry.timer(f"io.encode_seconds.{fmt}"):
        if fmt == "binary":
            from .binio import save_dataset_binary

            save_dataset_binary(dataset, path)
        else:
            _save_dataset_jsonl(dataset, path)
    if registry.enabled:
        registry.inc(f"io.bytes_written.{fmt}", path.stat().st_size)


def save_columns(columns, path: PathLike, *, format: Optional[str] = None) -> None:
    """Write an :class:`~repro.traces.records.EventColumns` unit losslessly.

    The column-native twin of :func:`save_dataset`: same formats, same
    telemetry, byte-identical output to saving the equivalent dataset —
    but no event objects are ever built, which is what lets the columnar
    generation pipeline stay object-free from sampling to disk.
    """
    path = Path(path)
    fmt = _resolve_format(path, format)
    registry = get_registry()
    with registry.timer(f"io.encode_seconds.{fmt}"):
        if fmt == "binary":
            from .binio import save_columns_binary

            save_columns_binary(columns, path)
        else:
            _save_columns_jsonl(columns, path)
    if registry.enabled:
        registry.inc(f"io.bytes_written.{fmt}", path.stat().st_size)


def _save_dataset_jsonl(dataset: TraceDataset, path: Path) -> None:
    header = {
        "schema": SCHEMA_VERSION,
        "kind": "fgcs-trace",
        "n_machines": dataset.n_machines,
        "span": dataset.span,
        "start_weekday": dataset.start_weekday,
        "metadata": dataset.metadata,
        "hourly_load": (
            None
            if dataset.hourly_load is None
            else [[_none_if_nan(x) for x in row] for row in dataset.hourly_load]
        ),
    }
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for ev in dataset.events:
            fh.write(json.dumps(EventRecord.from_event(ev).to_dict()) + "\n")


#: On-disk state codes back to the JSONL state strings.
_CODE_TO_STATE_STR = {3: "S3", 4: "S4", 5: "S5"}


def _save_columns_jsonl(columns, path: Path) -> None:
    """``_save_dataset_jsonl`` fed from an event-column table.

    Produces byte-identical output: the header and per-row dicts carry the
    same keys in the same order, ``.tolist()`` yields the same native
    Python scalars ``EventRecord`` would hold (so ``json.dumps`` renders
    identical shortest-repr floats), and NaN means become ``null``.
    """
    import math

    hourly = columns.hourly_load
    header = {
        "schema": SCHEMA_VERSION,
        "kind": "fgcs-trace",
        "n_machines": columns.n_machines,
        "span": columns.span,
        "start_weekday": columns.start_weekday,
        "metadata": columns.metadata,
        "hourly_load": (
            None
            if hourly is None
            else [[_none_if_nan(x) for x in row] for row in hourly]
        ),
    }
    events = columns.events
    states = [_CODE_TO_STATE_STR.get(int(c)) for c in events["state"].tolist()]
    if None in states:
        raise TraceError("invalid failure-state code in event columns")
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for mid, start, end, state, load, mb in zip(
            events["machine_id"].tolist(),
            events["start"].tolist(),
            events["end"].tolist(),
            states,
            events["mean_host_load"].tolist(),
            events["mean_free_mb"].tolist(),
        ):
            row = {
                "machine_id": mid,
                "start": start,
                "end": end,
                "state": state,
                "mean_host_load": None if math.isnan(load) else load,
                "mean_free_mb": None if math.isnan(mb) else mb,
            }
            fh.write(json.dumps(row) + "\n")


def load_dataset(path: PathLike) -> TraceDataset:
    """Read a dataset written by :func:`save_dataset`, either format.

    The format is detected from the file's magic bytes, never from its
    name, so renamed or cached files always load correctly.
    """
    path = Path(path)
    from .binio import is_binary_trace, load_dataset_binary

    registry = get_registry()
    fmt = "binary" if is_binary_trace(path) else "jsonl"
    with registry.timer(f"io.decode_seconds.{fmt}"):
        if fmt == "binary":
            dataset = load_dataset_binary(path)
        else:
            dataset = _load_dataset_jsonl(path)
    if registry.enabled:
        registry.inc(f"io.bytes_read.{fmt}", path.stat().st_size)
    return dataset


def _load_dataset_jsonl(path: Path) -> TraceDataset:
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise TraceError(f"{path}: empty trace file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: bad header: {exc}") from exc
        if header.get("kind") != "fgcs-trace":
            raise TraceError(f"{path}: not an FGCS trace file")
        if header.get("schema") != SCHEMA_VERSION:
            raise TraceError(
                f"{path}: unsupported schema {header.get('schema')!r}"
            )
        events = []
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                rec = EventRecord.from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise TraceError(
                    f"{path}:{lineno}: bad event record: {exc}: "
                    f"offending line {_snippet(line)}"
                ) from exc
            events.append(rec.to_event())
    hourly = header.get("hourly_load")
    hourly_arr = None
    if hourly is not None:
        hourly_arr = np.array(
            [[np.nan if x is None else x for x in row] for row in hourly],
            dtype=np.float64,
        )
    return TraceDataset(
        events=events,
        n_machines=int(header["n_machines"]),
        span=float(header["span"]),
        start_weekday=int(header.get("start_weekday", 0)),
        hourly_load=hourly_arr,
        metadata=dict(header.get("metadata", {})),
    )


def _snippet(line: str, limit: int = 120) -> str:
    """The offending line, truncated so error messages stay one screen."""
    return repr(line if len(line) <= limit else line[: limit - 1] + "…")


def save_events_csv(dataset: TraceDataset, path: PathLike) -> None:
    """Write the event table as CSV (for spreadsheets/other tools)."""
    path = Path(path)
    fields = ["machine_id", "start", "end", "state", "mean_host_load", "mean_free_mb"]
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        for ev in dataset.events:
            writer.writerow(EventRecord.from_event(ev).to_dict())


def load_events_csv(
    path: PathLike, *, n_machines: int, span: float, start_weekday: int = 0
) -> TraceDataset:
    """Read an event CSV back into a dataset (metadata must be supplied)."""
    path = Path(path)
    events = []
    with path.open("r", newline="", encoding="utf-8") as fh:
        for row in csv.DictReader(fh):
            cleaned = {k: (None if v == "" else v) for k, v in row.items()}
            events.append(EventRecord.from_dict(cleaned).to_event())
    return TraceDataset(
        events=events,
        n_machines=n_machines,
        span=span,
        start_weekday=start_weekday,
    )


def _none_if_nan(x: float) -> float | None:
    return None if np.isnan(x) else float(x)
