"""Trace dataset sanity checks.

Catches malformed datasets early: overlapping events, out-of-range values,
impossible durations, URR inconsistencies.  Returns a list of human-readable
problems (empty = valid); ``strict=True`` raises instead.
"""

from __future__ import annotations

from ..core.states import AvailState
from ..errors import TraceError
from ..units import DAY
from .dataset import TraceDataset

__all__ = ["validate_dataset"]

#: An unavailability outliving this is suspicious even for HW failures.
_MAX_PLAUSIBLE_EVENT: float = 7 * DAY


def validate_dataset(dataset: TraceDataset, *, strict: bool = False) -> list[str]:
    """Check internal consistency; returns problem descriptions."""
    problems: list[str] = []

    for mid in range(dataset.n_machines):
        evs = dataset.events_for(mid)
        for a, b in zip(evs, evs[1:]):
            if b.start < a.end - 1e-9:
                problems.append(
                    f"machine {mid}: overlapping events at {a.end:.0f}/{b.start:.0f}"
                )

    for e in dataset.events:
        if e.duration > _MAX_PLAUSIBLE_EVENT:
            problems.append(
                f"machine {e.machine_id}: implausible {e.state.value} duration "
                f"{e.duration / DAY:.1f} days at t={e.start:.0f}"
            )
        if e.state is not AvailState.S5:
            if not (e.mean_host_load == e.mean_host_load):  # NaN check
                problems.append(
                    f"machine {e.machine_id}: UEC event without load reading "
                    f"at t={e.start:.0f}"
                )
            elif e.state is AvailState.S3 and e.mean_host_load < 0.5:
                problems.append(
                    f"machine {e.machine_id}: S3 event with mean load "
                    f"{e.mean_host_load:.2f} at t={e.start:.0f}"
                )

    if dataset.hourly_load is not None:
        hl = dataset.hourly_load
        finite = hl[hl == hl]
        if finite.size and (finite.min() < -1e-9 or finite.max() > 1 + 1e-9):
            problems.append("hourly_load values outside [0, 1]")

    if strict and problems:
        raise TraceError("; ".join(problems))
    return problems
