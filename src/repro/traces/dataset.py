"""The in-memory trace dataset with the slicing the analyses need."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.events import AvailabilityInterval, UnavailabilityEvent
from ..core.intervals import availability_intervals
from ..core.states import AvailState
from ..errors import TraceError
from ..units import DAY, HOUR, is_weekend

__all__ = ["TraceDataset"]


def _float_eq(a: float, b: float) -> bool:
    """Exact float equality with NaN == NaN (NaN marks 'unobserved')."""
    return a == b or (a != a and b != b)


@dataclass
class TraceDataset:
    """Unavailability events for a testbed over a traced span.

    Attributes
    ----------
    events:
        All events, sorted by (machine_id, start).
    n_machines:
        Machines are ids ``0 .. n_machines - 1``.
    span:
        Traced duration in seconds starting at time 0 (midnight, day 0).
    start_weekday:
        Day-of-week of day 0 (0 = Monday).
    hourly_load:
        Optional ``(n_machines, n_hours)`` mean host load per wall-clock
        hour; prediction baselines use it as a feature signal.
    """

    events: list[UnavailabilityEvent]
    n_machines: int
    span: float
    start_weekday: int = 0
    hourly_load: Optional[np.ndarray] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_machines <= 0 or self.span <= 0:
            raise TraceError("dataset needs n_machines > 0 and span > 0")
        self.events = sorted(self.events, key=lambda e: (e.machine_id, e.start))
        for e in self.events:
            if not 0 <= e.machine_id < self.n_machines:
                raise TraceError(f"event machine_id {e.machine_id} out of range")
            if e.start < 0 or e.end > self.span + 1e-6:
                raise TraceError(
                    f"event [{e.start}, {e.end}] outside span [0, {self.span}]"
                )
        if self.hourly_load is not None:
            expect = (self.n_machines, int(self.span // HOUR))
            if tuple(self.hourly_load.shape) != expect:
                raise TraceError(
                    f"hourly_load shape {self.hourly_load.shape} != {expect}"
                )

    @classmethod
    def from_validated(
        cls,
        events: list[UnavailabilityEvent],
        *,
        n_machines: int,
        span: float,
        start_weekday: int = 0,
        hourly_load: Optional[np.ndarray] = None,
        metadata: Optional[dict] = None,
    ) -> "TraceDataset":
        """Trusted constructor for pre-sorted, pre-validated events.

        Skips ``__post_init__``'s re-sort and per-event range checks, so
        the caller must already have proven what they enforce — in
        practice that means the events came out of a column table that
        passed :func:`repro.traces.records.validate_columns` (which
        checks ids, spans, and ``(machine_id, start)`` order vectorized).
        This is the binary loader's fast path; everything else should use
        the ordinary constructor.
        """
        if n_machines <= 0 or span <= 0:
            raise TraceError("dataset needs n_machines > 0 and span > 0")
        ds = cls.__new__(cls)
        ds.events = events
        ds.n_machines = n_machines
        ds.span = span
        ds.start_weekday = start_weekday
        ds.hourly_load = hourly_load
        ds.metadata = {} if metadata is None else metadata
        return ds

    # -- basic access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def n_days(self) -> int:
        return int(self.span // DAY)

    @property
    def machine_days(self) -> float:
        """Total machine-days of trace (the paper reports ~1800)."""
        return self.n_machines * self.span / DAY

    def events_for(self, machine_id: int) -> list[UnavailabilityEvent]:
        """One machine's events, time-ordered."""
        return [e for e in self.events if e.machine_id == machine_id]

    def events_by_state(self, state: AvailState) -> list[UnavailabilityEvent]:
        return [e for e in self.events if e.state is state]

    # -- intervals ----------------------------------------------------------------

    def intervals_for(self, machine_id: int) -> list[AvailabilityInterval]:
        """One machine's availability intervals over the full span."""
        return availability_intervals(
            self.events_for(machine_id),
            span_start=0.0,
            span_end=self.span,
            machine_id=machine_id,
        )

    def all_intervals(self, *, include_censored: bool = False) -> list[
        AvailabilityInterval
    ]:
        """Availability intervals of every machine."""
        out: list[AvailabilityInterval] = []
        for m in range(self.n_machines):
            for iv in self.intervals_for(m):
                if include_censored or not iv.censored:
                    out.append(iv)
        return out

    # -- day-type helpers -------------------------------------------------------------

    def is_weekend_time(self, t: float) -> bool:
        return is_weekend(t, self.start_weekday)

    def weekday_indices(self) -> list[int]:
        """Day numbers that are weekdays."""
        return [d for d in range(self.n_days) if (d + self.start_weekday) % 7 < 5]

    def weekend_indices(self) -> list[int]:
        return [d for d in range(self.n_days) if (d + self.start_weekday) % 7 >= 5]

    # -- split -------------------------------------------------------------------------

    def slice_days(self, first_day: int, last_day: int) -> "TraceDataset":
        """A sub-dataset covering days ``[first_day, last_day)``.

        Event times are shifted so the slice starts at 0, and the start
        weekday is adjusted; events spanning the boundary are clipped.
        """
        if not 0 <= first_day < last_day <= self.n_days:
            raise TraceError(f"bad day range [{first_day}, {last_day})")
        t0, t1 = first_day * DAY, last_day * DAY
        events = []
        for e in self.events:
            if e.end <= t0 or e.start >= t1:
                continue
            start = max(e.start, t0) - t0
            end = min(e.end, t1) - t0
            events.append(
                UnavailabilityEvent(
                    machine_id=e.machine_id,
                    start=start,
                    end=end,
                    state=e.state,
                    mean_host_load=e.mean_host_load,
                    mean_free_mb=e.mean_free_mb,
                )
            )
        hourly = None
        if self.hourly_load is not None:
            h0, h1 = first_day * 24, last_day * 24
            hourly = self.hourly_load[:, h0:h1].copy()
        return TraceDataset(
            events=events,
            n_machines=self.n_machines,
            span=t1 - t0,
            start_weekday=(self.start_weekday + first_day) % 7,
            hourly_load=hourly,
            metadata=dict(self.metadata),
        )

    # -- equality -------------------------------------------------------------------------

    def equals(self, other: "TraceDataset") -> bool:
        """Exact equality: same events, shape, metadata, and hourly load.

        Plain dataclass ``==`` is unusable here because the optional
        ``hourly_load`` array has no unambiguous truth value; this compares
        it with :func:`numpy.array_equal` treating NaNs as equal (NaN marks
        hours the machine was down).  Used by the determinism tests to
        assert ``jobs=N`` output matches ``jobs=1`` and cache round-trips.
        """
        if not isinstance(other, TraceDataset):
            return False
        if (
            self.n_machines != other.n_machines
            or self.span != other.span
            or self.start_weekday != other.start_weekday
            or self.metadata != other.metadata
            or len(self.events) != len(other.events)
        ):
            return False
        for a, b in zip(self.events, other.events):
            if (
                a.machine_id != b.machine_id
                or a.start != b.start
                or a.end != b.end
                or a.state is not b.state
                or not _float_eq(a.mean_host_load, b.mean_host_load)
                or not _float_eq(a.mean_free_mb, b.mean_free_mb)
            ):
                return False
        if (self.hourly_load is None) != (other.hourly_load is None):
            return False
        if self.hourly_load is not None:
            return bool(
                np.array_equal(self.hourly_load, other.hourly_load, equal_nan=True)
            )
        return True

    # -- summaries ------------------------------------------------------------------------

    def counts_by_cause(self, machine_id: Optional[int] = None) -> dict[str, int]:
        """Event counts by Table 2 cause, optionally for one machine."""
        counts = {"cpu": 0, "memory": 0, "revocation": 0}
        for e in self.events:
            if machine_id is not None and e.machine_id != machine_id:
                continue
            counts[e.cause] += 1
        return counts
