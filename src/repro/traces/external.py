"""Import external availability traces (Failure-Trace-Archive style).

The original study's traces were never published; public alternatives
(e.g. the Failure Trace Archive's desktop-grid datasets) distribute
per-node *event lists*: node id, event start, event stop, and a
component/type tag.  This module converts such lists into
:class:`~repro.traces.dataset.TraceDataset` objects so every analysis and
predictor in this library runs unchanged on real-world traces.

Expected CSV columns (header required, extra columns ignored):

``node_id,start,end,type``

* ``node_id`` — any hashable string; nodes are numbered in first-seen order;
* ``start``/``end`` — seconds (float) relative to the trace start, or any
  epoch as long as it is consistent (pass ``origin`` to rebase);
* ``type`` — mapped to a failure state via ``type_map`` (default:
  everything is machine unavailability, the only signal most public
  traces carry).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Union

from ..core.events import UnavailabilityEvent
from ..core.states import AvailState
from ..errors import TraceError
from .dataset import TraceDataset

__all__ = ["load_event_list_csv", "DEFAULT_TYPE_MAP"]

#: Default event-type mapping: public availability traces usually record
#: only node up/down transitions -> URR.
DEFAULT_TYPE_MAP: Mapping[str, AvailState] = {
    "": AvailState.S5,
    "unavailable": AvailState.S5,
    "down": AvailState.S5,
    "failure": AvailState.S5,
    "cpu": AvailState.S3,
    "contention": AvailState.S3,
    "memory": AvailState.S4,
}

PathLike = Union[str, Path]


def load_event_list_csv(
    path: PathLike,
    *,
    span: float | None = None,
    origin: float | None = None,
    start_weekday: int = 0,
    type_map: Mapping[str, AvailState] = DEFAULT_TYPE_MAP,
    clip_overlaps: bool = True,
) -> TraceDataset:
    """Read an FTA-style event-list CSV into a trace dataset.

    Parameters
    ----------
    path:
        CSV with at least ``node_id,start,end`` columns (``type`` optional).
    span:
        Traced span in seconds; default: the latest event end, rounded up
        to a whole day.
    origin:
        Subtract this from every timestamp (rebasing epoch times); default:
        the earliest event start, floored to a whole day.
    start_weekday:
        Weekday of day 0 after rebasing (0 = Monday).
    type_map:
        Maps the ``type`` column (lowercased) to failure states; unknown
        types raise.
    clip_overlaps:
        Public traces sometimes contain overlapping reports for a node;
        if True the later event is clipped to start at the earlier one's
        end (dropped if swallowed), else overlapping input raises.
    """
    path = Path(path)
    rows: list[tuple[str, float, float, str]] = []
    with path.open("r", newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or not {
            "node_id",
            "start",
            "end",
        }.issubset(set(reader.fieldnames)):
            raise TraceError(
                f"{path}: need header with node_id,start,end columns"
            )
        for lineno, row in enumerate(reader, start=2):
            try:
                rows.append(
                    (
                        str(row["node_id"]),
                        float(row["start"]),
                        float(row["end"]),
                        (row.get("type") or "").strip().lower(),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise TraceError(f"{path}:{lineno}: bad row: {exc}") from exc
    if not rows:
        raise TraceError(f"{path}: no events")

    day = 86400.0
    if origin is None:
        origin = (min(r[1] for r in rows) // day) * day
    node_index: dict[str, int] = {}
    events_by_node: dict[int, list[UnavailabilityEvent]] = {}
    for node_id, start, end, typ in rows:
        if typ not in type_map:
            raise TraceError(f"unknown event type {typ!r}; extend type_map")
        if end <= start:
            continue  # zero-length reports are noise in public traces
        mid = node_index.setdefault(node_id, len(node_index))
        events_by_node.setdefault(mid, []).append(
            UnavailabilityEvent(
                machine_id=mid,
                start=start - origin,
                end=end - origin,
                state=type_map[typ],
            )
        )

    events: list[UnavailabilityEvent] = []
    for mid, evs in events_by_node.items():
        evs.sort(key=lambda e: e.start)
        cursor = -1.0
        for e in evs:
            if e.start < cursor:
                if not clip_overlaps:
                    raise TraceError(
                        f"overlapping events for node {mid} at {e.start}"
                    )
                if e.end <= cursor:
                    continue  # swallowed entirely
                e = UnavailabilityEvent(
                    machine_id=e.machine_id,
                    start=cursor,
                    end=e.end,
                    state=e.state,
                    mean_host_load=e.mean_host_load,
                    mean_free_mb=e.mean_free_mb,
                )
            events.append(e)
            cursor = e.end

    if span is None:
        span = (max(e.end for e in events) // day + 1) * day
    return TraceDataset(
        events=events,
        n_machines=len(node_index),
        span=span,
        start_weekday=start_weekday,
        metadata={"source": str(path), "origin": origin},
    )
