"""Background resource sampler: a bounded time series of process vitals.

A :class:`ResourceSampler` is a daemon thread that periodically reads
this process's resource usage — resident set size, cumulative CPU time,
open file descriptors, and block I/O bytes — into an in-memory time
series, then snapshots it for the run manifest's ``resources`` section
(schema v6) and the Chrome-trace counter track.  It turns claims like
"the fleet analysis stays under a 256 MB RSS ceiling" from a benchmark
assertion into first-class evidence attached to every telemetered run.

Sources, in order of preference:

* ``/proc/self/status`` (``VmRSS``) and ``/proc/self/stat`` for current
  RSS and CPU time, ``/proc/self/fd`` for the descriptor count, and
  ``/proc/self/io`` for cumulative read/write bytes — all Linux;
* portable fallbacks where ``/proc`` is unavailable: peak RSS via
  ``resource.getrusage`` (a monotone stand-in for current RSS) and CPU
  time via ``time.process_time``; fd and I/O series are omitted.

The series is **bounded**: when the buffer reaches ``max_samples`` it is
decimated (every second sample dropped) and the sampling interval
doubles, so a run of any length keeps at most ``max_samples`` points
with uniform spacing — the standard trick for fixed-memory monitoring.

The sampler never touches run *results* — it only reads ``/proc`` — and
it is only started by the CLI when telemetry output was requested
(``--metrics-out`` / ``--trace-out``), preserving the zero-cost-when-
disabled contract.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

__all__ = ["ResourceSampler", "read_process_stats"]

#: Fields every sample carries (missing sources report ``None``).
SAMPLE_FIELDS = (
    "rss_bytes",
    "cpu_seconds",
    "open_fds",
    "read_bytes",
    "write_bytes",
)

_PAGE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
_CLK = os.sysconf("SC_CLK_TCK") if hasattr(os, "sysconf") else 100


def _proc_rss_bytes() -> Optional[int]:
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE
    except (OSError, ValueError, IndexError):
        return None


def _proc_cpu_seconds() -> Optional[float]:
    try:
        with open("/proc/self/stat", "rb") as fh:
            fields = fh.read().rsplit(b")", 1)[1].split()
        # utime + stime are fields 14/15 of stat; after stripping the
        # "pid (comm)" prefix they are at offsets 11 and 12.
        return (int(fields[11]) + int(fields[12])) / _CLK
    except (OSError, ValueError, IndexError):
        return None


def _proc_open_fds() -> Optional[int]:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def _proc_io_bytes() -> tuple[Optional[int], Optional[int]]:
    try:
        read_bytes = write_bytes = None
        with open("/proc/self/io", "rb") as fh:
            for line in fh:
                if line.startswith(b"read_bytes:"):
                    read_bytes = int(line.split(b":")[1])
                elif line.startswith(b"write_bytes:"):
                    write_bytes = int(line.split(b":")[1])
        return read_bytes, write_bytes
    except (OSError, ValueError):
        return None, None


def read_process_stats() -> dict:
    """One sample of this process's vitals (portable; ``None`` = unknown)."""
    rss = _proc_rss_bytes()
    if rss is None:
        from .worker import max_rss_bytes

        # No /proc: fall back to the peak RSS, which at least bounds the
        # current value and keeps the series monotone.
        rss = max_rss_bytes() or None
    cpu = _proc_cpu_seconds()
    if cpu is None:
        cpu = time.process_time()
    read_bytes, write_bytes = _proc_io_bytes()
    return {
        "rss_bytes": rss,
        "cpu_seconds": cpu,
        "open_fds": _proc_open_fds(),
        "read_bytes": read_bytes,
        "write_bytes": write_bytes,
    }


class ResourceSampler:
    """Daemon-thread sampler with a decimating, fixed-size buffer."""

    def __init__(
        self, interval: float = 0.05, max_samples: int = 512
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if max_samples < 8:
            raise ValueError("max_samples must be >= 8")
        self.interval = float(interval)
        self.max_samples = int(max_samples)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t: list[float] = []
        self._columns: dict[str, list] = {f: [] for f in SAMPLE_FIELDS}
        self._t0 = 0.0
        self.epoch_unix = 0.0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ResourceSampler":
        """Begin sampling (idempotent); takes an immediate first sample."""
        if self._thread is not None:
            return self
        self._t0 = time.perf_counter()
        self.epoch_unix = time.time()
        self._sample()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._sample()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling -------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        stats = read_process_stats()
        now = time.perf_counter() - self._t0
        with self._lock:
            self._t.append(round(now, 4))
            for f in SAMPLE_FIELDS:
                self._columns[f].append(stats[f])
            if len(self._t) >= self.max_samples:
                # Decimate: keep every second sample, double the interval.
                # The buffer stays bounded with uniform spacing for runs
                # of any length.
                self._t = self._t[::2]
                for f in SAMPLE_FIELDS:
                    self._columns[f] = self._columns[f][::2]
                self.interval *= 2.0

    # -- export ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._t)

    def snapshot(self) -> dict:
        """The bounded series plus peaks, JSON-ready for the manifest.

        Series whose source was unavailable for every sample (e.g.
        ``open_fds`` without ``/proc``) are omitted rather than emitted
        as columns of ``null``.
        """
        from .worker import max_rss_bytes

        with self._lock:
            t = list(self._t)
            columns = {f: list(v) for f, v in self._columns.items()}
        samples: dict = {"t_s": t}
        for f in SAMPLE_FIELDS:
            if any(v is not None for v in columns[f]):
                samples[f] = columns[f]
        peak: dict = {}
        for f in ("rss_bytes", "open_fds"):
            values = [v for v in columns[f] if v is not None]
            if values:
                peak[f] = max(values)
        cpu = [v for v in columns["cpu_seconds"] if v is not None]
        if cpu:
            peak["cpu_seconds"] = max(cpu)
        return {
            "interval_s": self.interval,
            "n_samples": len(t),
            "samples": samples,
            "peak": peak,
            "max_rss_bytes": max_rss_bytes(),
        }
