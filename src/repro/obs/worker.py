"""Cross-process telemetry capture: what a pool worker records per unit.

The parallel backends run work units in worker processes whose ambient
:class:`~repro.obs.metrics.MetricsRegistry` is the disabled default —
whatever a unit records there is lost.  This module closes that gap:

* :func:`capture_unit` runs one unit function under a fresh *enabled*
  registry installed as the worker's ambient one, wrapped in a root span
  named after the unit, and packages everything it recorded — spans,
  counters, raw histogram samples — plus the worker's resource peaks
  (max RSS via ``getrusage``, cumulative CPU seconds) into a picklable
  :class:`WorkerTelemetry`;
* the backends ship that object back to the parent alongside the unit's
  (untouched) result and call
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_worker` once the unit
  settles successfully, so retried units are counted exactly once;
* :data:`repro.obs.chrometrace` renders the merged per-pid lanes as a
  Chrome trace.

The capture honors both telemetry contracts: the unit's return value is
passed through untouched (byte-identical outputs, proven by the
neutrality differentials), and nothing here runs unless the *parent*
registry was enabled — library users with the disabled default pay only
the boolean check in the backend.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from .metrics import MetricsRegistry, use_registry

__all__ = [
    "WorkerTelemetry",
    "capture_unit",
    "cpu_seconds",
    "max_rss_bytes",
    "run_captured",
    "unit_label",
]


@dataclass
class WorkerTelemetry:
    """One unit's worth of telemetry recorded inside a worker process.

    Picklable and self-contained: ``epoch_unix`` anchors the span
    offsets (``start_s`` relative to the capture registry's epoch) to
    the host wall clock, so the parent can translate them onto its own
    timeline.  ``samples`` carries *raw* histogram observations (not
    summaries) so merged percentiles stay exact.
    """

    pid: int
    epoch_unix: float
    spans: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    samples: dict = field(default_factory=dict)
    #: Peak resident set of the worker process so far, bytes
    #: (``getrusage`` — process-lifetime maximum, not per-unit).
    max_rss_bytes: int = 0
    #: Cumulative CPU time (user+system) of the worker process, seconds.
    cpu_seconds: float = 0.0


def max_rss_bytes() -> int:
    """This process's peak resident set size in bytes (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def cpu_seconds() -> float:
    """Cumulative user+system CPU time of this process, seconds."""
    return time.process_time()


def unit_label(fn: Callable) -> str:
    """The root-span name for one work unit: ``unit:<function name>``."""
    return f"unit:{getattr(fn, '__name__', 'unit').lstrip('_')}"


def capture_unit(fn: Callable, item: Any, label: str) -> tuple[Any, WorkerTelemetry]:
    """Run ``fn(item)`` under a fresh enabled registry; return both.

    The returned value is exactly ``fn(item)`` — capture never touches
    it.  Everything the unit recorded on the ambient registry (spans
    nested under a root span named ``label``, counters, histogram
    samples) comes back in the :class:`WorkerTelemetry`, along with the
    process's resource peaks.  If ``fn`` raises, the exception
    propagates and no telemetry is returned — a failed attempt
    contributes nothing, which is what makes retry merging exactly-once.
    """
    registry = MetricsRegistry()
    with use_registry(registry):
        with registry.span(label):
            value = fn(item)
    snapshot_spans = registry.snapshot()["spans"]
    return value, WorkerTelemetry(
        pid=os.getpid(),
        epoch_unix=registry.epoch_unix,
        spans=snapshot_spans,
        counters=dict(registry._counters),
        samples={
            name: list(hist.samples)
            for name, hist in registry._histograms.items()
            if len(hist)
        },
        max_rss_bytes=max_rss_bytes(),
        cpu_seconds=cpu_seconds(),
    )


def run_captured(payload: tuple) -> tuple[Any, WorkerTelemetry]:
    """Module-level pool entry point: ``payload = (fn, item)``.

    Used by the plain (fault-free) pool path; the fault-aware path
    captures inside :func:`repro.faults.retry.run_unit` instead.
    """
    fn, item = payload
    return capture_unit(fn, item, unit_label(fn))
