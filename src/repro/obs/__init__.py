"""repro.obs — structured run telemetry for the whole pipeline.

The paper's results are statistical claims over ~1800 machine-days of
simulated trace; this package makes every run account for itself:

* :class:`MetricsRegistry` — injectable counters, gauges, and timing
  histograms (p50/p95/max), snapshot-able to a plain dict; the ambient
  registry is disabled (zero-cost) unless a caller opts in via
  :func:`use_registry` / :func:`set_registry`;
* :func:`span` — nested wall-clock phase timings recorded as a tree;
* :func:`setup_logging` — structured logging on stdlib ``logging``
  (human format by default, JSON-lines via ``--log-json``);
* :class:`RunManifest` / :func:`build_manifest` — the end-of-run JSON
  document (seed, config fingerprint, versions, argv, spans, metrics)
  written by the CLI's ``--metrics-out PATH``;
* :class:`EventTrace` — opt-in simkernel observer counting fired events
  by type with a bounded JSONL-dumpable sample;
* :func:`cli_progress` — the ``[k/N] <stage>`` stderr progress line for
  interactive runs.

Telemetry is gathered in the parent process only and is excluded from
cache keys and dataset equality: pipeline outputs are bit-identical with
telemetry enabled or disabled.
"""

from .logs import LOG_LEVELS, JsonLinesFormatter, setup_logging
from .manifest import MANIFEST_SCHEMA_VERSION, RunManifest, build_manifest
from .metrics import (
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    span,
    use_registry,
)
from .progress import cli_progress
from .trace_events import EventTrace

__all__ = [
    "EventTrace",
    "Histogram",
    "JsonLinesFormatter",
    "LOG_LEVELS",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "RunManifest",
    "build_manifest",
    "cli_progress",
    "get_registry",
    "set_registry",
    "setup_logging",
    "span",
    "use_registry",
]
