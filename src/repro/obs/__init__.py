"""repro.obs — distributed, profile-grade telemetry for the pipeline.

The paper's results are statistical claims over ~1800 machine-days of
simulated trace; this package makes every run account for itself, across
every process it spawns:

* :class:`MetricsRegistry` — injectable counters, gauges, and timing
  histograms (p50/p95/p99, exact nearest-rank), snapshot-able to a plain
  dict; the ambient registry is disabled (zero-cost) unless a caller
  opts in via :func:`use_registry` / :func:`set_registry`;
* :func:`span` — nested wall-clock phase timings recorded as a tree;
* :class:`WorkerTelemetry` / :meth:`MetricsRegistry.merge_worker` —
  cross-process capture: pool workers record spans and metrics locally
  and ship them back with each unit result; the parent merges them into
  per-pid lanes on its own timeline, exactly once per settled unit;
* :func:`export_chrome_trace` — the merged span tree plus worker lanes
  and resource counters as a Chrome Trace Event Format JSON (``--trace-
  out trace.json``), loadable in Perfetto / ``chrome://tracing``;
* :class:`ResourceSampler` — a background daemon thread sampling this
  process's RSS / CPU / fds / I-O into a bounded time series for the
  manifest's ``resources`` section and the trace's counter track;
* :class:`RunManifest` / :func:`build_manifest` — the end-of-run JSON
  document (seed, config fingerprint, versions, argv, spans, metrics,
  resources) written by the CLI's ``--metrics-out PATH`` (``-`` =
  stdout);
* :func:`render_manifest_report` / :func:`compare_manifests` — one
  manifest as a human performance report, or two diffed under a
  regression budget (``repro-fgcs report --compare``, a CI perf gate);
* :func:`setup_logging` — structured logging on stdlib ``logging``
  (human format by default, JSON-lines via ``--log-json``);
* :class:`EventTrace` — opt-in simkernel observer counting fired events
  by type with a bounded JSONL-dumpable sample;
* :func:`cli_progress` — the in-place ``[k/N] <stage>  rate  ETA``
  stderr progress line for interactive runs (:func:`finish_progress`
  clears it on every CLI exit path).

Telemetry is excluded from cache keys and dataset equality: pipeline
outputs are bit-identical with telemetry enabled or disabled, at any
``--jobs`` / ``--shards``.
"""

from .chrometrace import chrome_trace_document, export_chrome_trace
from .logs import LOG_LEVELS, JsonLinesFormatter, setup_logging
from .manifest import MANIFEST_SCHEMA_VERSION, RunManifest, build_manifest
from .metrics import (
    DEFAULT_QUANTILES,
    Histogram,
    MetricsRegistry,
    get_registry,
    quantile_label,
    set_registry,
    span,
    use_registry,
)
from .progress import ProgressLine, cli_progress, finish_progress
from .report import (
    ComparisonResult,
    MetricDelta,
    compare_manifests,
    extract_metrics,
    render_manifest_report,
)
from .sampler import ResourceSampler, read_process_stats
from .trace_events import EventTrace
from .worker import WorkerTelemetry, capture_unit, max_rss_bytes, run_captured

__all__ = [
    "ComparisonResult",
    "DEFAULT_QUANTILES",
    "EventTrace",
    "Histogram",
    "JsonLinesFormatter",
    "LOG_LEVELS",
    "MANIFEST_SCHEMA_VERSION",
    "MetricDelta",
    "MetricsRegistry",
    "ProgressLine",
    "ResourceSampler",
    "RunManifest",
    "WorkerTelemetry",
    "build_manifest",
    "capture_unit",
    "chrome_trace_document",
    "cli_progress",
    "compare_manifests",
    "export_chrome_trace",
    "extract_metrics",
    "finish_progress",
    "get_registry",
    "max_rss_bytes",
    "quantile_label",
    "read_process_stats",
    "render_manifest_report",
    "run_captured",
    "set_registry",
    "setup_logging",
    "span",
    "use_registry",
]
