"""Chrome Trace Event Format export: spans + worker lanes → flamegraph.

``--trace-out trace.json`` turns a run's merged span tree into a JSON
document loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: the parent process and every pool worker get their
own lane (one trace "process" per OS pid), phase spans render as nested
slices, and the background resource sampler's series renders as counter
tracks (RSS, CPU, fds) under the parent.  A sharded
``generate --jobs 8`` run becomes a visual flamegraph of
synth/detect/encode/cache phases per worker.

Format reference: the Trace Event Format doc ("JSON Array Format" /
"JSON Object Format").  We emit the object form::

    {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}

with three event kinds, all spec-valid and Perfetto-tested:

* ``"ph": "X"`` *complete* events — one per finished span, with
  microsecond ``ts`` (start) and ``dur`` relative to the run's start;
* ``"ph": "M"`` *metadata* events — ``process_name`` /
  ``process_sort_index`` so lanes are labeled and ordered
  (parent first, workers by pid);
* ``"ph": "C"`` *counter* events — one per resource sample per series.

All timestamps come off one timeline: the parent registry's epoch.
Worker spans were already translated onto it at merge time
(:meth:`~repro.obs.metrics.MetricsRegistry.merge_worker`), so slices
line up across lanes the way the run actually interleaved.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

from .metrics import MetricsRegistry

__all__ = ["chrome_trace_document", "export_chrome_trace"]

#: Counter series exported from the resource sampler, with display scale.
_COUNTER_SERIES = (
    ("rss_bytes", "rss_mb", 1.0 / (1 << 20)),
    ("cpu_seconds", "cpu_s", 1.0),
    ("open_fds", "open_fds", 1.0),
)


def _us(seconds: float) -> int:
    """Microseconds, clamped non-negative (spans can start at offset 0)."""
    return max(0, int(round(seconds * 1e6)))


def _span_events(spans: list, pid: int, out: list) -> None:
    for rec in spans:
        if rec.get("duration_s") is None:
            # Still-open span (export mid-run): skip rather than guess.
            continue
        out.append(
            {
                "name": rec["name"],
                "cat": "phase",
                "ph": "X",
                "ts": _us(rec["start_s"]),
                "dur": _us(rec["duration_s"]),
                "pid": pid,
                "tid": 0,
            }
        )
        _span_events(rec.get("children", []), pid, out)


def _process_meta(pid: int, name: str, sort_index: int, out: list) -> None:
    out.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        }
    )
    out.append(
        {
            "name": "process_sort_index",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"sort_index": sort_index},
        }
    )


def chrome_trace_document(
    registry: MetricsRegistry,
    *,
    command: Optional[str] = None,
    resources: Optional[dict] = None,
    resources_epoch_unix: Optional[float] = None,
) -> dict:
    """The Trace Event Format document for a finished run.

    ``resources`` is a :meth:`repro.obs.sampler.ResourceSampler.snapshot`
    (optional); ``resources_epoch_unix`` anchors its relative ``t_s``
    column to the wall clock so counter samples land on the span
    timeline.
    """
    snapshot = registry.snapshot()
    parent_pid = os.getpid()
    events: list[dict] = []

    label = f"repro-fgcs {command}" if command else "repro-fgcs"
    _process_meta(parent_pid, f"{label} (parent pid {parent_pid})", 0, events)
    _span_events(snapshot.get("spans", []), parent_pid, events)

    for sort_index, (pid_str, lane) in enumerate(
        sorted(snapshot.get("workers", {}).items(), key=lambda kv: int(kv[0])),
        start=1,
    ):
        pid = int(pid_str)
        _process_meta(
            pid,
            f"worker pid {pid} ({lane.get('units', 0)} unit(s))",
            sort_index,
            events,
        )
        _span_events(lane.get("spans", []), pid, events)

    if resources:
        shift = 0.0
        if resources_epoch_unix is not None:
            shift = resources_epoch_unix - registry.epoch_unix
        samples = resources.get("samples", {})
        t_s = samples.get("t_s", [])
        for field, series_name, scale in _COUNTER_SERIES:
            values = samples.get(field)
            if not values:
                continue
            for t, v in zip(t_s, values):
                if v is None:
                    continue
                events.append(
                    {
                        "name": series_name,
                        "cat": "resources",
                        "ph": "C",
                        "ts": _us(t + shift),
                        "pid": parent_pid,
                        "tid": 0,
                        "args": {series_name: round(v * scale, 3)},
                    }
                )

    doc: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if command:
        doc["otherData"] = {"command": command}
    return doc


def export_chrome_trace(
    registry: MetricsRegistry,
    path: Union[str, Path],
    *,
    command: Optional[str] = None,
    resources: Optional[dict] = None,
    resources_epoch_unix: Optional[float] = None,
) -> Path:
    """Write the Chrome trace JSON for ``registry`` to ``path``."""
    path = Path(path)
    doc = chrome_trace_document(
        registry,
        command=command,
        resources=resources,
        resources_epoch_unix=resources_epoch_unix,
    )
    path.write_text(
        json.dumps(doc, separators=(",", ":")) + "\n", encoding="utf-8"
    )
    return path
