"""Structured logging setup on the stdlib ``logging`` package.

All repro modules log through ``logging.getLogger(__name__)`` (so every
logger lives under the ``repro`` namespace) and never configure handlers
themselves — library users keep full control.  :func:`setup_logging` is
the one-call configuration the CLI applies: a single stderr handler on
the ``repro`` logger, either a terse human format or JSON-lines
(``--log-json``) for machine consumption.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional

__all__ = ["JsonLinesFormatter", "LOG_LEVELS", "setup_logging"]

#: Accepted ``--log-level`` values, least to most severe.
LOG_LEVELS: tuple[str, ...] = ("debug", "info", "warning", "error")

_HUMAN_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_HUMAN_DATEFMT = "%H:%M:%S"


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per log record: ts, level, logger, msg (+ exc)."""

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, ensure_ascii=False)


def setup_logging(
    level: str = "warning",
    *,
    json_lines: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the root repro logger.

    Idempotent: calling again replaces the previously installed handler
    (the CLI calls it once per invocation).  Only the ``repro`` namespace
    is touched — the global root logger and other libraries are left
    alone.
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"log level must be one of {LOG_LEVELS}, got {level!r}")
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper()))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonLinesFormatter()
        if json_lines
        else logging.Formatter(_HUMAN_FORMAT, datefmt=_HUMAN_DATEFMT)
    )
    logger.handlers[:] = [handler]
    logger.propagate = False
    return logger
