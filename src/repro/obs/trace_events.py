"""Opt-in simkernel event tracing: per-type counts + a bounded sample.

Attach an :class:`EventTrace` to a :class:`repro.simkernel.Simulator`
(``Simulator(observer=trace)``) and every fired event is counted by its
name (falling back to the action's function name).  The first
``max_samples`` events are also kept verbatim and can be dumped as JSONL
for debugging a misbehaving simulation without drowning in output — a
92-day testbed fires millions of events; the sample stays bounded.

The observer is pure accounting: it never mutates events or the queue,
so attaching one cannot change simulation results.  The default
(``observer=None``) skips the hook entirely — one ``is None`` test per
fired event.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

__all__ = ["EventTrace"]


class EventTrace:
    """Counts fired simulation events by type; keeps a bounded sample."""

    def __init__(self, max_samples: int = 1024) -> None:
        if max_samples < 0:
            raise ValueError("max_samples must be >= 0")
        self.max_samples = max_samples
        self.total = 0
        #: event name -> number of firings.
        self.counts: dict[str, int] = {}
        self._samples: list[dict] = []

    @staticmethod
    def _name_of(event) -> str:
        name = getattr(event, "name", "")
        if name:
            return name
        action = getattr(event, "action", None)
        return getattr(action, "__name__", "") or "<anonymous>"

    def record(self, event) -> None:
        """Observe one fired event (called by the simulator)."""
        name = self._name_of(event)
        self.counts[name] = self.counts.get(name, 0) + 1
        self.total += 1
        if len(self._samples) < self.max_samples:
            self._samples.append(
                {
                    "seq": event.seq,
                    "time": event.time,
                    "priority": event.priority,
                    "name": name,
                }
            )

    @property
    def samples(self) -> tuple[dict, ...]:
        """The first ``max_samples`` fired events, in firing order."""
        return tuple(self._samples)

    def snapshot(self) -> dict:
        """Plain-dict summary: total, per-name counts, sample size."""
        return {
            "total": self.total,
            "by_name": {k: self.counts[k] for k in sorted(self.counts)},
            "sampled": len(self._samples),
        }

    def dump_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the bounded sample as JSON-lines; returns the path."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for sample in self._samples:
                fh.write(json.dumps(sample, sort_keys=True) + "\n")
        return path
