"""Process-wide (but injectable) metrics: counters, gauges, histograms, spans.

One :class:`MetricsRegistry` collects everything a run wants to report:

* **counters** — monotonically accumulated numbers (``cache.hit``);
* **gauges** — last-write-wins values (``parallel.workers``);
* **histograms** — raw-sample timing distributions summarized as
  count/mean/quantiles/max (``parallel.unit_seconds``; p50/p95/p99 by
  default, configurable per histogram);
* **spans** — nested wall-clock phase timings (``generate.machines``
  inside ``analyze``), recorded as a tree;
* **worker lanes** — per-worker-process telemetry
  (:class:`repro.obs.worker.WorkerTelemetry`) merged in by the parallel
  backends: each worker pid gets its own span lane (time-aligned to the
  parent's clock), worker counters/histogram samples fold into the
  parent's, and peak RSS / CPU time per worker are tracked — the raw
  material for the Chrome-trace export
  (:mod:`repro.obs.chrometrace`);
* **events** — discrete structured occurrences worth reporting
  individually (``faults.quarantine``), recorded in order as plain
  dicts; snapshots include an ``"events"`` key only when any were
  recorded, so event-free snapshots keep their original shape.

The registry honors two contracts the pipelines rely on:

* **zero-cost when disabled** — every mutator returns immediately on a
  disabled registry, and instrumented call sites guard their
  ``perf_counter`` reads behind ``registry.enabled``, so library users who
  never opt in pay nothing;
* **never perturbs results** — telemetry is gathered in the parent
  process only, lives outside every config dataclass, and is excluded
  from cache keys and dataset equality; outputs are bit-identical with
  telemetry on or off (asserted by ``tests/test_obs_wiring.py``).

Access goes through a module-level current registry: the default is
disabled, the CLI installs an enabled one per invocation via
:func:`use_registry`, and tests inject their own.  Spans assume a single
recording thread (the parent process's main thread — all instrumented
call sites live there); counters/gauges/histograms are lock-protected.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional, Union

__all__ = [
    "DEFAULT_QUANTILES",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "span",
    "use_registry",
]

Number = Union[int, float]

#: Quantiles every histogram summary reports unless overridden: the
#: medians/tails the serving-layer latency targets are stated in.
DEFAULT_QUANTILES: tuple[float, ...] = (0.50, 0.95, 0.99)


def quantile_label(q: float) -> str:
    """The summary key for quantile ``q``: ``0.99`` → ``"p99"``."""
    return f"p{100 * q:g}"


class Histogram:
    """Raw-sample distribution summarized as count/mean/quantiles/max.

    Runs record at most a few thousand observations (work units, map
    calls), so samples are kept verbatim and percentiles are exact
    (nearest-rank on the sorted samples).  The reported quantiles default
    to :data:`DEFAULT_QUANTILES` (p50/p95/p99) and are configurable per
    histogram; :meth:`quantile` answers any ``q`` regardless.
    """

    __slots__ = ("_samples", "_quantiles")

    def __init__(self, quantiles: tuple[float, ...] = DEFAULT_QUANTILES) -> None:
        for q in quantiles:
            if not 0.0 < q <= 1.0:
                raise ValueError(f"quantiles must be in (0, 1], got {q}")
        self._samples: list[float] = []
        self._quantiles = tuple(quantiles)

    def observe(self, value: Number) -> None:
        self._samples.append(float(value))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> tuple[float, ...]:
        return tuple(self._samples)

    @property
    def quantiles(self) -> tuple[float, ...]:
        return self._quantiles

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile: the smallest sample whose
        cumulative frequency is >= ``q`` (requires at least one sample).

        Matches ``numpy.quantile(samples, q, method="inverted_cdf")``
        exactly (property-tested).
        """
        if not self._samples:
            raise ValueError("quantile of an empty histogram")
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        ordered = sorted(self._samples)
        return ordered[max(0, math.ceil(q * len(ordered)) - 1)]

    def extend(self, values) -> None:
        """Fold a batch of raw samples in (worker-telemetry merge path)."""
        self._samples.extend(float(v) for v in values)

    def mean(self) -> float:
        """Arithmetic mean (requires at least one sample)."""
        if not self._samples:
            raise ValueError("mean of an empty histogram")
        return sum(self._samples) / len(self._samples)

    def summary(self) -> dict:
        """Plain-dict summary; ``{"count": 0}`` when nothing was observed."""
        if not self._samples:
            return {"count": 0}
        ordered = sorted(self._samples)
        n = len(ordered)
        out = {"count": n, "mean": sum(ordered) / n}
        for q in self._quantiles:
            out[quantile_label(q)] = ordered[max(0, math.ceil(q * n) - 1)]
        out["max"] = ordered[-1]
        return out


class MetricsRegistry:
    """A run's worth of counters, gauges, histograms, and phase spans."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        # perf_counter epoch for span offsets plus the wall-clock instant
        # it corresponds to, so spans recorded in *other processes* (each
        # against its own epoch) can be translated onto this timeline.
        self._epoch = time.perf_counter()
        self._epoch_unix = time.time()
        self._counters: dict[str, Number] = {}
        self._gauges: dict[str, Number] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: list[dict] = []
        self._span_stack: list[dict] = []
        self._events: list[dict] = []
        # Per-worker-process lanes, keyed by pid: merged spans (translated
        # to this registry's timeline) and resource peaks.
        self._workers: dict[int, dict] = {}

    @property
    def epoch_unix(self) -> float:
        """Wall-clock time (``time.time()``) at span offset 0."""
        return self._epoch_unix

    # -- counters / gauges / histograms --------------------------------------

    def inc(self, name: str, n: Number = 1) -> None:
        """Add ``n`` to counter ``name`` (``n=0`` declares it at zero)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counter_value(self, name: str) -> Number:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        """Record one sample into histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._histograms.setdefault(name, Histogram()).observe(value)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The live histogram object for ``name`` (``None`` if unseen)."""
        with self._lock:
            return self._histograms.get(name)

    def record(self, name: str, **fields: object) -> None:
        """Append one structured event (``name`` plus JSON-able fields)."""
        if not self.enabled:
            return
        with self._lock:
            self._events.append({"name": name, **fields})

    def events(self, name: Optional[str] = None) -> list[dict]:
        """Recorded events, optionally filtered by name (copies)."""
        with self._lock:
            return [
                dict(e) for e in self._events if name is None or e["name"] == name
            ]

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the enclosed block into histogram ``name``."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - t0)

    # -- spans ----------------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[Optional[dict]]:
        """Record a named wall-clock phase; nests under an enclosing span.

        Yields the (mutable) span record so callers can attach extra keys;
        ``duration_s`` is filled in on exit.  Disabled registries yield
        ``None`` and record nothing.
        """
        if not self.enabled:
            yield None
            return
        t0 = time.perf_counter()
        record: dict = {
            "name": name,
            "start_s": round(t0 - self._epoch, 6),
            "duration_s": None,
            "children": [],
        }
        parent = self._span_stack[-1] if self._span_stack else None
        (parent["children"] if parent else self._spans).append(record)
        self._span_stack.append(record)
        try:
            yield record
        finally:
            record["duration_s"] = round(time.perf_counter() - t0, 6)
            if self._span_stack and self._span_stack[-1] is record:
                self._span_stack.pop()

    # -- worker telemetry merge ----------------------------------------------

    def merge_worker(self, telemetry) -> None:
        """Fold one :class:`repro.obs.worker.WorkerTelemetry` in.

        Worker counters add into this registry's counters, histogram
        samples extend the matching histograms, and the worker's spans are
        appended to its pid's lane with ``start_s`` translated onto this
        registry's timeline (both processes share the host wall clock, so
        the translation is exact up to clock resolution).  Resource peaks
        (max RSS, CPU seconds) keep per-pid maxima.  Callers merge a
        unit's telemetry only once it *settled successfully* — a retried
        unit contributes exactly one worker's worth, never two.
        """
        if not self.enabled or telemetry is None:
            return
        shift = telemetry.epoch_unix - self._epoch_unix

        def translate(rec: dict) -> dict:
            return {
                "name": rec["name"],
                "start_s": round(rec["start_s"] + shift, 6),
                "duration_s": rec["duration_s"],
                "children": [translate(c) for c in rec["children"]],
            }

        with self._lock:
            for name, n in telemetry.counters.items():
                self._counters[name] = self._counters.get(name, 0) + n
            for name, values in telemetry.samples.items():
                self._histograms.setdefault(name, Histogram()).extend(values)
            lane = self._workers.setdefault(
                telemetry.pid,
                {"spans": [], "units": 0, "max_rss_bytes": 0, "cpu_seconds": 0.0},
            )
            lane["spans"].extend(translate(rec) for rec in telemetry.spans)
            lane["units"] += 1
            lane["max_rss_bytes"] = max(
                lane["max_rss_bytes"], telemetry.max_rss_bytes
            )
            # CPU time is cumulative over the worker process's lifetime,
            # so the latest reading is the largest.
            lane["cpu_seconds"] = max(lane["cpu_seconds"], telemetry.cpu_seconds)

    def worker_lanes(self) -> dict[int, dict]:
        """Merged per-worker telemetry, keyed by pid (copies)."""
        import copy

        with self._lock:
            return copy.deepcopy(self._workers)

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything recorded so far, as a JSON-serializable plain dict."""
        import copy

        with self._lock:
            snap = {
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
                "histograms": {
                    k: self._histograms[k].summary()
                    for k in sorted(self._histograms)
                },
                "spans": copy.deepcopy(self._spans),
            }
            if self._events:
                snap["events"] = copy.deepcopy(self._events)
            if self._workers:
                snap["workers"] = {
                    str(pid): copy.deepcopy(lane)
                    for pid, lane in sorted(self._workers.items())
                }
            return snap

    def reset(self) -> None:
        """Drop everything recorded (keeps the enabled flag)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
            self._span_stack.clear()
            self._events.clear()
            self._workers.clear()
            self._epoch = time.perf_counter()
            self._epoch_unix = time.time()


#: The ambient registry: disabled by default so library use is untelemetered
#: (and free) unless a caller opts in.
_DISABLED = MetricsRegistry(enabled=False)
_current: MetricsRegistry = _DISABLED


def get_registry() -> MetricsRegistry:
    """The current ambient registry (disabled no-op unless one was set)."""
    return _current


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the ambient one (``None`` restores the
    disabled default); returns what was installed."""
    global _current
    _current = registry if registry is not None else _DISABLED
    return _current


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for the duration of the block, then restore."""
    global _current
    previous = _current
    _current = registry
    try:
        yield registry
    finally:
        _current = previous


def span(name: str):
    """A phase span on the *current* registry (no-op when disabled)."""
    return get_registry().span(name)
