"""Process-wide (but injectable) metrics: counters, gauges, histograms, spans.

One :class:`MetricsRegistry` collects everything a run wants to report:

* **counters** — monotonically accumulated numbers (``cache.hit``);
* **gauges** — last-write-wins values (``parallel.workers``);
* **histograms** — raw-sample timing distributions summarized as
  count/mean/p50/p95/max (``parallel.unit_seconds``);
* **spans** — nested wall-clock phase timings (``generate.machines``
  inside ``analyze``), recorded as a tree;
* **events** — discrete structured occurrences worth reporting
  individually (``faults.quarantine``), recorded in order as plain
  dicts; snapshots include an ``"events"`` key only when any were
  recorded, so event-free snapshots keep their original shape.

The registry honors two contracts the pipelines rely on:

* **zero-cost when disabled** — every mutator returns immediately on a
  disabled registry, and instrumented call sites guard their
  ``perf_counter`` reads behind ``registry.enabled``, so library users who
  never opt in pay nothing;
* **never perturbs results** — telemetry is gathered in the parent
  process only, lives outside every config dataclass, and is excluded
  from cache keys and dataset equality; outputs are bit-identical with
  telemetry on or off (asserted by ``tests/test_obs_wiring.py``).

Access goes through a module-level current registry: the default is
disabled, the CLI installs an enabled one per invocation via
:func:`use_registry`, and tests inject their own.  Spans assume a single
recording thread (the parent process's main thread — all instrumented
call sites live there); counters/gauges/histograms are lock-protected.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional, Union

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "span",
    "use_registry",
]

Number = Union[int, float]


class Histogram:
    """Raw-sample distribution summarized as count/mean/p50/p95/max.

    Runs record at most a few thousand observations (work units, map
    calls), so samples are kept verbatim and percentiles are exact
    (nearest-rank on the sorted samples).
    """

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: list[float] = []

    def observe(self, value: Number) -> None:
        self._samples.append(float(value))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> tuple[float, ...]:
        return tuple(self._samples)

    def summary(self) -> dict:
        """Plain-dict summary; ``{"count": 0}`` when nothing was observed."""
        if not self._samples:
            return {"count": 0}
        ordered = sorted(self._samples)
        n = len(ordered)

        def rank(q: float) -> float:
            # Nearest-rank percentile: smallest sample with cumulative
            # frequency >= q.
            return ordered[max(0, math.ceil(q * n) - 1)]

        return {
            "count": n,
            "mean": sum(ordered) / n,
            "p50": rank(0.50),
            "p95": rank(0.95),
            "max": ordered[-1],
        }


class MetricsRegistry:
    """A run's worth of counters, gauges, histograms, and phase spans."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._counters: dict[str, Number] = {}
        self._gauges: dict[str, Number] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: list[dict] = []
        self._span_stack: list[dict] = []
        self._events: list[dict] = []

    # -- counters / gauges / histograms --------------------------------------

    def inc(self, name: str, n: Number = 1) -> None:
        """Add ``n`` to counter ``name`` (``n=0`` declares it at zero)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counter_value(self, name: str) -> Number:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        """Record one sample into histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._histograms.setdefault(name, Histogram()).observe(value)

    def record(self, name: str, **fields: object) -> None:
        """Append one structured event (``name`` plus JSON-able fields)."""
        if not self.enabled:
            return
        with self._lock:
            self._events.append({"name": name, **fields})

    def events(self, name: Optional[str] = None) -> list[dict]:
        """Recorded events, optionally filtered by name (copies)."""
        with self._lock:
            return [
                dict(e) for e in self._events if name is None or e["name"] == name
            ]

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the enclosed block into histogram ``name``."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - t0)

    # -- spans ----------------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[Optional[dict]]:
        """Record a named wall-clock phase; nests under an enclosing span.

        Yields the (mutable) span record so callers can attach extra keys;
        ``duration_s`` is filled in on exit.  Disabled registries yield
        ``None`` and record nothing.
        """
        if not self.enabled:
            yield None
            return
        t0 = time.perf_counter()
        record: dict = {
            "name": name,
            "start_s": round(t0 - self._epoch, 6),
            "duration_s": None,
            "children": [],
        }
        parent = self._span_stack[-1] if self._span_stack else None
        (parent["children"] if parent else self._spans).append(record)
        self._span_stack.append(record)
        try:
            yield record
        finally:
            record["duration_s"] = round(time.perf_counter() - t0, 6)
            if self._span_stack and self._span_stack[-1] is record:
                self._span_stack.pop()

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything recorded so far, as a JSON-serializable plain dict."""
        import copy

        with self._lock:
            snap = {
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
                "histograms": {
                    k: self._histograms[k].summary()
                    for k in sorted(self._histograms)
                },
                "spans": copy.deepcopy(self._spans),
            }
            if self._events:
                snap["events"] = copy.deepcopy(self._events)
            return snap

    def reset(self) -> None:
        """Drop everything recorded (keeps the enabled flag)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
            self._span_stack.clear()
            self._events.clear()
            self._epoch = time.perf_counter()


#: The ambient registry: disabled by default so library use is untelemetered
#: (and free) unless a caller opts in.
_DISABLED = MetricsRegistry(enabled=False)
_current: MetricsRegistry = _DISABLED


def get_registry() -> MetricsRegistry:
    """The current ambient registry (disabled no-op unless one was set)."""
    return _current


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the ambient one (``None`` restores the
    disabled default); returns what was installed."""
    global _current
    _current = registry if registry is not None else _DISABLED
    return _current


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for the duration of the block, then restore."""
    global _current
    previous = _current
    _current = registry
    try:
        yield registry
    finally:
        _current = previous


def span(name: str):
    """A phase span on the *current* registry (no-op when disabled)."""
    return get_registry().span(name)
