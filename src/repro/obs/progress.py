"""Interactive progress reporting for the CLI.

The parallel backends already fire ``progress(index, total)`` once per
work unit in the parent process (see :mod:`repro.parallel.backend`);
:func:`cli_progress` turns that hook into a stderr progress line
(``[k/N] <stage>``) when — and only when — a human is watching: output
must be a TTY, and the CLI suppresses it under ``--log-json`` so
machine-readable streams stay clean.
"""

from __future__ import annotations

import sys
from typing import IO, Callable, Optional

__all__ = ["cli_progress"]


def cli_progress(
    stage: str,
    *,
    stream: Optional[IO[str]] = None,
    enabled: Optional[bool] = None,
    unit: Optional[str] = None,
) -> Optional[Callable[[int, int], None]]:
    """A ``progress(index, total)`` callback printing ``[k/N] <stage>``.

    Returns ``None`` when progress should stay silent — by default when
    ``stream`` (stderr) is not a TTY, so redirected/piped runs produce no
    chatter.  ``enabled`` overrides the TTY auto-detection either way.
    ``unit`` names what is being counted when it isn't the default work
    unit — sharded pipelines pass ``"shard"`` for ``[shard k/N] <stage>``.
    """
    out = stream if stream is not None else sys.stderr
    if enabled is None:
        isatty = getattr(out, "isatty", None)
        enabled = bool(isatty and isatty())
    if not enabled:
        return None
    prefix = f"{unit} " if unit else ""

    def progress(index: int, total: int) -> None:
        print(f"[{prefix}{index + 1}/{total}] {stage}", file=out, flush=True)

    return progress
