"""Interactive progress reporting for the CLI.

The parallel backends already fire ``progress(index, total)`` once per
work unit in the parent process (see :mod:`repro.parallel.backend`);
:func:`cli_progress` turns that hook into a single in-place stderr
status line — ``[k/N] <stage>  <rate> unit/s  ETA m:ss`` — when, and
only when, a human is watching: output must be a TTY, and the CLI
suppresses it under ``--log-json`` so machine-readable streams stay
clean.

The line is redrawn with ``\\r`` + erase-to-end-of-line and **never
outlives the run**: it auto-clears when the last unit lands, and
:func:`finish_progress` (called by the CLI on every exit path,
including the nonzero exit codes 1–3) clears any line a failed or
partial run left mid-draw, so error output starts on a clean row.

Throughput is the observed rate (units completed over wall-clock time,
which inherently accounts for ``--jobs`` parallelism).  The ETA
estimator additionally consults the live ``parallel.unit_seconds``
histogram: remaining work in unit-seconds (remaining × mean unit cost)
divided by the observed concurrency (total unit-seconds burned over
elapsed wall time) — so a 4-worker run shows a 4× shorter ETA than the
same units serially.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

__all__ = ["ProgressLine", "cli_progress", "finish_progress"]

#: Progress lines that may have a partially-drawn row on screen.
_ACTIVE: list["ProgressLine"] = []


class ProgressLine:
    """A ``progress(index, total)`` callback drawing one in-place line."""

    def __init__(
        self, stage: str, out: IO[str], unit: Optional[str] = None
    ) -> None:
        self.stage = stage
        self.out = out
        self.unit = unit or "unit"
        self._prefix = f"{unit} " if unit else ""
        self._t0 = time.perf_counter()
        self._drawn = False
        _ACTIVE.append(self)

    def _eta_seconds(
        self, done: int, total: int, elapsed: float
    ) -> Optional[float]:
        remaining = total - done
        if remaining <= 0 or elapsed <= 0 or done <= 0:
            return None
        # Mean unit cost from the live histogram when the backend has
        # recorded settled units; elapsed/done otherwise (first units of
        # a serial stage, or stages that bypass the unit histogram).
        mean_unit_s = None
        try:
            from .metrics import get_registry

            summary = get_registry().histogram("parallel.unit_seconds")
            if summary is not None and len(summary) > 0:
                mean_unit_s = summary.mean()
        except Exception:
            mean_unit_s = None
        if not mean_unit_s or mean_unit_s <= 0:
            mean_unit_s = elapsed / done
        # Observed concurrency: unit-seconds burned per wall-clock second.
        concurrency = max(1.0, mean_unit_s * done / elapsed)
        return remaining * mean_unit_s / concurrency

    def __call__(self, index: int, total: int) -> None:
        done = index + 1
        elapsed = time.perf_counter() - self._t0
        line = f"[{self._prefix}{done}/{total}] {self.stage}"
        if elapsed > 0:
            line += f"  {done / elapsed:.1f} {self.unit}/s"
            eta = self._eta_seconds(done, total, elapsed)
            if eta is not None:
                line += f"  ETA {int(eta // 60)}:{int(eta % 60):02d}"
        print(f"\r{line}\x1b[K", end="", file=self.out, flush=True)
        self._drawn = True
        if done >= total:
            self.clear()

    def clear(self) -> None:
        """Erase the line (if drawn) and retire from the active set."""
        if self._drawn:
            print("\r\x1b[K", end="", file=self.out, flush=True)
            self._drawn = False
        if self in _ACTIVE:
            _ACTIVE.remove(self)


def finish_progress() -> None:
    """Clear every live progress line; the CLI calls this on all exits."""
    for line in list(_ACTIVE):
        line.clear()


def cli_progress(
    stage: str,
    *,
    stream: Optional[IO[str]] = None,
    enabled: Optional[bool] = None,
    unit: Optional[str] = None,
) -> Optional[ProgressLine]:
    """A progress callback printing ``[k/N] <stage>  rate  ETA``, or ``None``.

    Returns ``None`` when progress should stay silent — by default when
    ``stream`` (stderr) is not a TTY, so redirected/piped runs produce no
    chatter.  ``enabled`` overrides the TTY auto-detection either way.
    ``unit`` names what is being counted when it isn't the default work
    unit — sharded pipelines pass ``"shard"`` for ``[shard k/N] <stage>``.
    """
    out = stream if stream is not None else sys.stderr
    if enabled is None:
        isatty = getattr(out, "isatty", None)
        enabled = bool(isatty and isatty())
    if not enabled:
        return None
    return ProgressLine(stage, out, unit=unit)
