"""Run manifests: one JSON document recording what a run did.

A :class:`RunManifest` is written at the end of every CLI command when
``--metrics-out PATH`` is given.  It records enough to account for (and
reproduce) the run: the command and argv, package and schema versions,
the root seed, the config fingerprint (the same one that keys the
dataset cache), wall-clock start/duration, the exit code, the nested
phase spans, and the full metrics snapshot.

The manifest is *derived from* a run but never feeds back into one:
fingerprints, cache keys, and dataset equality ignore it entirely, so
telemetry can never perturb results.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Union

from .metrics import MetricsRegistry

__all__ = ["MANIFEST_SCHEMA_VERSION", "RunManifest", "build_manifest"]

#: Version of the manifest document layout itself.  v2 added the
#: ``faults`` / ``retries`` sections (fault injection, retry, and
#: quarantine accounting); v3 added the ``shards`` section (sharded
#: generation / streaming-analysis accounting); v4 added the ``io``
#: section (trace bytes read/written and encode/decode timings per
#: on-disk format); v5 added the ``generation`` section (synthesis vs
#: detection time split and random variates drawn per stream); v6 added
#: the ``resources`` section (the background sampler's bounded RSS /
#: CPU / fd / I/O time series with peaks, plus per-worker-process
#: resource peaks merged from worker telemetry); v7 added the ``serve``
#: section (the forecast daemon's request/QPS/latency/tier accounting);
#: v8 added the ``scenario`` section (the declarative scenario a
#: ``generate --scenario`` / ``scenario diff`` run was driven by, with
#: its compiled fingerprint); v9 extended the ``serve`` section for the
#: scale-out front (``workers`` — per-worker QPS/latency/tier lanes and
#: a ``totals`` roll-up — plus block-paging counters
#: (``tier.n_blocks``/``tier.block_machines``) and the bounded ingest
#: queue's ``ingest.queue`` depth/backpressure accounting).
MANIFEST_SCHEMA_VERSION = 9


@dataclass
class RunManifest:
    """The JSON-serializable record of one run."""

    #: CLI command (``generate``, ``analyze``, ...) or a caller-chosen label.
    command: str
    #: Exact argv the run was invoked with.
    argv: list[str]
    #: ``repro`` package version.
    version: str
    #: Schema versions: ``{"manifest": .., "trace": .., "code": ..}``.
    schema: dict
    #: Root RNG seed, when the command has one.
    seed: Optional[int]
    #: :func:`repro.parallel.cache.config_fingerprint` of the resolved
    #: config, when the command builds one (``None`` for e.g. thresholds).
    config_fingerprint: Optional[str]
    #: ISO-8601 UTC timestamp of run start.
    started_at: str
    #: Total wall-clock duration, seconds.
    duration_s: float
    #: Process exit code of the command.
    exit_code: int
    #: Nested phase spans (the ``spans`` part of the metrics snapshot).
    spans: list = field(default_factory=list)
    #: Counters/gauges/histograms recorded during the run.
    metrics: dict = field(default_factory=dict)
    #: Fault accounting (schema v2): injected faults by site, failure
    #: counts by kind, and the quarantined units with their errors.
    faults: dict = field(default_factory=dict)
    #: Retry accounting (schema v2): attempts, successes after retry,
    #: and exhausted units.
    retries: dict = field(default_factory=dict)
    #: Shard accounting (schema v3): one summary per sharded phase
    #: (``generate`` / ``analyze``) with shard and event counts.
    shards: list = field(default_factory=list)
    #: Trace I/O accounting (schema v4): per-format bytes read/written
    #: plus encode/decode timing summaries, keyed
    #: ``{"jsonl": {...}, "binary": {...}}``.
    io: dict = field(default_factory=dict)
    #: Trace-generation accounting (schema v5): per-machine synthesis and
    #: detection timing summaries (``synth_seconds`` / ``detect_seconds``)
    #: plus the random variates drawn per stream
    #: (``rng_draws["signal"]``, ...).
    generation: dict = field(default_factory=dict)
    #: Resource accounting (schema v6): the background sampler's bounded
    #: time series (``samples["t_s"]`` / ``["rss_bytes"]`` / ...) with
    #: ``peak`` values and the process-lifetime ``max_rss_bytes``, plus
    #: ``workers`` — per-pool-worker resource peaks
    #: (``{"<pid>": {"max_rss_bytes": ..., "cpu_seconds": ...,
    #: "units": ...}}``) merged from worker telemetry.
    resources: dict = field(default_factory=dict)
    #: Serving accounting (schema v7, extended v9): the forecast
    #: daemon's lifetime summary — ``requests``/``qps``/``duration_s``,
    #: per-class status counts, the ``latency`` histogram summary of
    #: ``serve.request_seconds``, and the hot/cold ``tier`` + ``ingest``
    #: counters, now including block-paging counters and the async
    #: ingest queue; scale-out runs add per-worker lanes under
    #: ``workers`` and a ``totals`` roll-up (see ``docs/serving.md``).
    serve: dict = field(default_factory=dict)
    #: Scenario accounting (schema v8): the declarative scenario the run
    #: was driven by — ``scenario`` (name), compiled ``fingerprint``,
    #: ``classes``, and the resolved frame.  ``scenario diff`` runs list
    #: every compared scenario under ``compared``.
    scenario: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        # Tolerate v1–v6 documents, which predate the faults/retries,
        # shards, io, generation, resources, and serve sections.
        data = dict(data)
        data.setdefault("faults", {})
        data.setdefault("retries", {})
        data.setdefault("shards", [])
        data.setdefault("io", {})
        data.setdefault("generation", {})
        data.setdefault("resources", {})
        data.setdefault("serve", {})
        data.setdefault("scenario", {})
        return cls(**data)

    def write(self, path: Union[str, Path]) -> Path:
        """Serialize to ``path`` as stable, human-diffable JSON."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def build_manifest(
    *,
    command: str,
    argv: list[str],
    registry: MetricsRegistry,
    duration_s: float,
    started_at: str,
    exit_code: int = 0,
    seed: Optional[int] = None,
    config_fingerprint: Optional[str] = None,
    resources: Optional[dict] = None,
) -> RunManifest:
    """Assemble a manifest from a finished run's registry and metadata.

    Package/schema versions are read here so every manifest carries them;
    the imports are deferred to keep :mod:`repro.obs` free of import
    cycles with the pipeline packages it instruments.
    """
    from .._version import __version__
    from ..parallel.cache import CODE_SCHEMA_VERSION
    from ..traces.io import SCHEMA_VERSION

    snapshot = registry.snapshot()
    spans = snapshot.pop("spans")
    events = snapshot.pop("events", [])
    # Worker lanes: resource peaks go to the resources section; the full
    # per-worker span trees stay out of the manifest (they are the
    # Chrome-trace export's payload) to keep the document lean.
    worker_lanes = snapshot.pop("workers", {})
    counters = snapshot.get("counters", {})

    def _strip(prefix: str) -> dict:
        return {
            k[len(prefix):]: v
            for k, v in counters.items()
            if k.startswith(prefix) and v
        }

    # The faults/retries sections duplicate the underlying counters in a
    # consumer-friendly shape; the raw counters stay in ``metrics`` too.
    faults: dict = {}
    injected = _strip("faults.injected.")
    failures = {
        k: v
        for k, v in _strip("faults.").items()
        if not k.startswith("injected.")
    }
    quarantined = [
        {k: v for k, v in e.items() if k != "name"}
        for e in events
        if e.get("name") == "faults.quarantine"
    ]
    if injected:
        faults["injected"] = injected
    if failures:
        faults["failures"] = failures
    if quarantined:
        faults["quarantined"] = quarantined
    retries = _strip("retries.")
    shards = [
        {k: v for k, v in e.items() if k != "name"}
        for e in events
        if e.get("name") == "shards"
    ]
    # Per-format trace I/O: join the io.* counters and timing histograms
    # into one section keyed by format (``io["binary"]["bytes_read"]``).
    histograms = snapshot.get("histograms", {})
    io: dict = {}

    def _io_put(fmt: str, field_name: str, value: object) -> None:
        io.setdefault(fmt, {})[field_name] = value

    for counter_field in ("bytes_read", "bytes_written"):
        for fmt, v in _strip(f"io.{counter_field}.").items():
            _io_put(fmt, counter_field, v)
    for hist_field in ("encode_seconds", "decode_seconds"):
        prefix = f"io.{hist_field}."
        for name, summary in histograms.items():
            if name.startswith(prefix) and summary.get("count"):
                _io_put(name[len(prefix):], hist_field, summary)
    # Generation accounting: the synthesis/detection split (one histogram
    # sample per machine, or per shard for sharded runs) and the random
    # variates drawn per stream.
    generation: dict = {}
    for hist_field in ("synth_seconds", "detect_seconds"):
        summary = histograms.get(f"generate.{hist_field}")
        if summary and summary.get("count"):
            generation[hist_field] = summary
    rng_draws = _strip("rng.draws.")
    if rng_draws:
        generation["rng_draws"] = rng_draws
    # Serving: the daemon records one "serve" event at shutdown with its
    # lifetime summary; the request-latency histogram summary rides along
    # (the raw serve.* counters/histograms stay in ``metrics`` too).
    serve: dict = {}
    for e in events:
        if e.get("name") == "serve":
            serve = {k: v for k, v in e.items() if k != "name"}
    if serve:
        latency = histograms.get("serve.request_seconds")
        if latency and latency.get("count"):
            serve["latency"] = latency
        serve["status"] = {
            cls_: counters[f"serve.status.{cls_}"]
            for cls_ in ("2xx", "3xx", "4xx", "5xx")
            if counters.get(f"serve.status.{cls_}")
        }
    # Scenario: `generate --scenario` records one "scenario" event with
    # the compiled identity; `scenario diff` records one per compared
    # scenario, which nest under "compared" (baseline first).
    scenario_events = [
        {k: v for k, v in e.items() if k != "name"}
        for e in events
        if e.get("name") == "scenario"
    ]
    scenario: dict = {}
    if len(scenario_events) == 1:
        scenario = scenario_events[0]
    elif scenario_events:
        scenario = {"compared": scenario_events}
    # Resources: the sampler's bounded series (when one ran) plus the
    # per-worker peaks merged from worker telemetry.
    resources_section: dict = dict(resources) if resources else {}
    if worker_lanes:
        resources_section["workers"] = {
            pid: {
                "max_rss_bytes": lane.get("max_rss_bytes", 0),
                "cpu_seconds": round(lane.get("cpu_seconds", 0.0), 6),
                "units": lane.get("units", 0),
            }
            for pid, lane in worker_lanes.items()
        }
    return RunManifest(
        command=command,
        argv=list(argv),
        version=__version__,
        schema={
            "manifest": MANIFEST_SCHEMA_VERSION,
            "trace": SCHEMA_VERSION,
            "code": CODE_SCHEMA_VERSION,
        },
        seed=seed,
        config_fingerprint=config_fingerprint,
        started_at=started_at,
        duration_s=round(duration_s, 6),
        exit_code=exit_code,
        spans=spans,
        metrics=snapshot,
        faults=faults,
        retries=retries,
        shards=shards,
        io=io,
        generation=generation,
        resources=resources_section,
        serve=serve,
        scenario=scenario,
    )
