"""Run-manifest performance reports and run-to-run regression diffs.

Two consumers of :class:`~repro.obs.manifest.RunManifest` documents:

* :func:`render_manifest_report` — one manifest as a human performance
  report: phase breakdown (from the span tree), work-unit throughput and
  latency quantiles, cache hit rate, fault/retry summary, trace I/O, and
  resource peaks (parent + workers);
* :func:`compare_manifests` — two manifests diffed metric by metric with
  a configurable regression threshold (``--max-regress`` percent).  Each
  metric knows which direction is *bad* (latency up = regression,
  throughput down = regression); a metric missing from either manifest
  is reported but never fails the comparison, so older-schema baselines
  stay usable.  The CLI exit code is the CI contract: 0 when nothing
  regressed beyond the threshold, 1 otherwise — ``repro-fgcs report
  --compare baseline.json current.json --max-regress 20`` is a perf
  gate.

Self-compare is exactly neutral: every delta is 0%, exit code 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .manifest import RunManifest

__all__ = [
    "ComparisonResult",
    "MetricDelta",
    "compare_manifests",
    "extract_metrics",
    "render_manifest_report",
]


# -- shared helpers -----------------------------------------------------------


def _hist(manifest: RunManifest, name: str) -> dict:
    return manifest.metrics.get("histograms", {}).get(name, {})


def _counter(manifest: RunManifest, name: str) -> Optional[float]:
    counters = manifest.metrics.get("counters", {})
    return counters.get(name)


def _hist_total(summary: dict) -> Optional[float]:
    if not summary.get("count"):
        return None
    return summary["mean"] * summary["count"]


def _throughput(manifest: RunManifest) -> Optional[float]:
    """Work units per second of mapped wall-clock time."""
    units = _counter(manifest, "parallel.units")
    total = _hist_total(_hist(manifest, "parallel.map_seconds"))
    if not units or not total:
        return None
    return units / total


def _cache_hit_rate(manifest: RunManifest) -> Optional[float]:
    hits = _counter(manifest, "cache.hit") or 0
    misses = _counter(manifest, "cache.miss") or 0
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


def _peak_rss(manifest: RunManifest) -> Optional[float]:
    res = manifest.resources or {}
    peak = res.get("peak", {}).get("rss_bytes")
    if peak is None:
        peak = res.get("max_rss_bytes")
    return float(peak) if peak else None


def _serve_field(key: str):
    def get(manifest: RunManifest) -> Optional[float]:
        return (manifest.serve or {}).get(key)

    return get


def _serve_latency(key: str):
    def get(manifest: RunManifest) -> Optional[float]:
        latency = (manifest.serve or {}).get("latency") or {}
        return latency.get(key) if latency.get("count") else None

    return get


def _fmt(value: Optional[float], unit: str = "") -> str:
    if value is None:
        return "-"
    if unit == "bytes":
        return _fmt_bytes(value)
    if unit == "s":
        return f"{value:.3f}s"
    if unit == "%":
        return f"{100 * value:.1f}%"
    if unit == "/s":
        return f"{value:.2f}/s"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def _fmt_bytes(n: float) -> str:
    for factor, suffix in ((1 << 30, "GiB"), (1 << 20, "MiB"), (1 << 10, "KiB")):
        if n >= factor:
            return f"{n / factor:.1f} {suffix}"
    return f"{int(n)} B"


# -- the metric catalogue -----------------------------------------------------


@dataclass(frozen=True)
class _MetricSpec:
    """One comparable metric: how to read it and which way is worse."""

    name: str
    getter: Callable[[RunManifest], Optional[float]]
    #: ``"lower"`` — smaller is better (latency, RSS); ``"higher"`` —
    #: bigger is better (throughput, hit rate).
    better: str
    unit: str = ""


def _quantile_getter(hist_name: str, key: str):
    def get(manifest: RunManifest) -> Optional[float]:
        summary = _hist(manifest, hist_name)
        return summary.get(key) if summary.get("count") else None

    return get


METRICS: tuple[_MetricSpec, ...] = (
    _MetricSpec("duration_s", lambda m: m.duration_s, "lower", "s"),
    _MetricSpec("throughput_units_per_s", _throughput, "higher", "/s"),
    _MetricSpec(
        "unit_seconds.p50",
        _quantile_getter("parallel.unit_seconds", "p50"),
        "lower",
        "s",
    ),
    _MetricSpec(
        "unit_seconds.p95",
        _quantile_getter("parallel.unit_seconds", "p95"),
        "lower",
        "s",
    ),
    _MetricSpec(
        "unit_seconds.p99",
        _quantile_getter("parallel.unit_seconds", "p99"),
        "lower",
        "s",
    ),
    _MetricSpec("cache_hit_rate", _cache_hit_rate, "higher", "%"),
    _MetricSpec("peak_rss_bytes", _peak_rss, "lower", "bytes"),
    _MetricSpec(
        "retries.exhausted",
        lambda m: _counter(m, "retries.exhausted"),
        "lower",
    ),
    # Serving-daemon metrics (manifest schema v7); skipped — never
    # failing — for manifests from commands without a serve section.
    _MetricSpec("serve.qps", _serve_field("qps"), "higher", "/s"),
    _MetricSpec(
        "serve.request_seconds.p50", _serve_latency("p50"), "lower", "s"
    ),
    _MetricSpec(
        "serve.request_seconds.p99", _serve_latency("p99"), "lower", "s"
    ),
)


def extract_metrics(manifest: RunManifest) -> dict:
    """Every comparable metric of one manifest (``None`` = unavailable)."""
    return {spec.name: spec.getter(manifest) for spec in METRICS}


# -- compare ------------------------------------------------------------------


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline→current movement."""

    name: str
    baseline: Optional[float]
    current: Optional[float]
    #: Percent change, sign following the raw value (``None`` when either
    #: side is missing or the baseline is 0).
    change_pct: Optional[float]
    #: ``"ok"`` | ``"improved"`` | ``"regressed"`` | ``"skipped"``.
    status: str
    unit: str = ""


@dataclass
class ComparisonResult:
    """The full diff of two manifests under one threshold."""

    baseline_command: str
    current_command: str
    max_regress_pct: float
    deltas: list[MetricDelta]

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == "regressed"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        rows = [("metric", "baseline", "current", "change", "status")]
        for d in self.deltas:
            change = "-" if d.change_pct is None else f"{d.change_pct:+.1f}%"
            rows.append(
                (
                    d.name,
                    _fmt(d.baseline, d.unit),
                    _fmt(d.current, d.unit),
                    change,
                    d.status.upper() if d.status == "regressed" else d.status,
                )
            )
        widths = [max(len(r[i]) for r in rows) for i in range(5)]
        lines = [
            "  ".join(cell.ljust(w) for cell, w in zip(r, widths)).rstrip()
            for r in rows
        ]
        lines.insert(1, "  ".join("-" * w for w in widths))
        verdict = (
            f"OK: no metric regressed beyond {self.max_regress_pct:g}%"
            if self.ok
            else (
                f"REGRESSION: {len(self.regressions)} metric(s) beyond "
                f"{self.max_regress_pct:g}%: "
                + ", ".join(d.name for d in self.regressions)
            )
        )
        header = (
            f"run comparison ({self.baseline_command} baseline vs "
            f"{self.current_command} current, --max-regress "
            f"{self.max_regress_pct:g})"
        )
        return "\n".join([header, ""] + lines + ["", verdict])


def compare_manifests(
    baseline: RunManifest,
    current: RunManifest,
    *,
    max_regress_pct: float = 10.0,
) -> ComparisonResult:
    """Diff two manifests metric by metric against a regression budget.

    A metric regresses when it moved in its *bad* direction by more than
    ``max_regress_pct`` percent of the baseline.  Metrics missing on
    either side (older schema, command without that subsystem) are
    ``skipped`` and never fail the comparison; a zero baseline can't
    express a percentage and is skipped too.
    """
    if max_regress_pct < 0:
        raise ValueError("max_regress_pct must be >= 0")
    deltas: list[MetricDelta] = []
    for spec in METRICS:
        b, c = spec.getter(baseline), spec.getter(current)
        if b is None or c is None or b == 0:
            deltas.append(
                MetricDelta(spec.name, b, c, None, "skipped", spec.unit)
            )
            continue
        change_pct = 100.0 * (c - b) / abs(b)
        bad_pct = change_pct if spec.better == "lower" else -change_pct
        if bad_pct > max_regress_pct:
            status = "regressed"
        elif bad_pct < 0:
            status = "improved"
        else:
            status = "ok"
        deltas.append(
            MetricDelta(spec.name, b, c, round(change_pct, 2), status, spec.unit)
        )
    return ComparisonResult(
        baseline_command=baseline.command,
        current_command=current.command,
        max_regress_pct=max_regress_pct,
        deltas=deltas,
    )


# -- single-manifest report ---------------------------------------------------


def _phase_lines(spans: list, total_s: float, depth: int, out: list) -> None:
    for rec in spans:
        dur = rec.get("duration_s")
        share = f"{100 * dur / total_s:5.1f}%" if total_s and dur else "     -"
        dur_s = f"{dur:9.3f}s" if dur is not None else "        -"
        out.append(f"  {dur_s}  {share}  {'  ' * depth}{rec['name']}")
        _phase_lines(rec.get("children", []), total_s, depth + 1, out)


def render_manifest_report(manifest: RunManifest) -> str:
    """One manifest as a human performance report."""
    m = manifest
    lines = [
        f"run report: {m.command} (repro {m.version}, manifest schema "
        f"v{m.schema.get('manifest', '?')})",
        f"  started   {m.started_at}",
        f"  duration  {m.duration_s:.3f}s    exit code {m.exit_code}",
    ]
    if m.seed is not None:
        lines.append(f"  seed      {m.seed}")
    if m.config_fingerprint:
        lines.append(f"  config    {m.config_fingerprint[:16]}…")
    scenario = getattr(m, "scenario", None) or {}
    for entry in scenario.get("compared", [scenario] if scenario else []):
        frame = (
            f"{entry.get('machines', '?')}m x {entry.get('days', '?')}d, "
            f"seed {entry.get('seed', '?')}"
        )
        lines.append(
            f"  scenario  {entry.get('scenario', '?')} ({frame}) "
            f"{str(entry.get('fingerprint', ''))[:16]}…"
        )

    if m.spans:
        lines += ["", "phase breakdown (wall clock, % of command):"]
        root_total = m.spans[0].get("duration_s") or m.duration_s
        _phase_lines(m.spans, root_total, 0, lines)

    units = _counter(m, "parallel.units")
    if units:
        lines += ["", "parallel execution:"]
        lines.append(
            f"  units     {int(units)}    workers "
            f"{m.metrics.get('gauges', {}).get('parallel.workers', '-')}"
        )
        tp = _throughput(m)
        if tp is not None:
            lines.append(f"  throughput  {_fmt(tp, '/s')}")
        summary = _hist(m, "parallel.unit_seconds")
        if summary.get("count"):
            quantiles = "  ".join(
                f"{k}={_fmt(summary[k], 's')}"
                for k in ("p50", "p95", "p99")
                if k in summary
            )
            lines.append(
                f"  unit latency  mean={_fmt(summary['mean'], 's')}  "
                f"{quantiles}  max={_fmt(summary['max'], 's')}"
            )

    rate = _cache_hit_rate(m)
    if rate is not None:
        lines += ["", "dataset cache:"]
        lines.append(
            f"  hit rate  {_fmt(rate, '%')}  "
            f"(hits {int(_counter(m, 'cache.hit') or 0)}, "
            f"misses {int(_counter(m, 'cache.miss') or 0)}, "
            f"writes {int(_counter(m, 'cache.write') or 0)})"
        )

    if m.faults or (_counter(m, "retries.attempts") or 0) > 0:
        lines += ["", "faults and retries:"]
        injected = m.faults.get("injected", {})
        if injected:
            lines.append(
                "  injected  "
                + ", ".join(f"{k}={v}" for k, v in sorted(injected.items()))
            )
        retries = m.retries or {}
        lines.append(
            f"  retries   attempts={retries.get('attempts', 0)} "
            f"succeeded={retries.get('succeeded', 0)} "
            f"exhausted={retries.get('exhausted', 0)}"
        )
        quarantined = m.faults.get("quarantined", [])
        if quarantined:
            lines.append(f"  quarantined  {len(quarantined)} unit(s)")

    if m.io:
        lines += ["", "trace I/O:"]
        for fmt, section in sorted(m.io.items()):
            parts = []
            for key in ("bytes_read", "bytes_written"):
                if key in section:
                    parts.append(f"{key} {_fmt_bytes(section[key])}")
            lines.append(f"  {fmt}: " + ", ".join(parts) if parts else f"  {fmt}")

    serve = m.serve or {}
    if serve:
        lines += ["", "serving:"]
        lines.append(
            f"  requests  {int(serve.get('requests', 0))}    "
            f"QPS {_fmt(serve.get('qps'), '/s')}    "
            f"over {_fmt(serve.get('duration_s'), 's')}"
        )
        latency = serve.get("latency") or {}
        if latency.get("count"):
            quantiles = "  ".join(
                f"{k}={_fmt(latency[k], 's')}"
                for k in ("p50", "p95", "p99")
                if k in latency
            )
            lines.append(
                f"  latency   mean={_fmt(latency['mean'], 's')}  "
                f"{quantiles}  max={_fmt(latency['max'], 's')}"
            )
        status = serve.get("status") or {}
        if status:
            lines.append(
                "  status    "
                + ", ".join(f"{k}={v}" for k, v in sorted(status.items()))
            )
        tier = serve.get("tier") or {}
        if tier:
            block = tier.get("block_machines")
            paging = (
                f" blocks={tier.get('n_blocks', 1)}"
                + (f"×{block}m" if block else "")
            )
            lines.append(
                f"  tier      hot={tier.get('hot_entries', 0)} "
                f"resident={_fmt_bytes(tier.get('resident_bytes', 0))} "
                f"hits={tier.get('hits', 0)} "
                f"rebuilds={tier.get('rebuilds', 0)} "
                f"evictions={tier.get('evictions', 0)}"
                + paging
            )
        ingest = serve.get("ingest") or {}
        if ingest.get("streamed_events"):
            lines.append(
                f"  ingest    streamed={ingest['streamed_events']} "
                f"deduplicated={ingest.get('deduplicated_events', 0)}"
            )
        queue = ingest.get("queue") or {}
        if queue:
            lines.append(
                f"  queue     applied={queue.get('applied_batches', 0)} "
                f"depth={queue.get('depth_events', 0)}"
                f"/{queue.get('capacity_events', 0)} "
                f"backpressure={queue.get('backpressure_rejections', 0)} "
                f"snapshots={queue.get('snapshots', 0)}"
            )
        # Scale-out runs (schema v9): one lane per shard worker.
        for lane in serve.get("workers") or []:
            latency = lane.get("latency") or {}
            p99 = (
                f"  p99={_fmt(latency['p99'], 's')}"
                if latency.get("count")
                else ""
            )
            span = (
                f"[{lane.get('machine_lo')}, {lane.get('machine_hi')})"
                if lane.get("machine_lo") is not None
                else "?"
            )
            state = "up" if lane.get("up") else "DOWN"
            lines.append(
                f"  worker {lane.get('worker')}  {state}  machines {span}  "
                f"requests={lane.get('requests', 0)}  "
                f"QPS {_fmt(lane.get('qps'), '/s')}"
                + p99
            )
        totals = serve.get("totals") or {}
        if totals:
            lines.append(
                f"  fleet     upstream_requests={totals.get('requests', 0)} "
                f"rebuilds={totals.get('rebuilds', 0)} "
                f"evictions={totals.get('evictions', 0)} "
                f"streamed={totals.get('streamed_events', 0)} "
                f"backpressure={totals.get('backpressure_rejections', 0)}"
            )

    res = m.resources or {}
    if res:
        lines += ["", "resources:"]
        peak = res.get("peak", {})
        if peak.get("rss_bytes"):
            lines.append(f"  peak RSS (sampled)  {_fmt_bytes(peak['rss_bytes'])}")
        if res.get("max_rss_bytes"):
            lines.append(f"  max RSS (rusage)    {_fmt_bytes(res['max_rss_bytes'])}")
        if peak.get("cpu_seconds") is not None:
            lines.append(f"  CPU time            {peak['cpu_seconds']:.2f}s")
        if peak.get("open_fds"):
            lines.append(f"  peak open fds       {int(peak['open_fds'])}")
        if res.get("n_samples"):
            lines.append(
                f"  sampler             {res['n_samples']} sample(s) at "
                f"{res.get('interval_s', 0):.3g}s"
            )
        workers = res.get("workers", {})
        if workers:
            lines.append(f"  workers             {len(workers)} process(es)")
            for pid, lane in sorted(workers.items(), key=lambda kv: int(kv[0])):
                lines.append(
                    f"    pid {pid}: peak RSS "
                    f"{_fmt_bytes(lane.get('max_rss_bytes', 0))}, "
                    f"CPU {lane.get('cpu_seconds', 0.0):.2f}s, "
                    f"{lane.get('units', 0)} unit(s)"
                )
    return "\n".join(lines)
