"""Deterministic parallel execution for the expensive pipelines.

Every hot loop in the reproduction — per-machine trace generation, the
Figure 1–4 contention sweeps, the robustness seed sweep, the scheduling
replications — is embarrassingly parallel *and* deterministic, because
each unit of work draws from its own :class:`~numpy.random.SeedSequence`
-spawned stream keyed by stable identifiers (seed, machine id, cell
index).  This package provides:

* an execution-backend abstraction (:class:`SerialBackend`,
  :class:`ProcessPoolBackend`) selected from a ``jobs`` count, with the
  invariant that ``jobs=N`` output equals ``jobs=1`` output bit for bit;
* a content-addressed on-disk cache for generated trace datasets
  (:mod:`repro.parallel.cache`), keyed by a stable fingerprint of the
  frozen config plus schema versions;
* fault-aware execution (see :mod:`repro.faults`): ``map`` takes an
  optional :class:`~repro.faults.FaultContext` that adds deterministic
  fault injection, bounded retry with backoff, post-hoc per-unit
  timeouts, quarantine-and-continue, and recovery from real worker
  deaths — with byte-identical output whenever every retry succeeds.
"""

from .backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
    resolve_jobs,
)
from .cache import DatasetCache, config_fingerprint, dataset_cache_key

__all__ = [
    "DatasetCache",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "config_fingerprint",
    "dataset_cache_key",
    "get_backend",
    "resolve_jobs",
]
