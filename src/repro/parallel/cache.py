"""Content-addressed on-disk cache for generated trace datasets.

The cache key is a SHA-256 fingerprint over (a) a canonical JSON encoding
of the frozen config dataclass tree, (b) the trace-file schema version
(:data:`repro.traces.io.SCHEMA_VERSION`), and (c) a generator code-schema
version (:data:`CODE_SCHEMA_VERSION`, bumped whenever the generation
semantics change so stale entries can never be served).  Execution
settings (``FgcsConfig.execution``) are excluded: worker count, cache
location, and fault handling never change what is generated.

Entries are stored through :mod:`repro.traces.io` in the binary
``fgcs-bin`` format since cache schema v2 (:data:`CACHE_SCHEMA_VERSION`)
— the cache is pure machine-to-machine traffic, so the zero-copy format's
decode speed matters and JSONL's greppability does not.  Entries from the
v1 layout (``<key>.jsonl``) are evicted as stale on lookup (counted as
``cache.stale_evicted``) and regenerated.  Writes are atomic (temp file +
rename) so a crashed run can leave at worst a stale temp file, never a
truncated entry.  Corrupted or unreadable entries are treated as misses
and removed (with a logged warning), falling back to regeneration; the
eviction re-checks that the file it is about to delete is still the one
it failed to read, so a concurrent writer's freshly replaced (good) entry
is never evicted.  A failed write (disk full, permissions) degrades to a
logged warning — the pipeline continues uncached rather than aborting.
Cache traffic is counted on the ambient metrics registry (``cache.hit`` /
``cache.miss`` / ``cache.corrupt_evicted`` / ``cache.stale_evicted`` /
``cache.write`` / ``cache.write_failed``) so run manifests show where the
traffic went.

A :class:`repro.faults.FaultPlan` can be attached for chaos testing: the
``cache.read_corrupt`` site forces the eviction/regeneration path and
``cache.write_fail`` simulates an unwritable store, exercising exactly
the degradations above.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Optional, Union

from ..errors import TraceError
from ..faults.plan import (
    SITE_CACHE_READ_CORRUPT,
    SITE_CACHE_WRITE_FAIL,
    FaultPlan,
)
from ..obs.metrics import get_registry
from ..traces.dataset import TraceDataset
from ..traces.io import SCHEMA_VERSION, load_dataset, save_dataset

logger = logging.getLogger(__name__)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CODE_SCHEMA_VERSION",
    "DatasetCache",
    "config_fingerprint",
    "dataset_cache_key",
]

#: Version of the *generation code* semantics.  Bump whenever the trace
#: generator, detector, or workload planner changes its output for an
#: unchanged config, so previously cached datasets are invalidated.
CODE_SCHEMA_VERSION = 1

#: Version of the cache's on-disk layout.  v1 stored ``<key>.jsonl``;
#: v2 stores ``<key>.bin`` in the binary trace format.  Keys are
#: unchanged — a v1 entry for the same key is recognized and evicted as
#: stale rather than silently shadowing the v2 entry.
CACHE_SCHEMA_VERSION = 2

#: Dataclass fields excluded from fingerprints, per dataclass type name.
#: Execution settings affect wall-clock only, never results.
_EXCLUDED_FIELDS: dict[str, frozenset[str]] = {
    "FgcsConfig": frozenset({"execution"}),
}


def _canonical(obj: object) -> object:
    """A JSON-encodable canonical form of a (nested) config value."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        skip = _EXCLUDED_FIELDS.get(type(obj).__name__, frozenset())
        return {
            "__type__": type(obj).__name__,
            **{
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
                if f.name not in skip
            },
        }
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "name": obj.name}
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, float):
        # repr round-trips exactly and distinguishes 1.0 from 1.
        return {"__float__": repr(obj)}
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    raise TypeError(f"cannot fingerprint value of type {type(obj).__name__}")


def config_fingerprint(config: object, *, extra: tuple = ()) -> str:
    """Stable hex fingerprint of a frozen config (plus optional extras).

    Stable across processes and interpreter restarts (no reliance on
    salted ``hash()``), and identical for equal configs regardless of how
    they were constructed.  ``extra`` distinguishes different artifacts
    derived from the same config (e.g. with/without hourly load).
    """
    payload = {
        "schema": {"trace": SCHEMA_VERSION, "code": CODE_SCHEMA_VERSION},
        "config": _canonical(config),
        "extra": [_canonical(x) for x in extra],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def dataset_cache_key(config: object, *, keep_hourly_load: bool = True) -> str:
    """The cache key for :func:`repro.traces.generate.generate_dataset`."""
    return config_fingerprint(
        config, extra=("trace-dataset", keep_hourly_load)
    )


def _file_identity(path: Path) -> Optional[tuple]:
    """(inode, mtime, size) identity of the file, or ``None`` if gone."""
    try:
        st = path.stat()
    except OSError:
        return None
    return (st.st_ino, st.st_mtime_ns, st.st_size)


class DatasetCache:
    """A directory of cached :class:`TraceDataset` files, one per key.

    ``get`` never raises on a bad entry: anything unreadable (truncated
    file, wrong schema, garbage) is removed and reported as a miss, so the
    caller regenerates and overwrites it.  ``put`` never raises on an
    unwritable store: the dataset is simply not cached.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.fault_plan = fault_plan

    def path_for(self, key: str) -> Path:
        return self.cache_dir / f"{key}.bin"

    def _legacy_path_for(self, key: str) -> Path:
        """Where the v1 (JSONL) cache layout stored this key."""
        return self.cache_dir / f"{key}.jsonl"

    def _evict_stale(self, key: str) -> None:
        """Drop a v1-layout entry for ``key`` so it cannot linger forever."""
        legacy = self._legacy_path_for(key)
        if not legacy.exists():
            return
        get_registry().inc("cache.stale_evicted")
        logger.warning(
            "evicting stale v1 (jsonl) dataset cache entry %s; the cache "
            "now stores binary entries (cache schema %d)",
            key,
            CACHE_SCHEMA_VERSION,
        )
        try:
            legacy.unlink()
        except OSError:
            pass

    def _injected(self, site: str, key: str) -> bool:
        if self.fault_plan is None:
            return False
        if self.fault_plan.should_inject(site, key) is None:
            return False
        get_registry().inc(f"faults.injected.{site}")
        return True

    def get(self, key: str) -> Optional[TraceDataset]:
        """The cached dataset for ``key``, or ``None`` on a miss."""
        registry = get_registry()
        self._evict_stale(key)
        path = self.path_for(key)
        # Identity of the entry we are about to read: if the load fails
        # and the file changed in between (a concurrent writer replaced
        # it), the replacement must survive the eviction below.
        identity = _file_identity(path)
        if identity is None:
            registry.inc("cache.miss")
            return None
        try:
            if self._injected(SITE_CACHE_READ_CORRUPT, key):
                raise TraceError(f"injected cache read corruption at {key}")
            dataset = load_dataset(path)
        except (TraceError, OSError, ValueError, KeyError) as exc:
            # Corrupted/truncated/stale entry: drop it and regenerate.
            registry.inc("cache.corrupt_evicted")
            registry.inc("cache.miss")
            logger.warning(
                "evicting corrupt/unreadable dataset cache entry %s (%s: %s); "
                "regenerating",
                key,
                type(exc).__name__,
                exc,
            )
            if _file_identity(path) == identity:
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                logger.info(
                    "cache entry %s was concurrently replaced; keeping the "
                    "new entry",
                    key,
                )
            return None
        registry.inc("cache.hit")
        return dataset

    def get_columns(self, key: str):
        """The cached entry for ``key`` as an
        :class:`~repro.traces.records.EventColumns` (hourly load attached),
        or ``None`` on a miss.

        Column-native twin of :meth:`get` for the object-free generation
        pipeline: entries are interchangeable between both readers (same
        keys, same on-disk bytes), and a bad entry degrades identically —
        evicted, counted, regenerated by the caller.
        """
        from ..traces.binio import open_columns
        from ..traces.records import validate_columns

        registry = get_registry()
        self._evict_stale(key)
        path = self.path_for(key)
        identity = _file_identity(path)
        if identity is None:
            registry.inc("cache.miss")
            return None
        try:
            if self._injected(SITE_CACHE_READ_CORRUPT, key):
                raise TraceError(f"injected cache read corruption at {key}")
            _, columns, hourly = open_columns(path, mmap=False)
            validate_columns(
                columns.events, n_machines=columns.n_machines, span=columns.span
            )
            columns.hourly_load = hourly
        except (TraceError, OSError, ValueError, KeyError) as exc:
            registry.inc("cache.corrupt_evicted")
            registry.inc("cache.miss")
            logger.warning(
                "evicting corrupt/unreadable dataset cache entry %s (%s: %s); "
                "regenerating",
                key,
                type(exc).__name__,
                exc,
            )
            if _file_identity(path) == identity:
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                logger.info(
                    "cache entry %s was concurrently replaced; keeping the "
                    "new entry",
                    key,
                )
            return None
        registry.inc("cache.hit")
        return columns

    def put(self, key: str, dataset: TraceDataset) -> Optional[Path]:
        """Store a dataset under ``key`` atomically; returns the path.

        Write failures (real or injected) are survivable: the entry is
        simply not cached, a warning is logged, ``cache.write_failed`` is
        counted, and ``None`` is returned.
        """
        return self._put(key, dataset, save_dataset)

    def put_columns(self, key: str, columns) -> Optional[Path]:
        """:meth:`put` for an event-column unit — same keys, same bytes."""
        from ..traces.io import save_columns

        return self._put(key, columns, save_columns)

    def _put(self, key: str, payload, save) -> Optional[Path]:
        registry = get_registry()
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
        try:
            if self._injected(SITE_CACHE_WRITE_FAIL, key):
                raise OSError(f"injected cache write failure at {key}")
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            # Explicit format: the temp name's suffix would imply jsonl.
            save(payload, tmp, format="binary")
            os.replace(tmp, path)
        except OSError as exc:
            registry.inc("cache.write_failed")
            logger.warning(
                "dataset cache write for %s failed (%s: %s); continuing "
                "without caching",
                key,
                type(exc).__name__,
                exc,
            )
            return None
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        registry.inc("cache.write")
        return path
