"""Content-addressed on-disk cache for generated trace datasets.

The cache key is a SHA-256 fingerprint over (a) a canonical JSON encoding
of the frozen config dataclass tree, (b) the trace-file schema version
(:data:`repro.traces.io.SCHEMA_VERSION`), and (c) a generator code-schema
version (:data:`CODE_SCHEMA_VERSION`, bumped whenever the generation
semantics change so stale entries can never be served).  Execution
settings (``FgcsConfig.execution``) are excluded: worker count and cache
location never change what is generated.

Entries are stored through the existing :mod:`repro.traces.io` JSONL
serialization, written atomically (temp file + rename) so a crashed run
can leave at worst a stale temp file, never a truncated entry.  Corrupted
or unreadable entries are treated as misses and removed (with a logged
warning), falling back to regeneration.  Cache traffic is counted on the
ambient metrics registry (``cache.hit`` / ``cache.miss`` /
``cache.corrupt_evicted`` / ``cache.write``) so run manifests show where
the traffic went.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Optional, Union

from ..errors import TraceError
from ..obs.metrics import get_registry
from ..traces.dataset import TraceDataset
from ..traces.io import SCHEMA_VERSION, load_dataset, save_dataset

logger = logging.getLogger(__name__)

__all__ = [
    "CODE_SCHEMA_VERSION",
    "DatasetCache",
    "config_fingerprint",
    "dataset_cache_key",
]

#: Version of the *generation code* semantics.  Bump whenever the trace
#: generator, detector, or workload planner changes its output for an
#: unchanged config, so previously cached datasets are invalidated.
CODE_SCHEMA_VERSION = 1

#: Dataclass fields excluded from fingerprints, per dataclass type name.
#: Execution settings affect wall-clock only, never results.
_EXCLUDED_FIELDS: dict[str, frozenset[str]] = {
    "FgcsConfig": frozenset({"execution"}),
}


def _canonical(obj: object) -> object:
    """A JSON-encodable canonical form of a (nested) config value."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        skip = _EXCLUDED_FIELDS.get(type(obj).__name__, frozenset())
        return {
            "__type__": type(obj).__name__,
            **{
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
                if f.name not in skip
            },
        }
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "name": obj.name}
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, float):
        # repr round-trips exactly and distinguishes 1.0 from 1.
        return {"__float__": repr(obj)}
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    raise TypeError(f"cannot fingerprint value of type {type(obj).__name__}")


def config_fingerprint(config: object, *, extra: tuple = ()) -> str:
    """Stable hex fingerprint of a frozen config (plus optional extras).

    Stable across processes and interpreter restarts (no reliance on
    salted ``hash()``), and identical for equal configs regardless of how
    they were constructed.  ``extra`` distinguishes different artifacts
    derived from the same config (e.g. with/without hourly load).
    """
    payload = {
        "schema": {"trace": SCHEMA_VERSION, "code": CODE_SCHEMA_VERSION},
        "config": _canonical(config),
        "extra": [_canonical(x) for x in extra],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def dataset_cache_key(config: object, *, keep_hourly_load: bool = True) -> str:
    """The cache key for :func:`repro.traces.generate.generate_dataset`."""
    return config_fingerprint(
        config, extra=("trace-dataset", keep_hourly_load)
    )


class DatasetCache:
    """A directory of cached :class:`TraceDataset` files, one per key.

    ``get`` never raises on a bad entry: anything unreadable (truncated
    file, wrong schema, garbage) is removed and reported as a miss, so the
    caller regenerates and overwrites it.
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)

    def path_for(self, key: str) -> Path:
        return self.cache_dir / f"{key}.jsonl"

    def get(self, key: str) -> Optional[TraceDataset]:
        """The cached dataset for ``key``, or ``None`` on a miss."""
        registry = get_registry()
        path = self.path_for(key)
        if not path.exists():
            registry.inc("cache.miss")
            return None
        try:
            dataset = load_dataset(path)
        except (TraceError, OSError, ValueError, KeyError) as exc:
            # Corrupted/truncated/stale entry: drop it and regenerate.
            registry.inc("cache.corrupt_evicted")
            registry.inc("cache.miss")
            logger.warning(
                "evicting corrupt/unreadable dataset cache entry %s (%s: %s); "
                "regenerating",
                key,
                type(exc).__name__,
                exc,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        registry.inc("cache.hit")
        return dataset

    def put(self, key: str, dataset: TraceDataset) -> Path:
        """Store a dataset under ``key`` atomically; returns the path."""
        get_registry().inc("cache.write")
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
        try:
            save_dataset(dataset, tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        return path
