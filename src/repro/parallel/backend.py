"""Execution backends: order-preserving ``map`` over picklable payloads.

The contract every backend honors:

* ``map(fn, items)`` returns ``[fn(items[0]), fn(items[1]), ...]`` — the
  result order always matches the item order, regardless of completion
  order, so callers assemble identical outputs under any backend;
* ``fn`` and every item must be picklable for the process-pool backend
  (module-level functions with tuple payloads; all configs are frozen
  dataclasses and pickle cleanly);
* the optional ``progress(index, total)`` callback fires exactly once per
  item, always in the parent process: the serial backend fires it *before*
  each item (submission order), the pool backend fires it as results
  arrive (completion order).

When the ambient metrics registry is enabled, every ``map`` records
per-work-unit timings into it — measured entirely in the parent, so
worker payloads and results are untouched and outputs stay bit-identical
with telemetry on or off:

* ``parallel.unit_seconds`` (histogram) — serial: each item's call time;
  pooled: wall-clock spacing between result arrivals in the parent (a
  throughput view — per-worker CPU time never crosses the process
  boundary);
* ``parallel.queue_wait_seconds`` (histogram) — pooled only: submission
  of the batch to first completed result (pool spin-up + first task);
* ``parallel.map_seconds`` (histogram) — whole-batch wall clock;
* ``parallel.units`` (counter) and ``parallel.workers`` (gauge).
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Optional, Sequence, TypeVar

from ..config import ExecutionConfig
from ..errors import ConfigError
from ..obs.metrics import get_registry

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "get_backend",
    "resolve_jobs",
]

T = TypeVar("T")
R = TypeVar("R")

ProgressFn = Callable[[int, int], None]


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``jobs`` setting to a concrete worker count.

    ``0`` means one worker per available CPU; negative values are invalid.
    """
    if jobs < 0:
        raise ConfigError("jobs must be >= 0 (0 = one worker per CPU)")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


class ExecutionBackend(ABC):
    """Strategy for running a batch of independent tasks."""

    @abstractmethod
    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        """Apply ``fn`` to every item, returning results in item order."""


class SerialBackend(ExecutionBackend):
    """In-process execution — no pool, no pickling requirements."""

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        registry = get_registry()
        total = len(items)
        out: list[R] = []
        t_map = time.perf_counter() if registry.enabled else 0.0
        for i, item in enumerate(items):
            if progress is not None:
                progress(i, total)
            if registry.enabled:
                t0 = time.perf_counter()
                out.append(fn(item))
                registry.observe("parallel.unit_seconds", time.perf_counter() - t0)
            else:
                out.append(fn(item))
        if registry.enabled and total:
            registry.inc("parallel.units", total)
            registry.gauge("parallel.workers", 1)
            registry.observe("parallel.map_seconds", time.perf_counter() - t_map)
        return out


class ProcessPoolBackend(ExecutionBackend):
    """``concurrent.futures`` process pool with order-preserving results.

    Tasks run in worker processes; results are collected as they complete
    but returned in submission order.  A worker exception propagates to the
    caller after the remaining futures are cancelled.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ConfigError("max_workers must be >= 1")
        self.max_workers = max_workers

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        registry = get_registry()
        total = len(items)
        if total == 0:
            return []
        results: list[R] = [None] * total  # type: ignore[list-item]
        n_workers = min(self.max_workers, total)
        t_submit = time.perf_counter() if registry.enabled else 0.0
        t_last = t_submit
        first_arrival = True
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            index_of = {pool.submit(fn, item): i for i, item in enumerate(items)}
            pending = set(index_of)
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    if registry.enabled:
                        now = time.perf_counter()
                        if first_arrival:
                            first_arrival = False
                            registry.observe(
                                "parallel.queue_wait_seconds", now - t_submit
                            )
                        # Arrival spacing, split evenly across a batch of
                        # simultaneous completions.
                        per_unit = (now - t_last) / len(done)
                        for _ in done:
                            registry.observe("parallel.unit_seconds", per_unit)
                        t_last = now
                    for fut in done:
                        i = index_of[fut]
                        results[i] = fut.result()
                        if progress is not None:
                            progress(i, total)
            except BaseException:
                for fut in pending:
                    fut.cancel()
                raise
        if registry.enabled:
            registry.inc("parallel.units", total)
            registry.gauge("parallel.workers", n_workers)
            registry.observe("parallel.map_seconds", time.perf_counter() - t_submit)
        return results


def get_backend(jobs: int | ExecutionConfig = 1) -> ExecutionBackend:
    """The backend for a ``jobs`` setting (or an :class:`ExecutionConfig`).

    ``jobs=1`` (the default) selects :class:`SerialBackend`; anything else
    resolves to a :class:`ProcessPoolBackend` of that many workers.  Both
    produce identical results for deterministic payload functions.
    """
    if isinstance(jobs, ExecutionConfig):
        jobs = jobs.jobs
    n = resolve_jobs(jobs)
    if n == 1:
        return SerialBackend()
    return ProcessPoolBackend(n)
