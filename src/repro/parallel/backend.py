"""Execution backends: order-preserving ``map`` over picklable payloads.

The contract every backend honors:

* ``map(fn, items)`` returns ``[fn(items[0]), fn(items[1]), ...]`` — the
  result order always matches the item order, regardless of completion
  order, so callers assemble identical outputs under any backend;
* ``fn`` and every item must be picklable for the process-pool backend
  (module-level functions with tuple payloads; all configs are frozen
  dataclasses and pickle cleanly);
* the optional ``progress(index, total)`` callback fires exactly once per
  item, always in the parent process: the serial backend fires it *before*
  each item (submission order), the pool backend fires it as results
  arrive (completion order).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Optional, Sequence, TypeVar

from ..config import ExecutionConfig
from ..errors import ConfigError

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "get_backend",
    "resolve_jobs",
]

T = TypeVar("T")
R = TypeVar("R")

ProgressFn = Callable[[int, int], None]


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``jobs`` setting to a concrete worker count.

    ``0`` means one worker per available CPU; negative values are invalid.
    """
    if jobs < 0:
        raise ConfigError("jobs must be >= 0 (0 = one worker per CPU)")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


class ExecutionBackend(ABC):
    """Strategy for running a batch of independent tasks."""

    @abstractmethod
    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        """Apply ``fn`` to every item, returning results in item order."""


class SerialBackend(ExecutionBackend):
    """In-process execution — no pool, no pickling requirements."""

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        total = len(items)
        out: list[R] = []
        for i, item in enumerate(items):
            if progress is not None:
                progress(i, total)
            out.append(fn(item))
        return out


class ProcessPoolBackend(ExecutionBackend):
    """``concurrent.futures`` process pool with order-preserving results.

    Tasks run in worker processes; results are collected as they complete
    but returned in submission order.  A worker exception propagates to the
    caller after the remaining futures are cancelled.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ConfigError("max_workers must be >= 1")
        self.max_workers = max_workers

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        total = len(items)
        if total == 0:
            return []
        results: list[R] = [None] * total  # type: ignore[list-item]
        with ProcessPoolExecutor(max_workers=min(self.max_workers, total)) as pool:
            index_of = {pool.submit(fn, item): i for i, item in enumerate(items)}
            pending = set(index_of)
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for fut in done:
                        i = index_of[fut]
                        results[i] = fut.result()
                        if progress is not None:
                            progress(i, total)
            except BaseException:
                for fut in pending:
                    fut.cancel()
                raise
        return results


def get_backend(jobs: int | ExecutionConfig = 1) -> ExecutionBackend:
    """The backend for a ``jobs`` setting (or an :class:`ExecutionConfig`).

    ``jobs=1`` (the default) selects :class:`SerialBackend`; anything else
    resolves to a :class:`ProcessPoolBackend` of that many workers.  Both
    produce identical results for deterministic payload functions.
    """
    if isinstance(jobs, ExecutionConfig):
        jobs = jobs.jobs
    n = resolve_jobs(jobs)
    if n == 1:
        return SerialBackend()
    return ProcessPoolBackend(n)
