"""Execution backends: order-preserving ``map`` over picklable payloads.

The contract every backend honors:

* ``map(fn, items)`` returns ``[fn(items[0]), fn(items[1]), ...]`` — the
  result order always matches the item order, regardless of completion
  order, so callers assemble identical outputs under any backend;
* ``fn`` and every item must be picklable for the process-pool backend
  (module-level functions with tuple payloads; all configs are frozen
  dataclasses and pickle cleanly);
* the optional ``progress(index, total)`` callback fires exactly once per
  item, always in the parent process: the serial backend fires it *before*
  each item (submission order), the pool backend fires it as results
  arrive (completion order).

When the ambient metrics registry is enabled, every ``map`` records
per-work-unit timings into it — measured entirely in the parent, so
worker payloads and results are untouched and outputs stay bit-identical
with telemetry on or off:

* ``parallel.unit_seconds`` (histogram) — serial: each item's call time;
  pooled: wall-clock spacing between result arrivals in the parent (a
  throughput view — per-worker CPU time never crosses the process
  boundary); fault-aware runs report the worker-measured call time
  instead (it rides back with the result tuple);
* ``parallel.queue_wait_seconds`` (histogram) — pooled only: submission
  of the batch to first completed result (pool spin-up + first task);
* ``parallel.map_seconds`` (histogram) — whole-batch wall clock;
* ``parallel.units`` (counter) and ``parallel.workers`` (gauge).

The pool backends additionally capture **cross-process telemetry**: when
the parent registry is enabled, each unit runs under
:func:`repro.obs.worker.capture_unit` in the worker, and the spans,
counters, histogram samples, and resource peaks it recorded ride back
beside the (untouched) result to be merged into the parent registry as a
per-pid worker lane (:meth:`MetricsRegistry.merge_worker`).  Telemetry
from a failed attempt is never delivered, so a retried unit merges
exactly once.  The serial backend needs no capture — units run in the
parent process, where the ambient registry records them directly.

Fault-aware execution
---------------------
Passing a :class:`repro.faults.FaultContext` switches ``map`` onto a
hardened path: each unit runs through :func:`repro.faults.retry.run_unit`
(which consults the injection plan and measures duration), failures are
retried with exponential backoff up to ``RetryPolicy.max_retries``,
per-unit timeouts are enforced post hoc, and — under a quarantining
policy — a unit whose retries are exhausted yields the
:data:`repro.faults.QUARANTINED` sentinel in its result slot while the
rest of the batch completes.  The pool backend additionally survives
*real* worker deaths: a ``BrokenProcessPool`` marks every unfinished
unit as crashed (one attempt each), the pool is rebuilt, and the
survivors are resubmitted.  Whenever every retry succeeds, the returned
list is byte-identical to a fault-free run — the wrapper never touches
unit results.  With ``faults=None`` the original code paths run,
unchanged.
"""

from __future__ import annotations

import logging
import os
import time
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Optional, Sequence, TypeVar

from ..config import ExecutionConfig
from ..errors import ConfigError
from ..faults import retry as retry_mod
from ..faults.retry import (
    QUARANTINED,
    FaultContext,
    InjectedFault,
    QuarantineRecord,
    UnitTimeoutError,
    classify_failure,
    run_unit,
)
from ..obs.metrics import get_registry

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "get_backend",
    "resolve_jobs",
]

logger = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")

ProgressFn = Callable[[int, int], None]


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``jobs`` setting to a concrete worker count.

    ``0`` means one worker per available CPU; negative values are invalid.
    """
    if jobs < 0:
        raise ConfigError("jobs must be >= 0 (0 = one worker per CPU)")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _note_injected(registry, injected: Sequence[str]) -> None:
    for site in injected:
        registry.inc(f"faults.injected.{site}")


def _check_timeout(faults: FaultContext, key: str, duration: float) -> None:
    timeout = faults.policy.unit_timeout
    if timeout is not None and duration > timeout:
        raise UnitTimeoutError(
            f"unit {key} took {duration:.3f}s (timeout {timeout:.3f}s)"
        )


def _on_failure(
    registry, faults: FaultContext, index: int, attempt: int, exc: Exception
) -> bool:
    """Account for one failed attempt; ``True`` means retry the unit.

    Exhausted units either quarantine (recorded on the context's report
    and as a registry event) or re-raise, per the policy.
    """
    policy = faults.policy
    key = faults.key(index)
    kind = classify_failure(exc)
    registry.inc(f"faults.{kind}")
    if isinstance(exc, retry_mod.WorkerCrashFault):
        registry.inc("faults.injected.worker.crash")
    elif isinstance(exc, InjectedFault):
        registry.inc("faults.injected.unit.exception")
    if attempt < policy.max_retries:
        registry.inc("retries.attempts")
        faults.report.retries += 1
        delay = policy.backoff(attempt)
        logger.warning(
            "unit %s failed (%s: %s); retrying (%d/%d)%s",
            key,
            type(exc).__name__,
            exc,
            attempt + 1,
            policy.max_retries,
            f" after {delay:.2f}s" if delay > 0 else "",
        )
        if delay > 0:
            retry_mod.sleep(delay)
        return True
    registry.inc("retries.exhausted")
    if not policy.quarantine:
        raise exc
    record = QuarantineRecord(
        unit=key,
        attempts=attempt + 1,
        error=f"{type(exc).__name__}: {exc}",
    )
    faults.report.quarantined.append(record)
    registry.record(
        "faults.quarantine",
        unit=record.unit,
        attempts=record.attempts,
        error=record.error,
    )
    logger.error(
        "quarantining unit %s after %d failed attempt(s): %s",
        key,
        record.attempts,
        record.error,
    )
    return False


class ExecutionBackend(ABC):
    """Strategy for running a batch of independent tasks."""

    @abstractmethod
    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        progress: Optional[ProgressFn] = None,
        faults: Optional[FaultContext] = None,
    ) -> list[R]:
        """Apply ``fn`` to every item, returning results in item order."""


class SerialBackend(ExecutionBackend):
    """In-process execution — no pool, no pickling requirements."""

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        progress: Optional[ProgressFn] = None,
        faults: Optional[FaultContext] = None,
    ) -> list[R]:
        if faults is not None:
            return self._map_faulted(fn, items, progress, faults)
        registry = get_registry()
        total = len(items)
        out: list[R] = []
        t_map = time.perf_counter() if registry.enabled else 0.0
        for i, item in enumerate(items):
            if progress is not None:
                progress(i, total)
            if registry.enabled:
                t0 = time.perf_counter()
                out.append(fn(item))
                registry.observe("parallel.unit_seconds", time.perf_counter() - t0)
            else:
                out.append(fn(item))
        if registry.enabled and total:
            registry.inc("parallel.units", total)
            registry.gauge("parallel.workers", 1)
            registry.observe("parallel.map_seconds", time.perf_counter() - t_map)
        return out

    def _map_faulted(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        progress: Optional[ProgressFn],
        faults: FaultContext,
    ) -> list[R]:
        registry = get_registry()
        plan, policy = faults.plan, faults.policy
        total = len(items)
        out: list[R] = []
        t_map = time.perf_counter() if registry.enabled else 0.0
        for i, item in enumerate(items):
            if progress is not None:
                progress(i, total)
            attempt = 0
            while True:
                try:
                    # No capture flag: the unit runs in this process, so
                    # spans/counters land on the ambient registry directly.
                    value, duration, injected, _ = run_unit(
                        (fn, item, plan, faults.key(i), attempt)
                    )
                    _note_injected(registry, injected)
                    _check_timeout(faults, faults.key(i), duration)
                except Exception as exc:
                    if _on_failure(registry, faults, i, attempt, exc):
                        attempt += 1
                        continue
                    out.append(QUARANTINED)  # type: ignore[arg-type]
                    break
                else:
                    registry.observe("parallel.unit_seconds", duration)
                    if attempt > 0:
                        registry.inc("retries.succeeded")
                    out.append(value)
                    break
        if registry.enabled and total:
            registry.inc("parallel.units", total)
            registry.gauge("parallel.workers", 1)
            registry.observe("parallel.map_seconds", time.perf_counter() - t_map)
        return out


class ProcessPoolBackend(ExecutionBackend):
    """``concurrent.futures`` process pool with order-preserving results.

    Tasks run in worker processes; results are collected as they complete
    but returned in submission order.  Without a fault context, a worker
    exception propagates to the caller after the remaining futures are
    cancelled; with one, failures retry per the policy (see the module
    docstring).
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ConfigError("max_workers must be >= 1")
        self.max_workers = max_workers

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        progress: Optional[ProgressFn] = None,
        faults: Optional[FaultContext] = None,
    ) -> list[R]:
        if faults is not None:
            return self._map_faulted(fn, items, progress, faults)
        registry = get_registry()
        total = len(items)
        if total == 0:
            return []
        results: list[R] = [None] * total  # type: ignore[list-item]
        n_workers = min(self.max_workers, total)
        # With an enabled parent registry, units run through the worker
        # telemetry capture wrapper: the worker's spans/counters/resource
        # peaks ride back next to the (untouched) result and merge into
        # this registry under the worker's pid lane.
        capture = registry.enabled
        if capture:
            from ..obs.worker import run_captured

        t_submit = time.perf_counter() if registry.enabled else 0.0
        t_last = t_submit
        first_arrival = True
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            if capture:
                index_of = {
                    pool.submit(run_captured, (fn, item)): i
                    for i, item in enumerate(items)
                }
            else:
                index_of = {
                    pool.submit(fn, item): i for i, item in enumerate(items)
                }
            pending = set(index_of)
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    if registry.enabled:
                        now = time.perf_counter()
                        if first_arrival:
                            first_arrival = False
                            registry.observe(
                                "parallel.queue_wait_seconds", now - t_submit
                            )
                        # Arrival spacing, split evenly across a batch of
                        # simultaneous completions.
                        per_unit = (now - t_last) / len(done)
                        for _ in done:
                            registry.observe("parallel.unit_seconds", per_unit)
                        t_last = now
                    for fut in done:
                        i = index_of[fut]
                        if capture:
                            value, telemetry = fut.result()
                            registry.merge_worker(telemetry)
                            results[i] = value
                        else:
                            results[i] = fut.result()
                        if progress is not None:
                            progress(i, total)
            except BaseException:
                for fut in pending:
                    fut.cancel()
                raise
        if registry.enabled:
            registry.inc("parallel.units", total)
            registry.gauge("parallel.workers", n_workers)
            registry.observe("parallel.map_seconds", time.perf_counter() - t_submit)
        return results

    def _map_faulted(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        progress: Optional[ProgressFn],
        faults: FaultContext,
    ) -> list[R]:
        registry = get_registry()
        plan, policy = faults.plan, faults.policy
        total = len(items)
        if total == 0:
            return []
        results: list[R] = [None] * total  # type: ignore[list-item]
        settled = [False] * total
        attempts = [0] * total
        to_submit = list(range(total))
        n_workers = min(self.max_workers, total)
        capture = registry.enabled
        t_map = time.perf_counter() if registry.enabled else 0.0
        first_arrival = True

        def settle(i: int, value: R) -> None:
            results[i] = value
            settled[i] = True
            if progress is not None:
                progress(i, total)

        while to_submit:
            retry_round: list[int] = []
            # One fresh pool per round: the first round is the common
            # (fault-free) case; later rounds only exist after failures,
            # and rebuilding also recovers from a broken (crashed) pool.
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                try:
                    index_of = {
                        pool.submit(
                            run_unit,
                            (
                                fn,
                                items[i],
                                plan,
                                faults.key(i),
                                attempts[i],
                                capture,
                            ),
                        ): i
                        for i in to_submit
                    }
                    pending = set(index_of)
                    while pending:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                        if registry.enabled and first_arrival:
                            first_arrival = False
                            registry.observe(
                                "parallel.queue_wait_seconds",
                                time.perf_counter() - t_map,
                            )
                        for fut in done:
                            i = index_of[fut]
                            try:
                                value, duration, injected, telemetry = (
                                    fut.result()
                                )
                                _note_injected(registry, injected)
                                _check_timeout(faults, faults.key(i), duration)
                            except Exception as exc:
                                if _on_failure(
                                    registry, faults, i, attempts[i], exc
                                ):
                                    attempts[i] += 1
                                    retry_round.append(i)
                                else:
                                    settle(i, QUARANTINED)  # type: ignore[arg-type]
                            else:
                                # Merge worker telemetry only for a unit
                                # that settled: failed/timed-out attempts
                                # retry and must not double-count.
                                registry.merge_worker(telemetry)
                                registry.observe("parallel.unit_seconds", duration)
                                if attempts[i] > 0:
                                    registry.inc("retries.succeeded")
                                settle(i, value)
                finally:
                    # Cancel whatever had not started (exception path);
                    # completed/settled futures are unaffected.
                    pool.shutdown(wait=True, cancel_futures=True)
            to_submit = sorted(retry_round)
        if registry.enabled:
            registry.inc("parallel.units", total)
            registry.gauge("parallel.workers", n_workers)
            registry.observe("parallel.map_seconds", time.perf_counter() - t_map)
        return results


def get_backend(jobs: int | ExecutionConfig = 1) -> ExecutionBackend:
    """The backend for a ``jobs`` setting (or an :class:`ExecutionConfig`).

    ``jobs=1`` (the default) selects :class:`SerialBackend`; anything else
    resolves to a :class:`ProcessPoolBackend` of that many workers.  Both
    produce identical results for deterministic payload functions.
    """
    if isinstance(jobs, ExecutionConfig):
        jobs = jobs.jobs
    n = resolve_jobs(jobs)
    if n == 1:
        return SerialBackend()
    return ProcessPoolBackend(n)
