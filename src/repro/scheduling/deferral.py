"""Submission-window optimization: when should a job start, not just where.

Section 5.3: "In FGCS systems, the time window can be derived from the
estimated execution time of a guest job."  Placement alone cannot exploit
the daily pattern when all machines share it — but *timing* can: a 2-hour
job submitted at 9:50 (just before the morning surge) is far likelier to
die than the same job submitted at 22:00.  The optimizer scans candidate
start times over a horizon and reports the survival-maximizing window,
trading waiting time against kill risk via an expected-response model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import PredictionError
from ..prediction.base import AvailabilityPredictor, PredictionQuery
from ..units import DAY, HOUR

__all__ = ["SubmissionPlan", "best_submission_window"]


@dataclass(frozen=True)
class SubmissionPlan:
    """A recommended submission time for one job on one machine."""

    machine_id: int
    #: Recommended start, absolute seconds.
    start_time: float
    #: Waiting time from "now" until the recommended start, seconds.
    delay: float
    #: Predicted P(no unavailability during the job) if started then.
    survival: float
    #: Predicted survival if started immediately (the comparison point).
    survival_now: float
    #: Expected response (delay + runtime + expected rework), seconds.
    expected_response: float

    @property
    def worth_waiting(self) -> bool:
        """True if deferring beats immediate submission on expected
        response time."""
        return self.delay > 0


def _expected_response(
    delay: float, runtime: float, survival: float
) -> float:
    """Expected response with restart-from-scratch on failure.

    Approximates the failure-restart renewal: each attempt succeeds with
    probability ``survival``; a failed attempt costs on average half the
    runtime before dying.  E[attempts] = 1/s, so
    ``E[resp] = delay + runtime + (1/s - 1) * runtime/2``.
    """
    s = max(survival, 1e-3)
    return delay + runtime + (1.0 / s - 1.0) * (runtime / 2.0)


def best_submission_window(
    predictor: AvailabilityPredictor,
    *,
    machine_id: int,
    now: float,
    runtime: float,
    horizon: float = 12 * HOUR,
    step: float = 0.5 * HOUR,
) -> SubmissionPlan:
    """Find the submission time minimizing expected response.

    Scans start times ``now, now+step, ...`` up to ``horizon`` ahead,
    predicts the job's survival for each window, and folds waiting time
    and expected rework into one objective.  Immediate submission wins
    whenever the daily pattern offers no sufficiently calmer window.
    """
    if runtime <= 0:
        raise PredictionError("runtime must be positive")
    if horizon < 0 or step <= 0:
        raise PredictionError("need horizon >= 0 and step > 0")

    best: SubmissionPlan | None = None
    survival_now = None
    t = now
    while t <= now + horizon:
        day, rem = divmod(t, DAY)
        query = PredictionQuery(
            machine_id=machine_id,
            day=int(day),
            start_hour=min(rem / HOUR, 23.999),
            duration_hours=runtime / HOUR,
        )
        survival = predictor.predict_survival(query)
        if survival_now is None:
            survival_now = survival
        expected = _expected_response(t - now, runtime, survival)
        if best is None or expected < best.expected_response:
            best = SubmissionPlan(
                machine_id=machine_id,
                start_time=t,
                delay=t - now,
                survival=survival,
                survival_now=survival_now,
                expected_response=expected,
            )
        t += step
    assert best is not None
    return best


def plan_across_machines(
    predictor: AvailabilityPredictor,
    machines: Sequence[int],
    *,
    now: float,
    runtime: float,
    horizon: float = 12 * HOUR,
    step: float = 0.5 * HOUR,
) -> SubmissionPlan:
    """The best (machine, start time) pair over a machine set."""
    plans = [
        best_submission_window(
            predictor,
            machine_id=m,
            now=now,
            runtime=runtime,
            horizon=horizon,
            step=step,
        )
        for m in machines
    ]
    return min(plans, key=lambda p: p.expected_response)
