"""Job-group (co-allocation) response metrics.

The paper's guest workloads are "typically ... composed of multiple
related jobs that are submitted as a group and must all complete before
the results can be used (e.g., simulations containing several computation
steps)".  Response time for such work is the *group* response — arrival
to the completion of the group's last member — which failures hurt
super-linearly: one killed member delays the whole result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..units import HOUR
from .executor import ExecutionOutcome

__all__ = ["GroupMetrics", "group_metrics"]


@dataclass(frozen=True)
class GroupMetrics:
    """Aggregate response metrics at group granularity."""

    n_groups: int
    n_singletons: int
    completed_groups: int
    #: Mean/median response of completed groups, hours.
    mean_group_response_h: float
    median_group_response_h: float
    #: Mean over groups of (group response / slowest member's runtime):
    #: how much grouping amplifies individual delays.
    mean_group_stretch: float
    #: Mean response of singleton jobs, hours (for comparison).
    mean_singleton_response_h: float

    @property
    def group_completion_rate(self) -> float:
        return self.completed_groups / self.n_groups if self.n_groups else 0.0


def group_metrics(outcomes: Sequence[ExecutionOutcome]) -> GroupMetrics:
    """Compute group-level response metrics from execution outcomes.

    Jobs with ``group_id == -1`` are singletons and reported separately.
    A group counts as completed only when every member finished (the
    all-must-complete semantics).
    """
    groups: dict[int, list[ExecutionOutcome]] = {}
    singles: list[ExecutionOutcome] = []
    for o in outcomes:
        if o.job.group_id < 0:
            singles.append(o)
        else:
            groups.setdefault(o.job.group_id, []).append(o)

    responses, stretches = [], []
    completed = 0
    for members in groups.values():
        if not all(m.finished for m in members):
            continue
        completed += 1
        arrival = min(m.job.arrival for m in members)
        done = max(m.completion for m in members)  # type: ignore[type-var]
        resp = done - arrival
        responses.append(resp / HOUR)
        slowest = max(m.job.cpu_seconds for m in members)
        stretches.append(resp / slowest)

    single_resp = [o.response_time / HOUR for o in singles if o.finished]
    return GroupMetrics(
        n_groups=len(groups),
        n_singletons=len(singles),
        completed_groups=completed,
        mean_group_response_h=float(np.mean(responses)) if responses else float("inf"),
        median_group_response_h=(
            float(np.median(responses)) if responses else float("inf")
        ),
        mean_group_stretch=float(np.mean(stretches)) if stretches else float("inf"),
        mean_singleton_response_h=(
            float(np.mean(single_resp)) if single_resp else float("inf")
        ),
    )
