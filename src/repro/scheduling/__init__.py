"""Proactive guest-job scheduling (the paper's motivating application).

Section 1 argues that availability prediction enables proactive job
management with "significantly improved job response time compared to the
methods which are oblivious to future unavailability".  This package
closes that loop: guest jobs with known runtimes arrive over a traced
testbed; placement policies choose machines; jobs die and restart when an
unavailability event hits their machine; response times are compared
between oblivious, prediction-based and oracle placement.
"""

from .deferral import SubmissionPlan, best_submission_window, plan_across_machines
from .executor import ExecutionOutcome, TraceExecutor
from .experiment import (
    ReplicatedComparison,
    ReplicatedResult,
    SchedulingComparison,
    replicate_scheduling_experiment,
    run_scheduling_experiment,
)
from .groups import GroupMetrics, group_metrics
from .jobs import JobSpec, generate_job_stream
from .policies import (
    AgeAwarePolicy,
    LeastLoadedPolicy,
    OraclePolicy,
    PlacementPolicy,
    PredictivePolicy,
    RandomPolicy,
    RiskAversePolicy,
)

__all__ = [
    "AgeAwarePolicy",
    "ExecutionOutcome",
    "GroupMetrics",
    "JobSpec",
    "group_metrics",
    "LeastLoadedPolicy",
    "OraclePolicy",
    "PlacementPolicy",
    "PredictivePolicy",
    "RandomPolicy",
    "ReplicatedComparison",
    "ReplicatedResult",
    "RiskAversePolicy",
    "SchedulingComparison",
    "replicate_scheduling_experiment",
    "SubmissionPlan",
    "TraceExecutor",
    "best_submission_window",
    "generate_job_stream",
    "plan_across_machines",
    "run_scheduling_experiment",
]
