"""Placement policies: oblivious, predictive, and oracle.

A policy picks one machine from the currently free candidates for a job
with a known remaining runtime.  The experiment compares:

* :class:`RandomPolicy` — uniformly random (fully oblivious);
* :class:`LeastLoadedPolicy` — lowest recent host load (load-aware but
  oblivious to *future* unavailability, like classic cycle scavengers);
* :class:`PredictivePolicy` — maximizes predicted survival of the job's
  execution window (the paper's proactive management);
* :class:`OraclePolicy` — knows the actual future events (upper bound).
"""

from __future__ import annotations

import abc
import bisect
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..prediction.base import AvailabilityPredictor, PredictionQuery
from ..traces.dataset import TraceDataset
from ..units import DAY, HOUR
from .jobs import JobSpec

__all__ = [
    "PlacementPolicy",
    "RandomPolicy",
    "LeastLoadedPolicy",
    "PredictivePolicy",
    "OraclePolicy",
]


class PlacementPolicy(abc.ABC):
    """Chooses a machine for a job from the free candidates."""

    name: str = "policy"

    @abc.abstractmethod
    def select(
        self,
        now: float,
        job: JobSpec,
        remaining: float,
        candidates: Sequence[int],
    ) -> int:
        """Return the chosen machine id (must be one of ``candidates``)."""


class RandomPolicy(PlacementPolicy):
    """Uniformly random placement."""

    name = "random"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self.rng = rng or np.random.default_rng(0)

    def select(
        self, now: float, job: JobSpec, remaining: float, candidates: Sequence[int]
    ) -> int:
        return int(candidates[self.rng.integers(len(candidates))])


class LeastLoadedPolicy(PlacementPolicy):
    """Pick the machine with the lowest host load in the current hour.

    Uses the dataset's hourly-load signal — information a live system has
    from its monitors — but no availability forecast.
    """

    name = "least-loaded"

    def __init__(self, dataset: TraceDataset) -> None:
        if dataset.hourly_load is None:
            raise ConfigError("LeastLoadedPolicy needs dataset.hourly_load")
        self.hourly_load = dataset.hourly_load

    def select(
        self, now: float, job: JobSpec, remaining: float, candidates: Sequence[int]
    ) -> int:
        hour = min(int(now // HOUR), self.hourly_load.shape[1] - 1)
        loads = [
            (float(np.nan_to_num(self.hourly_load[m, hour], nan=1.0)), m)
            for m in candidates
        ]
        return min(loads)[1]


class PredictivePolicy(PlacementPolicy):
    """Maximize predicted survival over the job's execution window."""

    name = "predictive"

    def __init__(self, predictor: AvailabilityPredictor) -> None:
        self.predictor = predictor
        self.name = f"predictive({predictor.name})"

    def select(
        self, now: float, job: JobSpec, remaining: float, candidates: Sequence[int]
    ) -> int:
        day, rem = divmod(now, DAY)
        query_base = dict(
            day=int(day),
            start_hour=min(rem / HOUR, 23.999),
            duration_hours=max(remaining / HOUR, 1e-3),
        )
        best_m, best_p = candidates[0], -1.0
        for m in candidates:
            p = self.predictor.predict_survival(
                PredictionQuery(machine_id=m, **query_base)
            )
            if p > best_p:
                best_m, best_p = m, p
        return int(best_m)


class RiskAversePolicy(PlacementPolicy):
    """Maximize the *lower confidence bound* of predicted survival.

    With short histories the survival point estimates are noisy; ranking
    by the Beta-posterior lower bound prefers machines whose clean record
    is statistically solid over lucky small samples (the bandit-style
    pessimism-under-uncertainty rule, inverted for safety).
    """

    name = "risk-averse"

    def __init__(self, predictor, *, confidence: float = 0.8) -> None:
        """``predictor`` must expose ``predict_survival_interval`` (the
        history-window predictor does)."""
        self.predictor = predictor
        self.confidence = confidence
        self.name = f"risk-averse({getattr(predictor, 'name', 'predictor')})"

    def select(
        self, now: float, job: JobSpec, remaining: float, candidates: Sequence[int]
    ) -> int:
        day, rem = divmod(now, DAY)
        best_m, best_lo = candidates[0], -1.0
        for m in candidates:
            query = PredictionQuery(
                machine_id=m,
                day=int(day),
                start_hour=min(rem / HOUR, 23.999),
                duration_hours=max(remaining / HOUR, 1e-3),
            )
            lo, _ = self.predictor.predict_survival_interval(
                query, confidence=self.confidence
            )
            if lo > best_lo:
                best_m, best_lo = m, lo
        return int(best_m)


class AgeAwarePolicy(PlacementPolicy):
    """Renewal-age prediction: prefer the machine whose *current
    availability interval* is most likely to outlive the job.

    Causal by construction — the machine's age (time since its last
    unavailability ended) is observable at placement time; only the
    interval-length statistics come from training data.
    """

    name = "age-aware"

    def __init__(self, dataset: TraceDataset, predictor) -> None:
        """``dataset`` is the trace being executed over (used only for the
        past: when each machine's last event ended); ``predictor`` is a
        fitted :class:`~repro.prediction.renewal.RenewalAgePredictor`."""
        self._ends = {
            m: [e.end for e in dataset.events_for(m)]
            for m in range(dataset.n_machines)
        }
        self._start_weekday = dataset.start_weekday
        self.predictor = predictor

    def age_of(self, machine_id: int, now: float) -> float:
        """Hours since the machine's last unavailability ended."""
        ends = self._ends[machine_id]
        i = bisect.bisect_right(ends, now)
        last_end = ends[i - 1] if i > 0 else 0.0
        return (now - last_end) / HOUR

    def select(
        self, now: float, job: JobSpec, remaining: float, candidates: Sequence[int]
    ) -> int:
        from ..units import is_weekend

        weekend = is_weekend(now, self._start_weekday)
        window_h = remaining / HOUR
        best_m, best_p = candidates[0], -1.0
        for m in candidates:
            p = self.predictor.survival(
                self.age_of(m, now), window_h, weekend=weekend
            )
            if p > best_p:
                best_m, best_p = m, p
        return int(best_m)


class OraclePolicy(PlacementPolicy):
    """Knows the real future.  Best-fit: among machines whose next
    unavailability falls after the job would complete, pick the *tightest*
    window (conserving long windows for long jobs); if no machine can host
    the job uninterrupted, pick the farthest next event."""

    name = "oracle"

    def __init__(self, dataset: TraceDataset) -> None:
        self._starts = {
            m: [e.start for e in dataset.events_for(m)]
            for m in range(dataset.n_machines)
        }
        self._span = dataset.span

    def next_event_after(self, machine_id: int, t: float) -> float:
        starts = self._starts[machine_id]
        i = bisect.bisect_right(starts, t)
        return starts[i] if i < len(starts) else float("inf")

    def select(
        self, now: float, job: JobSpec, remaining: float, candidates: Sequence[int]
    ) -> int:
        slack = {m: self.next_event_after(m, now) - now for m in candidates}
        fitting = [m for m in candidates if slack[m] >= remaining]
        if fitting:
            return int(min(fitting, key=lambda m: slack[m]))
        return int(max(candidates, key=lambda m: slack[m]))
