"""Failure-aware execution of a job stream over a traced testbed.

Deterministic event-driven replay: at most one guest job per machine (the
FGCS rule); a job placed on a machine runs until it completes or the
machine's next unavailability event starts, in which case the job is
killed (all progress lost, unless checkpointing is enabled) and returns to
the queue, while the machine stays blocked until the event ends.
"""

from __future__ import annotations

import bisect
import heapq
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import ConfigError
from ..traces.dataset import TraceDataset
from .jobs import JobSpec
from .policies import PlacementPolicy

__all__ = ["ExecutionOutcome", "TraceExecutor"]

_READY = 0  # a job (re)enters the queue
_FINISH = 1  # a running job completes
_KILL = 2  # a running job is killed by an unavailability event
_RELEASE = 3  # a machine comes back after an event


@dataclass(frozen=True)
class ExecutionOutcome:
    """What happened to one job."""

    job: JobSpec
    completion: Optional[float]
    failures: int
    wasted_cpu: float

    @property
    def finished(self) -> bool:
        return self.completion is not None

    @property
    def response_time(self) -> float:
        """Arrival-to-completion time (inf for unfinished jobs)."""
        if self.completion is None:
            return float("inf")
        return self.completion - self.job.arrival

    @property
    def stretch(self) -> float:
        """Response time relative to the job's intrinsic runtime."""
        return self.response_time / self.job.cpu_seconds


class _MachineTimeline:
    """One machine's unavailability spans, queryable by time."""

    def __init__(self, events: Sequence) -> None:
        self.starts = [e.start for e in events]
        self.ends = [e.end for e in events]

    def available_at(self, t: float) -> bool:
        i = bisect.bisect_right(self.starts, t) - 1
        return not (i >= 0 and t < self.ends[i])

    def next_failure_after(self, t: float) -> tuple[float, float]:
        """(start, end) of the first event starting after ``t``;
        ``(inf, inf)`` if none."""
        i = bisect.bisect_right(self.starts, t)
        if i >= len(self.starts):
            return float("inf"), float("inf")
        return self.starts[i], self.ends[i]


class TraceExecutor:
    """Replays a job stream over a trace dataset with a placement policy.

    Parameters
    ----------
    dataset:
        The traced testbed; its events define when running jobs die.
    checkpointing:
        If True, a killed job keeps its progress (checkpoint/restart).
        The paper's guests lose everything ("the guest process is already
        killed or migrated off and no state is left on the host"), so the
        default is False.

    Examples
    --------
    >>> from repro.scheduling import RandomPolicy
    >>> from repro.traces.dataset import TraceDataset
    >>> ds = TraceDataset(events=[], n_machines=2, span=86400.0)
    >>> ex = TraceExecutor(ds)
    >>> jobs = [JobSpec(job_id=0, arrival=0.0, cpu_seconds=3600.0)]
    >>> out = ex.run(jobs, RandomPolicy())
    >>> out[0].response_time
    3600.0
    """

    def __init__(
        self, dataset: TraceDataset, *, checkpointing: bool = False
    ) -> None:
        self.dataset = dataset
        self.checkpointing = checkpointing
        self._timelines = [
            _MachineTimeline(dataset.events_for(m))
            for m in range(dataset.n_machines)
        ]

    def run(
        self, jobs: Sequence[JobSpec], policy: PlacementPolicy
    ) -> list[ExecutionOutcome]:
        """Execute all jobs; returns one outcome per job (input order)."""
        span = self.dataset.span
        heap: list[tuple[float, int, int, tuple]] = []
        seq = 0

        def push(time: float, kind: int, payload: tuple) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, seq, kind, payload))
            seq += 1

        for job in jobs:
            if job.arrival >= span:
                raise ConfigError(
                    f"job {job.job_id} arrives at {job.arrival} past span {span}"
                )
            push(job.arrival, _READY, (job, job.cpu_seconds))

        free = set(range(self.dataset.n_machines))
        queue: deque[tuple[JobSpec, float]] = deque()
        failures = {j.job_id: 0 for j in jobs}
        wasted = {j.job_id: 0.0 for j in jobs}
        completion: dict[int, Optional[float]] = {j.job_id: None for j in jobs}
        #: Jobs currently running: machine -> generation token.  A stale
        #: FINISH/KILL event (from a superseded placement) is ignored via
        #: the generation check.
        generation: dict[int, int] = {}

        def try_place(now: float) -> None:
            while queue:
                candidates = sorted(
                    m for m in free if self._timelines[m].available_at(now)
                )
                if not candidates:
                    return
                job, remaining = queue.popleft()
                m = int(policy.select(now, job, remaining, candidates))
                if m not in free:
                    raise ConfigError(
                        f"{policy.name} chose busy machine {m} for job {job.job_id}"
                    )
                free.discard(m)
                gen = generation.get(m, 0) + 1
                generation[m] = gen
                fail_start, fail_end = self._timelines[m].next_failure_after(now)
                finish = now + remaining
                if finish <= fail_start:
                    push(finish, _FINISH, (m, gen, job, now, remaining))
                else:
                    push(fail_start, _KILL, (m, gen, job, now, remaining, fail_end))

        while heap:
            now, _, kind, payload = heapq.heappop(heap)
            if now > span:
                break
            if kind == _READY:
                job, remaining = payload
                queue.append((job, remaining))
            elif kind == _FINISH:
                m, gen, job, start, remaining = payload
                if generation.get(m) != gen:
                    continue
                completion[job.job_id] = now
                free.add(m)
            elif kind == _KILL:
                m, gen, job, start, remaining, fail_end = payload
                if generation.get(m) != gen:
                    continue
                elapsed = now - start
                failures[job.job_id] += 1
                if self.checkpointing:
                    remaining = max(remaining - elapsed, 0.0)
                else:
                    wasted[job.job_id] += elapsed
                queue.append((job, remaining))
                if fail_end < span:
                    push(fail_end, _RELEASE, (m,))
            else:  # _RELEASE
                (m,) = payload
                free.add(m)
            try_place(now)

        return [
            ExecutionOutcome(
                job=j,
                completion=completion[j.job_id],
                failures=failures[j.job_id],
                wasted_cpu=wasted[j.job_id],
            )
            for j in jobs
        ]
