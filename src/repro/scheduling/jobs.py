"""Guest-job specifications and arrival streams.

The paper's target workload: "large compute-bound guest applications, most
of which are batch programs ... sequential or composed of multiple related
jobs that are submitted as a group and must all complete before the
results can be used".  Response time is the metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..units import HOUR

__all__ = ["JobSpec", "generate_job_stream"]


@dataclass(frozen=True)
class JobSpec:
    """One guest job: arrival time and CPU demand (seconds at full speed)."""

    job_id: int
    arrival: float
    cpu_seconds: float
    #: Jobs in the same group must all finish before results are usable.
    group_id: int = -1

    def __post_init__(self) -> None:
        if self.cpu_seconds <= 0:
            raise ConfigError("cpu_seconds must be positive")
        if self.arrival < 0:
            raise ConfigError("arrival must be >= 0")


def generate_job_stream(
    *,
    span: float,
    rng: np.random.Generator,
    mean_interarrival: float = 2 * HOUR,
    mean_runtime: float = 3 * HOUR,
    runtime_sigma: float = 0.6,
    group_probability: float = 0.25,
    group_size_range: tuple[int, int] = (2, 4),
) -> list[JobSpec]:
    """A Poisson stream of batch jobs with lognormal runtimes.

    A fraction of arrivals are *groups* of related jobs submitted together
    (multi-step simulations), matching the paper's workload description.
    """
    if mean_interarrival <= 0 or mean_runtime <= 0:
        raise ConfigError("interarrival and runtime means must be positive")
    jobs: list[JobSpec] = []
    t = 0.0
    job_id = 0
    group_id = 0
    mu = np.log(mean_runtime) - 0.5 * runtime_sigma**2
    while True:
        t += rng.exponential(mean_interarrival)
        if t >= span:
            break
        if rng.random() < group_probability:
            size = int(rng.integers(group_size_range[0], group_size_range[1] + 1))
            gid = group_id
            group_id += 1
        else:
            size, gid = 1, -1
        for _ in range(size):
            runtime = float(rng.lognormal(mu, runtime_sigma))
            runtime = min(max(runtime, 10 * 60.0), 24 * HOUR)
            jobs.append(
                JobSpec(job_id=job_id, arrival=t, cpu_seconds=runtime, group_id=gid)
            )
            job_id += 1
    return jobs
