"""The proactive-vs-oblivious scheduling comparison (Extension B).

Runs the same job stream under every policy on the test slice of a traced
testbed and compares mean response time, stretch, failure counts and
completion rates — quantifying the paper's Section 1 claim that proactive
(prediction-based) management improves response time over oblivious
methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..faults import FaultContext
from ..obs.metrics import span
from ..prediction.history import HistoryWindowPredictor
from ..prediction.renewal import RenewalAgePredictor
from ..rng import generator_from
from ..traces.dataset import TraceDataset
from ..units import HOUR
from .executor import ExecutionOutcome, TraceExecutor
from .jobs import generate_job_stream
from .policies import (
    AgeAwarePolicy,
    LeastLoadedPolicy,
    OraclePolicy,
    PlacementPolicy,
    PredictivePolicy,
    RandomPolicy,
)

__all__ = ["PolicyResult", "SchedulingComparison", "run_scheduling_experiment"]


@dataclass(frozen=True)
class PolicyResult:
    """Aggregate job metrics for one policy."""

    policy: str
    mean_response_h: float
    median_response_h: float
    mean_stretch: float
    total_failures: int
    completed: int
    total_jobs: int
    wasted_cpu_h: float

    @property
    def completion_rate(self) -> float:
        return self.completed / self.total_jobs if self.total_jobs else 0.0

    def __str__(self) -> str:
        return (
            f"{self.policy:<36s} resp {self.mean_response_h:6.2f}h "
            f"(median {self.median_response_h:5.2f}h)  stretch "
            f"{self.mean_stretch:5.2f}  kills {self.total_failures:4d}  "
            f"done {self.completed}/{self.total_jobs}"
        )


@dataclass(frozen=True)
class SchedulingComparison:
    """Results of all policies on the same jobs and trace."""

    results: tuple[PolicyResult, ...]
    n_jobs: int

    def result_of(self, policy: str) -> PolicyResult:
        for r in self.results:
            if r.policy == policy:
                return r
        raise KeyError(policy)

    def speedup(self, better: str, worse: str) -> float:
        """Response-time ratio worse/better (>1 means ``better`` wins)."""
        return self.result_of(worse).mean_response_h / self.result_of(
            better
        ).mean_response_h


def summarize_outcomes(policy: str, outcomes: Sequence[ExecutionOutcome]) -> PolicyResult:
    """Aggregate one policy's execution outcomes."""
    finished = [o for o in outcomes if o.finished]
    responses = np.array([o.response_time for o in finished]) / HOUR
    stretches = np.array([o.stretch for o in finished])
    return PolicyResult(
        policy=policy,
        mean_response_h=float(responses.mean()) if len(finished) else float("inf"),
        median_response_h=(
            float(np.median(responses)) if len(finished) else float("inf")
        ),
        mean_stretch=float(stretches.mean()) if len(finished) else float("inf"),
        total_failures=sum(o.failures for o in outcomes),
        completed=len(finished),
        total_jobs=len(outcomes),
        wasted_cpu_h=float(sum(o.wasted_cpu for o in outcomes) / HOUR),
    )


def run_scheduling_experiment(
    dataset: TraceDataset,
    *,
    train_days: int,
    seed: int = 7,
    mean_interarrival: float = 2.5 * HOUR,
    mean_runtime: float = 2 * HOUR,
    policies: Optional[Sequence[PlacementPolicy]] = None,
    checkpointing: bool = False,
) -> SchedulingComparison:
    """Compare placement policies on the held-out slice of a trace.

    The predictor trains on the first ``train_days``; jobs run on the
    remaining days.  With ``policies=None``, the standard panel is used:
    random, least-loaded, predictive (history-window), oracle.
    """
    if not 1 <= train_days < dataset.n_days:
        raise ConfigError("train_days must leave at least one test day")
    train = dataset.slice_days(0, train_days)
    test = dataset.slice_days(train_days, dataset.n_days)

    jobs = generate_job_stream(
        span=test.span - 24 * HOUR,  # leave room for the tail to finish
        rng=generator_from(seed),
        mean_interarrival=mean_interarrival,
        mean_runtime=mean_runtime,
    )
    if policies is None:
        predictor = HistoryWindowPredictor(history_days=8).fit(train)
        renewal = RenewalAgePredictor().fit(train)
        # The history predictor answers queries with day indices relative
        # to the test slice; its history lives at the end of the training
        # slice.
        policies = [
            RandomPolicy(generator_from(seed + 1)),
            LeastLoadedPolicy(test),
            PredictivePolicy(_ShiftedPredictor(predictor, train_days)),
            AgeAwarePolicy(test, renewal),
            OraclePolicy(test),
        ]

    executor = TraceExecutor(test, checkpointing=checkpointing)
    results = []
    for policy in policies:
        with span(f"schedule.policy.{policy.name}"):
            outcomes = executor.run(jobs, policy)
        results.append(summarize_outcomes(policy.name, outcomes))
    return SchedulingComparison(results=tuple(results), n_jobs=len(jobs))


@dataclass(frozen=True)
class ReplicatedResult:
    """One policy's metrics over several job-stream replications."""

    policy: str
    mean_response_h: float
    response_ci: tuple[float, float]
    mean_kills: float
    kills_ci: tuple[float, float]
    replications: int

    def __str__(self) -> str:
        lo, hi = self.response_ci
        klo, khi = self.kills_ci
        return (
            f"{self.policy:<36s} resp {self.mean_response_h:6.2f}h "
            f"[{lo:.2f}, {hi:.2f}]   kills {self.mean_kills:6.1f} "
            f"[{klo:.1f}, {khi:.1f}]   (n={self.replications})"
        )


@dataclass(frozen=True)
class ReplicatedComparison:
    """Per-seed policy metrics plus paired statistics.

    Seeds vary the *workload* as well as the policy's random choices, so
    between-seed variance is shared across policies; paired per-seed
    differences are the statistically meaningful comparison.
    """

    seeds: tuple[int, ...]
    #: policy -> metric ("resp" in hours, "kills") -> per-seed values.
    raw: dict[str, dict[str, tuple[float, ...]]]

    def result_of(self, policy: str) -> ReplicatedResult:
        from ..analysis.stats import bootstrap_ci

        slot = self.raw[policy]
        r_point, r_lo, r_hi = bootstrap_ci(slot["resp"], n_boot=500)
        k_point, k_lo, k_hi = bootstrap_ci(slot["kills"], n_boot=500)
        return ReplicatedResult(
            policy=policy,
            mean_response_h=r_point,
            response_ci=(r_lo, r_hi),
            mean_kills=k_point,
            kills_ci=(k_lo, k_hi),
            replications=len(self.seeds),
        )

    def paired_difference(
        self, metric: str, worse: str, better: str
    ) -> tuple[float, float, float]:
        """Bootstrap (mean, lo, hi) of per-seed ``worse - better``.

        An interval entirely above zero means ``better`` wins the metric
        consistently across workloads.
        """
        from ..analysis.stats import bootstrap_ci

        a = np.asarray(self.raw[worse][metric])
        b = np.asarray(self.raw[better][metric])
        return bootstrap_ci(a - b, n_boot=500)

    def policies(self) -> list[str]:
        return list(self.raw)


def _replicate_one(
    payload: tuple[TraceDataset, int, int, float, float],
) -> tuple[PolicyResult, ...]:
    """One replicate: the full policy panel on one job stream (parallel
    work unit; everything it needs arrives in the picklable payload)."""
    dataset, train_days, seed, mean_interarrival, mean_runtime = payload
    comparison = run_scheduling_experiment(
        dataset,
        train_days=train_days,
        seed=seed,
        mean_interarrival=mean_interarrival,
        mean_runtime=mean_runtime,
    )
    return comparison.results


def replicate_scheduling_experiment(
    dataset: TraceDataset,
    *,
    train_days: int,
    seeds: Sequence[int] = (7, 8, 9, 10, 11),
    mean_interarrival: float = 2.5 * HOUR,
    mean_runtime: float = 2 * HOUR,
    jobs: int = 1,
    faults: Optional[FaultContext] = None,
) -> ReplicatedComparison:
    """The policy comparison over several independent job streams.

    A single job stream's policy ordering can be luck; replication plus
    paired per-seed differences turn "the oracle beats random" into a
    statistical statement.  Replicates are independent (each builds its
    own job stream and policies from its seed), so ``jobs > 1`` fans them
    out over worker processes with results identical to the serial run.
    """
    from ..parallel.backend import get_backend

    if len(seeds) < 2:
        raise ConfigError("need at least two seeds to form intervals")
    per_policy: dict[str, dict[str, list[float]]] = {}
    with span("schedule.replicate"):
        per_seed = get_backend(jobs).map(
            _replicate_one,
            [
                (dataset, train_days, seed, mean_interarrival, mean_runtime)
                for seed in seeds
            ],
            faults=faults,
        )
    for results in per_seed:
        for r in results:
            slot = per_policy.setdefault(r.policy, {"resp": [], "kills": []})
            slot["resp"].append(r.mean_response_h)
            slot["kills"].append(float(r.total_failures))
    return ReplicatedComparison(
        seeds=tuple(seeds),
        raw={
            policy: {k: tuple(v) for k, v in slot.items()}
            for policy, slot in per_policy.items()
        },
    )


class _ShiftedPredictor:
    """Adapter translating test-slice day indices to absolute ones so a
    predictor fitted on the training prefix sees consistent day types."""

    def __init__(self, inner, day_offset: int) -> None:
        self._inner = inner
        self._offset = day_offset

    @property
    def name(self) -> str:
        return self._inner.name

    def predict_survival(self, query):
        from ..prediction.base import PredictionQuery

        shifted = PredictionQuery(
            machine_id=query.machine_id,
            day=query.day + self._offset,
            start_hour=query.start_hour,
            duration_hours=query.duration_hours,
        )
        return self._inner.predict_survival(shifted)

    def predict_count(self, query):
        from ..prediction.base import PredictionQuery

        shifted = PredictionQuery(
            machine_id=query.machine_id,
            day=query.day + self._offset,
            start_hour=query.start_hour,
            duration_hours=query.duration_hours,
        )
        return self._inner.predict_count(shifted)
