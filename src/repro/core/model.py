"""Instantaneous state classification (the Figure 5 model).

:class:`MultiStateModel` maps one monitor observation to the availability
state the machine is in *at that instant*, applying the precedence
S5 > S4 > S3 > S2 > S1.  Transient rules (short Th2 excursions being mere
suspensions) live in the detector, which owns time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import ThresholdConfig
from ..errors import ConfigError
from .samples import MonitorSample, SampleBatch
from .states import AvailState

__all__ = ["MultiStateModel", "DEFAULT_GUEST_WORKING_SET_MB"]

#: Reference guest working-set size used to judge memory availability, MB.
#: The paper's SPEC guests range from 29 to 193 MB resident (Table 1); the
#: default sits near the top so S4 detection is conservative.
DEFAULT_GUEST_WORKING_SET_MB: float = 150.0


@dataclass(frozen=True)
class MultiStateModel:
    """The five-state availability model, parameterized by thresholds.

    Parameters
    ----------
    thresholds:
        The calibrated Th1/Th2 pair (defaults to the paper's 20%/60%).
    guest_working_set_mb:
        Memory a guest process needs; free memory below this means S4.

    Examples
    --------
    >>> m = MultiStateModel()
    >>> m.classify_values(0.1, 500.0, True)
    <AvailState.S1: 'S1'>
    >>> m.classify_values(0.4, 500.0, True)
    <AvailState.S2: 'S2'>
    >>> m.classify_values(0.9, 500.0, True)
    <AvailState.S3: 'S3'>
    >>> m.classify_values(0.1, 60.0, True)
    <AvailState.S4: 'S4'>
    >>> m.classify_values(0.1, 500.0, False)
    <AvailState.S5: 'S5'>
    """

    thresholds: ThresholdConfig = ThresholdConfig()
    guest_working_set_mb: float = DEFAULT_GUEST_WORKING_SET_MB

    def __post_init__(self) -> None:
        if self.guest_working_set_mb <= 0:
            raise ConfigError("guest_working_set_mb must be positive")

    # -- scalar ------------------------------------------------------------

    def classify(self, sample: MonitorSample) -> AvailState:
        """State for one monitor sample."""
        return self.classify_values(
            sample.host_load, sample.free_mb, sample.machine_up
        )

    def classify_values(
        self, host_load: float, free_mb: float, machine_up: bool
    ) -> AvailState:
        """State for raw observation values (precedence S5 > S4 > S3)."""
        if not machine_up:
            return AvailState.S5
        if free_mb < self.guest_working_set_mb:
            return AvailState.S4
        th = self.thresholds
        if host_load > th.th2:
            return AvailState.S3
        if host_load >= th.th1:
            return AvailState.S2
        return AvailState.S1

    # -- vectorized ----------------------------------------------------------

    def classify_batch(self, batch: SampleBatch) -> np.ndarray:
        """Integer state codes (1..5 for S1..S5) for a sample batch."""
        n = len(batch)
        codes = np.ones(n, dtype=np.int8)
        th = self.thresholds
        codes[batch.host_load >= th.th1] = 2
        codes[batch.host_load > th.th2] = 3
        codes[batch.free_mb < self.guest_working_set_mb] = 4
        codes[~batch.machine_up] = 5
        return codes

    @staticmethod
    def code_to_state(code: int) -> AvailState:
        """Map an integer code from :meth:`classify_batch` to a state."""
        return _CODE_TO_STATE[code]

    # -- guest-manager policy view ----------------------------------------------

    def recommended_guest_nice(self, state: AvailState) -> Optional[int]:
        """The guest priority the state prescribes (None = no guest runs)."""
        if state is AvailState.S1:
            return 0
        if state is AvailState.S2:
            return 19
        return None


_CODE_TO_STATE = {
    1: AvailState.S1,
    2: AvailState.S2,
    3: AvailState.S3,
    4: AvailState.S4,
    5: AvailState.S5,
}
