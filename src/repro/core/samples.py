"""Monitor samples: the non-intrusive observables of Section 3.1.

A sample carries exactly what the paper's resource monitor can see without
special privileges: the aggregate CPU usage of host processes, the free
memory, and whether the FGCS service is alive (its termination is the only
observable symptom of revocation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..errors import TraceError

__all__ = ["MonitorSample", "SampleBatch"]


@dataclass(frozen=True)
class MonitorSample:
    """One periodic reading from a machine's resource monitor."""

    #: Absolute time of the reading, seconds.
    time: float
    #: Host CPU load L_H: total CPU usage of all host processes, in [0, 1].
    host_load: float
    #: Memory available to a guest process, MB.
    free_mb: float
    #: True while the machine is up and the FGCS service responds.
    machine_up: bool

    def __post_init__(self) -> None:
        if not np.isfinite(self.time):
            raise TraceError("sample time must be finite")
        if not 0.0 <= self.host_load <= 1.0 + 1e-9:
            raise TraceError(f"host_load {self.host_load} outside [0, 1]")


class SampleBatch:
    """A columnar batch of monitor samples for one machine.

    The vectorized detector and the trace generator work on batches; the
    streaming detector works on :class:`MonitorSample` objects.  Batches
    are validated at construction: times strictly increasing, loads in
    range, equal column lengths.
    """

    __slots__ = ("times", "host_load", "free_mb", "machine_up")

    def __init__(
        self,
        times: np.ndarray,
        host_load: np.ndarray,
        free_mb: np.ndarray,
        machine_up: np.ndarray,
    ) -> None:
        times = np.asarray(times, dtype=np.float64)
        host_load = np.asarray(host_load, dtype=np.float64)
        free_mb = np.asarray(free_mb, dtype=np.float64)
        machine_up = np.asarray(machine_up, dtype=bool)
        n = times.shape[0]
        if not (host_load.shape[0] == free_mb.shape[0] == machine_up.shape[0] == n):
            raise TraceError("sample batch columns must have equal length")
        if n > 1 and not np.all(np.diff(times) > 0):
            raise TraceError("sample times must be strictly increasing")
        if n and (host_load.min() < -1e-9 or host_load.max() > 1.0 + 1e-9):
            raise TraceError("host_load values outside [0, 1]")
        self.times = times
        self.host_load = np.clip(host_load, 0.0, 1.0)
        self.free_mb = free_mb
        self.machine_up = machine_up

    def __len__(self) -> int:
        return self.times.shape[0]

    def __iter__(self) -> Iterator[MonitorSample]:
        for i in range(len(self)):
            yield MonitorSample(
                time=float(self.times[i]),
                host_load=float(self.host_load[i]),
                free_mb=float(self.free_mb[i]),
                machine_up=bool(self.machine_up[i]),
            )

    @classmethod
    def from_validated(
        cls,
        times: np.ndarray,
        host_load: np.ndarray,
        free_mb: np.ndarray,
        machine_up: np.ndarray,
    ) -> "SampleBatch":
        """Trusted constructor for columns a generator already validated.

        The caller guarantees what ``__init__`` would check: float64/bool
        dtypes, equal lengths, strictly increasing times, and host load
        already clipped to ``[0, 1]``.  The synthesis hot path constructs
        one batch per machine; skipping the re-validation passes (diff,
        min/max, clip — a few full-array scans) is what makes the trusted
        path worth having.
        """
        batch = object.__new__(cls)
        batch.times = times
        batch.host_load = host_load
        batch.free_mb = free_mb
        batch.machine_up = machine_up
        return batch

    @classmethod
    def from_samples(cls, samples: Iterable[MonitorSample]) -> "SampleBatch":
        rows = list(samples)
        return cls(
            np.array([s.time for s in rows]),
            np.array([s.host_load for s in rows]),
            np.array([s.free_mb for s in rows]),
            np.array([s.machine_up for s in rows]),
        )

    def slice(self, start: float, end: float) -> "SampleBatch":
        """Samples with ``start <= time < end``."""
        mask = (self.times >= start) & (self.times < end)
        return SampleBatch(
            self.times[mask],
            self.host_load[mask],
            self.free_mb[mask],
            self.machine_up[mask],
        )

    def concat(self, other: "SampleBatch") -> "SampleBatch":
        """This batch followed by ``other`` (times must keep increasing)."""
        return SampleBatch(
            np.concatenate([self.times, other.times]),
            np.concatenate([self.host_load, other.host_load]),
            np.concatenate([self.free_mb, other.free_mb]),
            np.concatenate([self.machine_up, other.machine_up]),
        )
