"""The five availability states of Figure 5.

S1/S2 are availability states (guest running at default/lowest priority);
S3 (CPU contention), S4 (memory thrashing) and S5 (machine revocation) are
*unrecoverable* failure states for a running guest: even if the overload
later clears, the guest was already killed or migrated off.
"""

from __future__ import annotations

import enum

__all__ = ["AvailState", "FAILURE_STATES", "UEC_STATES", "state_cause"]


class AvailState(enum.Enum):
    """Availability state of a host machine for guest processes."""

    #: Full resource availability: guest runs at default priority.
    S1 = "S1"
    #: Availability at lowest priority: heavy host load (Th1 <= L_H <= Th2).
    S2 = "S2"
    #: CPU unavailability (UEC): host load steadily above Th2.
    S3 = "S3"
    #: Memory thrashing (UEC): guest working set no longer fits.
    S4 = "S4"
    #: Machine unavailability (URR): revocation or hardware/software failure.
    S5 = "S5"

    @property
    def is_failure(self) -> bool:
        """True for the guest-killing states S3/S4/S5."""
        return self in FAILURE_STATES

    @property
    def is_uec(self) -> bool:
        """True for unavailability due to excessive contention (S3/S4)."""
        return self in UEC_STATES

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


#: States in which a running guest process is lost.
FAILURE_STATES: frozenset[AvailState] = frozenset(
    {AvailState.S3, AvailState.S4, AvailState.S5}
)

#: Unavailability due to Excessive resource Contention.
UEC_STATES: frozenset[AvailState] = frozenset({AvailState.S3, AvailState.S4})

_DESCRIPTIONS = {
    AvailState.S1: "full resource availability for guest process",
    AvailState.S2: "resource availability for guest process with lowest priority",
    AvailState.S3: "CPU unavailability (UEC)",
    AvailState.S4: "memory thrashing (UEC)",
    AvailState.S5: "machine unavailability (URR)",
}


def state_cause(state: AvailState) -> str:
    """The Table 2 cause category of a failure state."""
    if state is AvailState.S3:
        return "cpu"
    if state is AvailState.S4:
        return "memory"
    if state is AvailState.S5:
        return "revocation"
    raise ValueError(f"{state} is not a failure state")
