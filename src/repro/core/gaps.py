"""URR inference from monitor silence.

On a real deployment the resource monitor dies with the machine: URR is
observable only as the *absence* of samples ("the resulting URR can only
be detected in that FGCS services ... are terminated", Section 3.1).  The
trace pipeline's batches mark downtime with an explicit ``machine_up``
flag for convenience; this module provides the production-realistic path —
reconstructing the flag from gaps in the sample timestamps — and a check
that both views agree.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from .samples import SampleBatch

__all__ = ["infer_downtime_from_gaps", "drop_down_samples"]

#: A machine is presumed down when consecutive samples are separated by
#: more than this many nominal periods (one missed sample can be jitter;
#: several cannot).
DEFAULT_GAP_FACTOR: float = 3.0


def drop_down_samples(batch: SampleBatch) -> SampleBatch:
    """What a central collector actually receives: samples stop while the
    machine is down (the ``machine_up=False`` rows never arrive)."""
    up = batch.machine_up
    return SampleBatch(
        batch.times[up], batch.host_load[up], batch.free_mb[up], up[up]
    )


def infer_downtime_from_gaps(
    batch: SampleBatch,
    *,
    period: float,
    gap_factor: float = DEFAULT_GAP_FACTOR,
    span_end: float | None = None,
) -> SampleBatch:
    """Reconstruct ``machine_up=False`` rows from silent stretches.

    Wherever consecutive samples are separated by more than
    ``gap_factor * period``, synthetic down samples are inserted on the
    nominal grid so the standard detector sees an S5 run covering the
    silence.  A trailing silence up to ``span_end`` is treated the same.

    Parameters
    ----------
    batch:
        Samples as received (no explicit down rows; see
        :func:`drop_down_samples`).
    period:
        The monitor's nominal sampling period.
    gap_factor:
        How many periods of silence imply the machine is down.
    span_end:
        End of the monitored span (detects a machine that died and never
        came back).
    """
    if period <= 0:
        raise TraceError("period must be positive")
    if gap_factor <= 1:
        raise TraceError("gap_factor must exceed 1")
    n = len(batch)
    if n == 0:
        return batch

    times = [batch.times]
    loads = [batch.host_load]
    mems = [batch.free_mb]
    ups = [batch.machine_up]

    def synth(down_start: float, down_end: float) -> None:
        grid = np.arange(down_start, down_end, period)
        if grid.size == 0:
            return
        times.append(grid)
        loads.append(np.zeros_like(grid))
        mems.append(np.zeros_like(grid))
        ups.append(np.zeros(grid.size, dtype=bool))

    diffs = np.diff(batch.times)
    threshold = gap_factor * period
    for i in np.flatnonzero(diffs > threshold):
        # Down from one period after the last heard sample until the
        # sample that broke the silence.
        synth(float(batch.times[i]) + period, float(batch.times[i + 1]))
    if span_end is not None and span_end - float(batch.times[-1]) > threshold:
        synth(float(batch.times[-1]) + period, span_end)

    order = np.argsort(np.concatenate(times), kind="stable")
    return SampleBatch(
        np.concatenate(times)[order],
        np.concatenate(loads)[order],
        np.concatenate(mems)[order],
        np.concatenate(ups)[order],
    )
