"""Availability-interval extraction (the unit of Figure 6).

An availability interval is a maximal period during which a guest may
utilize host resources or be suspended, but does not fail: the complement
of the unavailability events within the trace span.  Intervals touching the
trace boundary are *censored* (their true length is unknown) and excluded
from length statistics by default.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import TraceError
from ..units import MINUTE
from .events import AvailabilityInterval, UnavailabilityEvent

__all__ = ["availability_intervals", "merge_short_gaps", "MIN_HARVEST_DELAY"]

#: The paper's recommendation: wait ~5 minutes before harvesting a machine
#: recently released from heavy load (Section 5.2).
MIN_HARVEST_DELAY: float = 5 * MINUTE


def availability_intervals(
    events: Sequence[UnavailabilityEvent],
    *,
    span_start: float,
    span_end: float,
    machine_id: int | None = None,
) -> list[AvailabilityInterval]:
    """Complement a machine's event sequence into availability intervals.

    Events must belong to a single machine, be time-ordered and
    non-overlapping (the detector guarantees all three).

    Parameters
    ----------
    events:
        The machine's unavailability events.
    span_start, span_end:
        The traced period; boundary intervals are marked censored.
    machine_id:
        Defaults to the events' machine id (or 0 when no events).
    """
    if span_end <= span_start:
        raise TraceError("span must have positive length")
    evs = sorted(events, key=lambda e: e.start)
    if machine_id is None:
        machine_id = evs[0].machine_id if evs else 0
    for a, b in zip(evs, evs[1:]):
        if a.machine_id != b.machine_id:
            raise TraceError("events from multiple machines")
        if b.start < a.end - 1e-9:
            raise TraceError(
                f"overlapping events: [{a.start},{a.end}] and [{b.start},{b.end}]"
            )

    intervals: list[AvailabilityInterval] = []
    cursor = span_start
    for ev in evs:
        lo = max(ev.start, span_start)
        if lo > cursor + 1e-9 and cursor < span_end:
            intervals.append(
                AvailabilityInterval(
                    machine_id=machine_id,
                    start=cursor,
                    end=min(lo, span_end),
                    censored=(cursor == span_start),
                )
            )
        cursor = max(cursor, min(ev.end, span_end))
    if cursor < span_end - 1e-9:
        intervals.append(
            AvailabilityInterval(
                machine_id=machine_id,
                start=cursor,
                end=span_end,
                censored=True,
            )
        )
    return intervals


def merge_short_gaps(
    events: Sequence[UnavailabilityEvent], *, min_gap: float = MIN_HARVEST_DELAY
) -> list[tuple[float, float]]:
    """Coalesce events separated by availability gaps below ``min_gap``.

    Returns merged unavailability spans ``(start, end)``.  This implements
    the paper's operational advice that a machine released from heavy load
    less than ~5 minutes ago should not yet be harvested: from a guest
    scheduler's perspective, flapping overload is one outage.
    """
    if min_gap < 0:
        raise TraceError("min_gap must be >= 0")
    evs = sorted(events, key=lambda e: e.start)
    merged: list[tuple[float, float]] = []
    for ev in evs:
        if merged and ev.start - merged[-1][1] < min_gap:
            merged[-1] = (merged[-1][0], max(merged[-1][1], ev.end))
        else:
            merged.append((ev.start, ev.end))
    return merged
