"""The multi-state availability model and unavailability detection
(Sections 3 and 4 of the paper) — the library's primary contribution.

* :mod:`~repro.core.states` — the five availability states S1–S5;
* :mod:`~repro.core.samples` — monitor-sample records (the non-intrusive
  observables: host CPU load, free memory, service liveness);
* :mod:`~repro.core.model` — instantaneous state classification against the
  Th1/Th2 thresholds;
* :mod:`~repro.core.detector` — streaming and vectorized detectors that
  turn a sample stream into unavailability events, applying the transient
  rules (1-minute suspension grace for CPU excursions);
* :mod:`~repro.core.events` — unavailability-event / availability-interval
  records;
* :mod:`~repro.core.intervals` — interval extraction from event sequences.
"""

from .detector import BatchDetector, UnavailabilityDetector, detect_events
from .events import AvailabilityInterval, UnavailabilityEvent
from .gaps import drop_down_samples, infer_downtime_from_gaps
from .intervals import availability_intervals, merge_short_gaps
from .model import MultiStateModel
from .samples import MonitorSample, SampleBatch
from .states import FAILURE_STATES, AvailState

__all__ = [
    "AvailState",
    "AvailabilityInterval",
    "BatchDetector",
    "FAILURE_STATES",
    "MonitorSample",
    "MultiStateModel",
    "SampleBatch",
    "UnavailabilityDetector",
    "UnavailabilityEvent",
    "availability_intervals",
    "detect_events",
    "drop_down_samples",
    "infer_downtime_from_gaps",
    "merge_short_gaps",
]
