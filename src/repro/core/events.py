"""Unavailability events and availability intervals — the trace contents.

The paper's trace "contains the start and end time of each occurrence of
resource unavailability, the corresponding failure state (S3, S4, or S5),
and the available CPU and memory for guest jobs".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..errors import TraceError
from ..units import MINUTE
from .states import AvailState, state_cause

__all__ = ["UnavailabilityEvent", "AvailabilityInterval", "REBOOT_MAX_DURATION"]

#: URR shorter than one minute is classified as a machine reboot; longer
#: URR as a hardware/software failure (Section 5.1).
REBOOT_MAX_DURATION: float = 1 * MINUTE


@dataclass(frozen=True)
class UnavailabilityEvent:
    """One occurrence of resource unavailability on a machine."""

    machine_id: int
    #: Start of the unavailability (for S3: start of the load excursion).
    start: float
    #: End of the unavailability (resource usable again).
    end: float
    #: The failure state: S3, S4, or S5.
    state: AvailState
    #: Mean host CPU load observed during the event (NaN when offline).
    mean_host_load: float = float("nan")
    #: Mean free memory observed during the event, MB (NaN when offline).
    mean_free_mb: float = float("nan")

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise TraceError(
                f"event must have positive duration: [{self.start}, {self.end}]"
            )
        if not self.state.is_failure:
            raise TraceError(f"{self.state} is not a failure state")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def cause(self) -> str:
        """Table 2 cause category: 'cpu', 'memory', or 'revocation'."""
        return state_cause(self.state)

    @property
    def is_reboot(self) -> bool:
        """For URR events: True if short enough to be a machine reboot.

        Follows the paper's classification: "machine reboots ... appear in
        our traces as URR with intervals shorter than one minute".
        """
        return self.state is AvailState.S5 and self.duration < REBOOT_MAX_DURATION

    def hours_spanned(self) -> list[int]:
        """Hour-of-day indices (0..23) this event overlaps, one entry per
        one-hour interval per day spanned — the Figure 7 counting rule."""
        from ..units import HOUR

        first = int(self.start // HOUR)
        last = int((self.end - 1e-9) // HOUR)
        return [h % 24 for h in range(first, last + 1)]


@dataclass(frozen=True)
class AvailabilityInterval:
    """A maximal period during which a guest may run (possibly suspended)
    without failing — the unit of Figure 6."""

    machine_id: int
    start: float
    end: float
    #: Mean host load over the interval (NaN if unknown).
    mean_host_load: float = float("nan")
    #: True if the interval is truncated by the trace boundary rather than
    #: terminated by an observed unavailability (excluded from length
    #: statistics by default).
    censored: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise TraceError(
                f"interval must have positive length: [{self.start}, {self.end}]"
            )

    @property
    def length(self) -> float:
        return self.end - self.start


def classify_urr(event: UnavailabilityEvent) -> str:
    """'reboot' or 'failure' for an URR event (duration-based)."""
    if event.state is not AvailState.S5:
        raise TraceError("classify_urr needs an S5 event")
    return "reboot" if event.is_reboot else "failure"
