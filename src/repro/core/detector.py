"""Unavailability detection from monitor samples.

Two interchangeable implementations of the same semantics:

* :class:`UnavailabilityDetector` — streaming, one sample at a time, as the
  production monitor module would run on a host machine;
* :class:`BatchDetector` — vectorized over :class:`~repro.core.samples.SampleBatch`
  columns, used by the trace pipeline (92 days x 20 machines).

Semantics (from Sections 4 and 5):

* **S5 (URR)** and **S4 (memory)** begin at the first sample observing the
  condition and are immediate — revocation is abrupt and thrashing demands
  instant guest termination.
* **S3 (CPU)** requires the host load to stay above Th2 for longer than the
  suspension grace (1 minute): shorter excursions are mere guest
  suspensions inside S1/S2 and produce *no* unavailability event.  A
  qualifying event is backdated to the start of the excursion.
* An event ends at the first sample no longer observing its condition (or
  at the trace end, when still open).
* Precedence S5 > S4 > S3 applies per sample.

The hypothesis suite checks that both implementations produce identical
events on arbitrary signals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import TraceError
from .events import UnavailabilityEvent
from .model import MultiStateModel
from .samples import MonitorSample, SampleBatch
from .states import AvailState

__all__ = ["UnavailabilityDetector", "BatchDetector", "detect_events"]

#: Internal run classes: 0 = available (S1/S2), 3/4/5 = failure conditions.
_AVAIL = 0


def _run_class(code: int) -> int:
    return code if code >= 3 else _AVAIL


_CLASS_STATE = {3: AvailState.S3, 4: AvailState.S4, 5: AvailState.S5}


@dataclass
class _OpenRun:
    cls: int
    start: float
    load_sum: float = 0.0
    mem_sum: float = 0.0
    count: int = 0

    def observe(self, load: float, mem: float) -> None:
        self.load_sum += load
        self.mem_sum += mem
        self.count += 1

    def mean_load(self) -> float:
        return self.load_sum / self.count if self.count else float("nan")

    def mean_mem(self) -> float:
        return self.mem_sum / self.count if self.count else float("nan")


class UnavailabilityDetector:
    """Streaming detector: feed samples, collect completed events.

    Examples
    --------
    >>> from repro.core import MultiStateModel, MonitorSample
    >>> det = UnavailabilityDetector(machine_id=0)
    >>> for k in range(30):
    ...     # 5 minutes of overload sampled every 10 s
    ...     _ = det.feed(MonitorSample(10.0 * k, 0.95, 500.0, True))
    >>> events = det.finalize(300.0)
    >>> [(e.state.value, e.start, e.end) for e in events]
    [('S3', 0.0, 300.0)]
    """

    def __init__(
        self,
        machine_id: int = 0,
        model: Optional[MultiStateModel] = None,
        *,
        grace: Optional[float] = None,
    ) -> None:
        self.machine_id = machine_id
        self.model = model or MultiStateModel()
        #: Minimum sustained duration for a Th2 excursion to count as S3.
        self.grace = (
            self.model.thresholds.suspension_grace if grace is None else grace
        )
        self._run: Optional[_OpenRun] = None
        self._last_time: Optional[float] = None
        self._finalized = False

    def feed(self, sample: MonitorSample) -> list[UnavailabilityEvent]:
        """Process one sample; returns events completed by it."""
        if self._finalized:
            raise TraceError("detector already finalized")
        if self._last_time is not None and sample.time <= self._last_time:
            raise TraceError(
                f"samples must be time-ordered: {sample.time} after {self._last_time}"
            )
        self._last_time = sample.time
        cls = _run_class(self._code(sample))

        events: list[UnavailabilityEvent] = []
        if self._run is None:
            self._run = _OpenRun(cls, sample.time)
        elif cls != self._run.cls:
            ev = self._close_run(self._run, sample.time)
            if ev is not None:
                events.append(ev)
            self._run = _OpenRun(cls, sample.time)
        if sample.machine_up:
            self._run.observe(sample.host_load, sample.free_mb)
        return events

    def _code(self, sample: MonitorSample) -> int:
        state = self.model.classify(sample)
        return int(state.value[1])

    def _close_run(
        self, run: _OpenRun, end: float
    ) -> Optional[UnavailabilityEvent]:
        if run.cls == _AVAIL:
            return None
        duration = end - run.start
        if run.cls == 3 and duration <= self.grace:
            return None  # transient excursion: suspension, not failure
        return UnavailabilityEvent(
            machine_id=self.machine_id,
            start=run.start,
            end=end,
            state=_CLASS_STATE[run.cls],
            mean_host_load=run.mean_load(),
            mean_free_mb=run.mean_mem(),
        )

    def finalize(self, end_time: Optional[float] = None) -> list[UnavailabilityEvent]:
        """Close any open run at ``end_time`` (default: last sample time)."""
        if self._finalized:
            raise TraceError("detector already finalized")
        self._finalized = True
        if self._run is None:
            return []
        end = self._last_time if end_time is None else end_time
        assert end is not None
        if end <= self._run.start:
            return []
        ev = self._close_run(self._run, end)
        return [ev] if ev is not None else []


class BatchDetector:
    """Vectorized detector over a :class:`SampleBatch`.

    Classification is a few NumPy passes; the run loop touches only run
    boundaries (a handful per machine-day), so detecting over months of
    samples is fast.
    """

    def __init__(
        self,
        model: Optional[MultiStateModel] = None,
        *,
        grace: Optional[float] = None,
    ) -> None:
        self.model = model or MultiStateModel()
        self.grace = (
            self.model.thresholds.suspension_grace if grace is None else grace
        )

    def detect(
        self,
        batch: SampleBatch,
        *,
        machine_id: int = 0,
        end_time: Optional[float] = None,
    ) -> list[UnavailabilityEvent]:
        """All unavailability events in the batch.

        ``end_time`` closes a run still open at the final sample (defaults
        to the last sample time, dropping a zero-length tail run).
        """
        n = len(batch)
        if n == 0:
            return []
        codes = self.model.classify_batch(batch)
        cls = np.where(codes >= 3, codes, _AVAIL)

        # Run-length encode the class signal.
        change = np.flatnonzero(np.diff(cls) != 0)
        starts = np.concatenate(([0], change + 1))
        ends = np.concatenate((change + 1, [n]))  # exclusive sample index

        t_final = batch.times[-1] if end_time is None else float(end_time)
        up = batch.machine_up
        # Prefix sums for per-run means over up samples only.
        load_cs = np.concatenate(([0.0], np.cumsum(np.where(up, batch.host_load, 0.0))))
        mem_cs = np.concatenate(([0.0], np.cumsum(np.where(up, batch.free_mb, 0.0))))
        upcount_cs = np.concatenate(([0], np.cumsum(up.astype(np.int64))))

        events: list[UnavailabilityEvent] = []
        for i0, i1 in zip(starts, ends):
            c = int(cls[i0])
            if c == _AVAIL:
                continue
            t0 = float(batch.times[i0])
            t1 = float(batch.times[i1]) if i1 < n else t_final
            if t1 <= t0:
                continue
            if c == 3 and (t1 - t0) <= self.grace:
                continue
            cnt = int(upcount_cs[i1] - upcount_cs[i0])
            mean_load = (
                float(load_cs[i1] - load_cs[i0]) / cnt if cnt else float("nan")
            )
            mean_mem = float(mem_cs[i1] - mem_cs[i0]) / cnt if cnt else float("nan")
            events.append(
                UnavailabilityEvent(
                    machine_id=machine_id,
                    start=t0,
                    end=t1,
                    state=_CLASS_STATE[c],
                    mean_host_load=mean_load,
                    mean_free_mb=mean_mem,
                )
            )
        return events

    def detect_columns(
        self,
        batch: SampleBatch,
        *,
        machine_id: int = 0,
        end_time: Optional[float] = None,
    ) -> np.ndarray:
        """:meth:`detect` emitting an ``EVENT_DTYPE`` row array directly.

        Same classification, run-length encoding and per-run means as
        :meth:`detect` — run filtering and mean computation are vectorized
        and the rows are written straight into a structured array, so no
        :class:`UnavailabilityEvent` objects exist on this path.  Rows come
        out (machine_id, start)-sorted by construction and use the same
        float operations (prefix-sum difference divided by the up-sample
        count, ``nan`` when a run has no up samples), keeping serialized
        output byte-identical to the legacy path.
        """
        from ..traces.records import EVENT_DTYPE  # local: avoids core <-> traces cycle

        n = len(batch)
        if n == 0:
            return np.empty(0, dtype=EVENT_DTYPE)
        codes = self.model.classify_batch(batch)
        cls = np.where(codes >= 3, codes, _AVAIL)

        change = np.flatnonzero(np.diff(cls) != 0)
        starts = np.concatenate(([0], change + 1))
        ends = np.concatenate((change + 1, [n]))

        t_final = batch.times[-1] if end_time is None else float(end_time)
        run_cls = cls[starts]
        t0 = batch.times[starts]
        t1 = np.where(ends < n, batch.times[np.minimum(ends, n - 1)], t_final)

        keep = (run_cls != _AVAIL) & (t1 > t0)
        keep &= ~((run_cls == 3) & ((t1 - t0) <= self.grace))
        if not keep.any():
            return np.empty(0, dtype=EVENT_DTYPE)
        starts = starts[keep]
        ends = ends[keep]
        run_cls = run_cls[keep]
        t0 = t0[keep]
        t1 = t1[keep]

        up = batch.machine_up
        load_cs = np.concatenate(([0.0], np.cumsum(np.where(up, batch.host_load, 0.0))))
        mem_cs = np.concatenate(([0.0], np.cumsum(np.where(up, batch.free_mb, 0.0))))
        upcount_cs = np.concatenate(([0], np.cumsum(up.astype(np.int64))))
        cnt = upcount_cs[ends] - upcount_cs[starts]
        denom = np.maximum(cnt, 1)
        with np.errstate(invalid="ignore"):
            mean_load = np.where(cnt > 0, (load_cs[ends] - load_cs[starts]) / denom, np.nan)
            mean_mem = np.where(cnt > 0, (mem_cs[ends] - mem_cs[starts]) / denom, np.nan)

        out = np.empty(run_cls.shape[0], dtype=EVENT_DTYPE)
        out["machine_id"] = machine_id
        out["start"] = t0
        out["end"] = t1
        out["state"] = run_cls.astype(np.uint8)
        out["mean_host_load"] = mean_load
        out["mean_free_mb"] = mean_mem
        return out


def detect_events(
    batch: SampleBatch,
    *,
    machine_id: int = 0,
    model: Optional[MultiStateModel] = None,
    grace: Optional[float] = None,
    end_time: Optional[float] = None,
) -> list[UnavailabilityEvent]:
    """Convenience wrapper around :class:`BatchDetector`."""
    return BatchDetector(model, grace=grace).detect(
        batch, machine_id=machine_id, end_time=end_time
    )
