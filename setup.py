"""Setuptools shim.

The offline environment ships setuptools 65 without the ``wheel`` package,
so PEP 517 editable installs fail with "invalid command 'bdist_wheel'".
This shim lets ``pip install -e . --no-use-pep517 --no-build-isolation``
(and plain ``pip install -e .`` on modern toolchains) work; all metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
