"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simkernel import EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(3.0, lambda t: fired.append(3))
        q.push(1.0, lambda t: fired.append(1))
        q.push(2.0, lambda t: fired.append(2))
        while q:
            q.pop().fire()
        assert fired == [1, 2, 3]

    def test_ties_break_by_priority_then_insertion(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda t: fired.append("b"), priority=1)
        q.push(1.0, lambda t: fired.append("a"), priority=0)
        q.push(1.0, lambda t: fired.append("c"), priority=1)
        while q:
            q.pop().fire()
        assert fired == ["a", "b", "c"]

    def test_cancel_is_lazy_but_effective(self):
        q = EventQueue()
        fired = []
        ev = q.push(1.0, lambda t: fired.append(1))
        q.push(2.0, lambda t: fired.append(2))
        q.cancel(ev)
        assert len(q) == 1
        while q:
            q.pop().fire()
        assert fired == [2]

    def test_cancel_idempotent(self):
        q = EventQueue()
        ev = q.push(1.0, lambda t: None)
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda t: None)

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda t: None)
        q.push(5.0, lambda t: None)
        q.cancel(ev)
        assert q.peek_time() == 5.0

    def test_drain_until_includes_boundary(self):
        q = EventQueue()
        q.push(1.0, lambda t: None)
        q.push(2.0, lambda t: None)
        q.push(3.0, lambda t: None)
        times = [ev.time for ev in q.drain_until(2.0)]
        assert times == [1.0, 2.0]
        assert len(q) == 1

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_pop_order_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda _: None)
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == sorted(popped)


class TestSimulator:
    def test_run_until_fires_in_order(self):
        sim = Simulator()
        fired = []
        sim.at(5.0, lambda t: fired.append(("a", t)))
        sim.at(2.0, lambda t: fired.append(("b", t)))
        sim.run_until(10.0)
        assert fired == [("b", 2.0), ("a", 5.0)]
        assert sim.now == 10.0

    def test_after_schedules_relative(self):
        sim = Simulator(start_time=100.0)
        fired = []
        sim.after(5.0, lambda t: fired.append(t))
        sim.run_until(110.0)
        assert fired == [105.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda t: None)
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda t: None)

    def test_cannot_run_backwards(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain(t):
            fired.append(t)
            if t < 3.0:
                sim.after(1.0, chain)

        sim.after(1.0, chain)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_every_periodic_and_cancel(self):
        sim = Simulator()
        fired = []
        cancel = sim.every(1.0, lambda t: fired.append(t))
        sim.run_until(3.5)
        cancel()
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_every_with_start_and_until(self):
        sim = Simulator()
        fired = []
        sim.every(2.0, lambda t: fired.append(t), start=1.0, until=5.0)
        sim.run_until(20.0)
        assert fired == [1.0, 3.0, 5.0]

    def test_every_rejects_nonpositive_period(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda t: None)

    def test_run_drains_queue(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda t: fired.append(1))
        sim.at(2.0, lambda t: fired.append(2))
        n = sim.run()
        assert n == 2
        assert sim.pending == 0

    def test_step_returns_event(self):
        sim = Simulator()
        sim.at(1.0, lambda t: None, name="x")
        ev = sim.step()
        assert ev is not None and ev.name == "x"
        assert sim.step() is None

    def test_no_reentrant_run(self):
        sim = Simulator()

        def bad(t):
            sim.run_until(t + 1)

        sim.at(1.0, bad)
        with pytest.raises(SimulationError):
            sim.run_until(2.0)
